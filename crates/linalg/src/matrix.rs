//! Row-major `f32` matrices.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// Deliberately minimal: the SparseNN training loop only ever needs
/// matrix–vector products (forward pass), transposed matrix–vector products
/// (backward pass), rank-1 updates (gradient accumulation) and a few
/// element-wise maps. All kernels are written as straight loops over the
/// row-major storage so the compiler can autovectorize them.
///
/// # Example
///
/// ```
/// use sparsenn_linalg::Matrix;
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix that owns `data` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = crate::vector::dot(row, x);
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue; // input sparsity helps the backward pass too
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, &aij) in y.iter_mut().zip(row) {
                *yj += aij * xi;
            }
        }
        y
    }

    /// Rank-1 update `A += alpha · u · vᵀ` (gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn add_scaled_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "outer product row mismatch");
        assert_eq!(v.len(), self.cols, "outer product col mismatch");
        for (i, &ui) in u.iter().enumerate() {
            let coeff = alpha * ui;
            if coeff == 0.0 {
                continue;
            }
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (aij, &vj) in row.iter_mut().zip(v) {
                *aij += coeff * vj;
            }
        }
    }

    /// In-place scaling `A *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// In-place element-wise addition `A += alpha · B`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f32, b: &Matrix) {
        assert_eq!(self.shape(), b.shape(), "shape mismatch");
        for (a, &bv) in self.data.iter_mut().zip(&b.data) {
            *a += alpha * bv;
        }
    }

    /// Returns `self - b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.shape(), b.shape(), "shape mismatch");
        let data = self.data.iter().zip(&b.data).map(|(a, b)| a - b).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix product `self · b` (used only on small predictor factors).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o += aik * bkj;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| f64::from(*v) * f64::from(*v))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| **v == 0.0).count() as f32 / self.data.len() as f32
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for i in 0..self.rows {
                write!(f, "\n  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(2, 0);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let x = [0.5f32, -1.5];
        assert_eq!(m.matvec_t(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn outer_update_matches_definition() {
        let mut m = Matrix::zeros(2, 3);
        m.add_scaled_outer(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn matmul_small_identity() {
        let m = sample();
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        assert_eq!(m.sparsity(), 0.75);
        assert_eq!(Matrix::zeros(0, 0).sparsity(), 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", sample()).is_empty());
    }
}
