//! Thin QR decomposition via modified Gram–Schmidt.
//!
//! Used by the randomized truncated SVD ([`crate::truncated`]) to
//! orthonormalize sketch matrices. Modified Gram–Schmidt (column-by-column
//! re-orthogonalization) is numerically adequate here because the subsequent
//! subspace iteration is self-correcting.

use crate::Matrix;

/// Result of a thin QR factorization `A = Q·R` with `Q` having orthonormal
/// columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Qr {
    /// `m × k` matrix with orthonormal columns (`k = min(m, n)` of the input,
    /// minus any columns that were numerically dependent and dropped).
    pub q: Matrix,
    /// `k × n` upper-triangular factor.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a` by modified Gram–Schmidt with
/// one re-orthogonalization pass.
///
/// Columns whose residual norm falls below `1e-10 · ‖A‖_F` are replaced by
/// zero columns in `Q` (and zero rows in `R`), keeping the output shapes
/// predictable for rank-deficient inputs.
///
/// # Example
///
/// ```
/// use sparsenn_linalg::{Matrix, qr::qr};
/// let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f32 + if i == j { 1.0 } else { 0.0 });
/// let f = qr(&a);
/// let recon = f.q.matmul(&f.r);
/// assert!(a.sub(&recon).frobenius_norm() < 1e-4);
/// ```
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
pub fn qr(a: &Matrix) -> Qr {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let tol = 1e-10 * f64::from(a.frobenius_norm().max(1.0));

    // Work on columns.
    let mut cols: Vec<Vec<f32>> = (0..n).map(|j| a.col(j)).collect();
    let mut q_cols: Vec<Vec<f32>> = Vec::with_capacity(k);
    let mut r = Matrix::zeros(k, n);

    for j in 0..n {
        if q_cols.len() == k {
            // Remaining columns only get projected, no new Q columns.
            let mut v = cols[j].clone();
            for (i, qi) in q_cols.iter().enumerate() {
                let rij = crate::vector::dot(qi, &v);
                r.set(i, j, rij);
                crate::vector::axpy(-rij, qi, &mut v);
            }
            continue;
        }
        let mut v = std::mem::take(&mut cols[j]);
        // Two MGS passes for re-orthogonalization.
        for _ in 0..2 {
            for (i, qi) in q_cols.iter().enumerate() {
                let proj = crate::vector::dot(qi, &v);
                let prev = r.get(i, j);
                r.set(i, j, prev + proj);
                crate::vector::axpy(-proj, qi, &mut v);
            }
        }
        let norm = crate::vector::norm2(&v);
        let qi_index = q_cols.len();
        if f64::from(norm) <= tol {
            // Dependent column: contributes a zero Q column only if we still
            // need to fill the basis; R entry stays zero.
            q_cols.push(vec![0.0; m]);
            r.set(qi_index, j, 0.0);
        } else {
            crate::vector::scale(1.0 / norm, &mut v);
            r.set(qi_index, j, norm);
            q_cols.push(v);
        }
    }
    // If fewer than k columns were produced (n < k impossible; k = min),
    // pad with zero columns for shape stability.
    while q_cols.len() < k {
        q_cols.push(vec![0.0; m]);
    }

    let q = Matrix::from_fn(m, k, |i, j| q_cols[j][i]);
    Qr { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            ((i * 7 + j * 3) % 11) as f32 - 5.0 + if i == j { 8.0 } else { 0.0 }
        })
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = well_conditioned(8, 4);
        let f = qr(&a);
        let qt_q = f.q.transpose().matmul(&f.q);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (qt_q.get(i, j) - expect).abs() < 1e-4,
                    "QᵀQ[{i},{j}] = {}",
                    qt_q.get(i, j)
                );
            }
        }
    }

    #[test]
    fn reconstruction_matches() {
        let a = well_conditioned(8, 4);
        let f = qr(&a);
        assert!(a.sub(&f.q.matmul(&f.r)).frobenius_norm() < 1e-3);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = well_conditioned(6, 6);
        let f = qr(&a);
        for i in 0..6 {
            for j in 0..i {
                assert!(f.r.get(i, j).abs() < 1e-4, "R[{i},{j}] = {}", f.r.get(i, j));
            }
        }
    }

    #[test]
    fn rank_deficient_input_keeps_shapes() {
        // Two identical columns.
        let a = Matrix::from_fn(5, 3, |i, j| {
            if j == 2 {
                (i + 1) as f32
            } else {
                (i + 1) as f32 * (j + 1) as f32
            }
        });
        let f = qr(&a);
        assert_eq!(f.q.shape(), (5, 3));
        assert_eq!(f.r.shape(), (3, 3));
        assert!(a.sub(&f.q.matmul(&f.r)).frobenius_norm() < 1e-3);
    }

    #[test]
    fn wide_matrix_thin_q() {
        let a = well_conditioned(3, 7);
        let f = qr(&a);
        assert_eq!(f.q.shape(), (3, 3));
        assert_eq!(f.r.shape(), (3, 7));
        assert!(a.sub(&f.q.matmul(&f.r)).frobenius_norm() < 1e-3);
    }
}
