//! Slice-level vector kernels.
//!
//! Free functions over `&[f32]`, used by both the training loop and the
//! statistics code. Functions that produce a vector allocate; in-place
//! variants mutate their first argument.

/// Dot product `xᵀ·y` accumulated in `f64` for stability.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// In-place `y += alpha·x`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise Hadamard product `x ∘ y` (Eq. (3) of the paper).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hadamard(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "hadamard length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// Rectified linear unit applied element-wise.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Derivative mask of ReLU: `1` where `x > 0`, else `0`
/// (the `1_{W a > 0}` factor of Algorithm 1).
pub fn relu_mask(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect()
}

/// `sign(x)` with the convention `sign(0) = 0`, element-wise (Eq. (2)).
pub fn sign(x: &[f32]) -> Vec<f32> {
    x.iter()
        .map(|&v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Straight-through-estimator mask: `1` where `|x| < 1`, else `0`
/// (the `1_{|U V a| < 1}` factor of Algorithm 1, from Courbariaux et al.).
pub fn ste_mask(x: &[f32]) -> Vec<f32> {
    x.iter()
        .map(|&v| if v.abs() < 1.0 { 1.0 } else { 0.0 })
        .collect()
}

/// Index of the maximum element; `None` on an empty slice. Ties resolve to
/// the first maximum (deterministic classification).
pub fn argmax(x: &[f32]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    x.iter()
        .map(|v| f64::from(*v) * f64::from(*v))
        .sum::<f64>()
        .sqrt() as f32
}

/// Fraction of exactly-zero entries — the *activation sparsity* the whole
/// paper is about.
pub fn sparsity(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|v| **v == 0.0).count() as f32 / x.len() as f32
}

/// Indices and values of the nonzero entries, in index order — the software
/// analogue of what the leading-nonzero detector (LNZD) scans out of the
/// activation register file.
pub fn nonzeros(x: &[f32]) -> Vec<(usize, f32)> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| **v != 0.0)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// Numerically-stable softmax.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = vec![1.0f32, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn relu_and_mask_agree() {
        let x = [-1.0f32, 0.0, 2.0];
        assert_eq!(relu(&x), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_mask(&x), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sign_convention() {
        assert_eq!(sign(&[-2.0, 0.0, 0.5]), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn ste_mask_is_hardtanh_derivative() {
        assert_eq!(
            ste_mask(&[-1.5, -0.5, 0.0, 0.99, 1.0]),
            vec![0.0, 1.0, 1.0, 1.0, 0.0]
        );
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn sparsity_counts() {
        assert_eq!(sparsity(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        assert_eq!(sparsity(&[]), 0.0);
    }

    #[test]
    fn nonzeros_in_index_order() {
        assert_eq!(nonzeros(&[0.0, 2.0, 0.0, -1.0]), vec![(1, 2.0), (3, -1.0)]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[1] > p[0]);
    }
}
