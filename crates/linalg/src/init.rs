//! Deterministic random initialization helpers.
//!
//! Every stochastic choice in the repository (weight init, dataset
//! generation, SVD sketches, SGD shuffling) flows through a seeded
//! [`rand::rngs::StdRng`], so experiments are bit-reproducible across runs
//! and machines.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the repository-standard seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
///
/// Implemented locally so the workspace does not need `rand_distr`.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 1e-12 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Xavier/Glorot uniform initialization: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`. The classic choice for the
/// tanh/sigmoid era, used here for the predictor factors `U, V` whose
/// outputs feed a (hard) sign rather than a ReLU.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| (rng.gen_range(-limit..limit)) as f32)
}

/// He/Kaiming normal initialization: `N(0, 2 / fan_in)`, the standard for
/// ReLU layers (the paper's hidden layers are all ReLU).
pub fn he_normal(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / cols as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| (gaussian(rng) * std) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = xavier_uniform(4, 5, &mut seeded_rng(7));
        let b = xavier_uniform(4, 5, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_respects_limit() {
        let m = xavier_uniform(30, 30, &mut seeded_rng(1));
        let limit = (6.0f32 / 60.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = seeded_rng(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = seeded_rng(3);
        let wide = he_normal(10, 1000, &mut rng);
        let narrow = he_normal(10, 10, &mut seeded_rng(3));
        let std_wide = wide.frobenius_norm() / (wide.as_slice().len() as f32).sqrt();
        let std_narrow = narrow.frobenius_norm() / (narrow.as_slice().len() as f32).sqrt();
        assert!(std_wide < std_narrow, "{std_wide} vs {std_narrow}");
    }
}
