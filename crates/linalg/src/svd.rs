//! Full singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi orthogonalizes the columns of `A` by plane rotations;
//! at convergence the column norms are the singular values, the normalized
//! columns are the left singular vectors, and the accumulated rotations form
//! the right singular vectors. It is simple, unconditionally stable and — on
//! the small factor matrices the truncated SVD produces — fast enough.

use crate::Matrix;

/// A full (thin) SVD `A = U·diag(s)·Vᵀ` with singular values sorted in
/// descending order.
#[derive(Clone, Debug, PartialEq)]
pub struct Svd {
    /// `m × k` matrix of left singular vectors (`k = min(m, n)`).
    pub u: Matrix,
    /// The `k` singular values, descending.
    pub s: Vec<f32>,
    /// `n × k` matrix of right singular vectors.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U·diag(s)·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let st = self.s[t];
            if st == 0.0 {
                continue;
            }
            let ut = self.u.col(t);
            let vt = self.v.col(t);
            out.add_scaled_outer(st, &ut, &vt);
        }
        out
    }

    /// Keeps only the `r` largest singular triplets.
    pub fn truncate(&self, r: usize) -> Svd {
        let r = r.min(self.s.len());
        Svd {
            u: Matrix::from_fn(self.u.rows(), r, |i, j| self.u.get(i, j)),
            s: self.s[..r].to_vec(),
            v: Matrix::from_fn(self.v.rows(), r, |i, j| self.v.get(i, j)),
        }
    }
}

/// Maximum number of Jacobi sweeps before giving up (convergence is
/// typically reached in well under 15 sweeps).
const MAX_SWEEPS: usize = 42;

/// Computes the thin SVD of `a` by one-sided Jacobi.
///
/// Singular values are returned in descending order; zero singular values
/// get zero left-singular columns (shapes stay `m×k`, `k`, `n×k`).
///
/// Intended for matrices with `min(m, n)` up to a few hundred — the
/// training-scale (1000×1000) truncated decompositions should use
/// [`crate::truncated::truncated_svd`], which only calls this on a small
/// core matrix.
///
/// # Example
///
/// ```
/// use sparsenn_linalg::{Matrix, svd::jacobi_svd};
/// let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
/// let svd = jacobi_svd(&a);
/// assert!((svd.s[0] - 3.0).abs() < 1e-5 && (svd.s[1] - 2.0).abs() < 1e-5);
/// ```
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap factors.
        let t = jacobi_svd(&a.transpose());
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }
    let k = n;

    // Columns of the working matrix in f64 for accumulation accuracy.
    let mut g: Vec<Vec<f64>> = (0..n)
        .map(|j| a.col(j).iter().map(|&x| f64::from(x)).collect())
        .collect();
    // Right-rotation accumulator V (n×n), starts as identity.
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| (0..n).map(|i| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    let eps = 1e-12;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let (alpha, beta, gamma) = {
                    let (ci, cj) = (&g[i], &g[j]);
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for t in 0..m {
                        alpha += ci[t] * ci[t];
                        beta += cj[t] * cj[t];
                        gamma += ci[t] * cj[t];
                    }
                    (alpha, beta, gamma)
                };
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns i and j of G and of V.
                let (gi, gj) = split_two(&mut g, i, j);
                rotate(gi, gj, c, s);
                let (vi, vj) = split_two(&mut v, i, j);
                rotate(vi, vj, c, s);
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and vectors, then sort descending.
    let mut triplets: Vec<(f64, usize)> = g
        .iter()
        .enumerate()
        .map(|(j, col)| (col.iter().map(|x| x * x).sum::<f64>().sqrt(), j))
        .collect();
    triplets.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut u = Matrix::zeros(m, k);
    let mut s_out = vec![0.0f32; k];
    let mut v_out = Matrix::zeros(n, k);
    for (out_j, &(sigma, j)) in triplets.iter().enumerate() {
        s_out[out_j] = sigma as f32;
        if sigma > 0.0 {
            for t in 0..m {
                u.set(t, out_j, (g[j][t] / sigma) as f32);
            }
        }
        for t in 0..n {
            v_out.set(t, out_j, v[j][t] as f32);
        }
    }
    Svd {
        u,
        s: s_out,
        v: v_out,
    }
}

/// Borrow two distinct columns mutably.
fn split_two<T>(cols: &mut [Vec<T>], i: usize, j: usize) -> (&mut Vec<T>, &mut Vec<T>) {
    debug_assert!(i < j);
    let (lo, hi) = cols.split_at_mut(j);
    (&mut lo[i], &mut hi[0])
}

#[inline]
fn rotate(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let xv = *xi;
        let yv = *yi;
        *xi = c * xv - s * yv;
        *yi = s * xv + c * yv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(m: &Matrix, tol: f32) {
        let g = m.transpose().matmul(m);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g.get(i, j) - expect).abs() < tol,
                    "gram[{i},{j}] = {} (expected {expect})",
                    g.get(i, j)
                );
            }
        }
    }

    fn test_matrix(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            ((i * 13 + j * 7) % 17) as f32 - 8.0 + ((i + 2 * j) % 5) as f32 * 0.37
        })
    }

    #[test]
    fn diagonal_matrix_recovers_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 5.0], vec![-4.0, 0.0], vec![0.0, 0.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 5.0).abs() < 1e-5);
        assert!((svd.s[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_is_accurate() {
        let a = test_matrix(12, 8);
        let svd = jacobi_svd(&a);
        let err = a.sub(&svd.reconstruct()).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = test_matrix(10, 6);
        let svd = jacobi_svd(&a);
        assert_orthonormal_cols(&svd.u, 1e-4);
        assert_orthonormal_cols(&svd.v, 1e-4);
    }

    #[test]
    fn singular_values_descend() {
        let a = test_matrix(15, 9);
        let svd = jacobi_svd(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn wide_matrix_handled_by_transpose() {
        let a = test_matrix(5, 11);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.shape(), (5, 5));
        assert_eq!(svd.v.shape(), (11, 5));
        let err = a.sub(&svd.reconstruct()).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-5);
    }

    #[test]
    fn truncation_error_matches_tail_energy() {
        let a = test_matrix(12, 12);
        let svd = jacobi_svd(&a);
        let r = 4;
        let tail: f32 = svd.s[r..].iter().map(|s| s * s).sum::<f32>().sqrt();
        let err = a
            .sub(&svd.truncate(r).reconstruct_truncated())
            .frobenius_norm();
        assert!(
            (err - tail).abs() < 1e-2 * tail.max(1.0),
            "err {err} vs tail {tail}"
        );
    }

    #[test]
    fn rank_deficient_matrix_gets_zero_singulars() {
        // rank-1 matrix
        let a = Matrix::from_fn(6, 4, |i, j| (i as f32 + 1.0) * (j as f32 - 1.5));
        let svd = jacobi_svd(&a);
        assert!(svd.s[0] > 1.0);
        for &s in &svd.s[1..] {
            assert!(s < 1e-4, "expected tiny singular value, got {s}");
        }
    }

    impl Svd {
        fn reconstruct_truncated(&self) -> Matrix {
            self.reconstruct()
        }
    }
}
