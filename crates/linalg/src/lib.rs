//! Dense linear-algebra substrate for the SparseNN reproduction.
//!
//! Everything the training algorithms of the paper need, implemented from
//! scratch:
//!
//! * [`Matrix`] — row-major `f32` matrices with the handful of kernels DNN
//!   training uses (`matvec`, transposed `matvec`, rank-1 updates).
//! * [`vector`] — slice-level vector kernels (dot, axpy, ReLU, Hadamard…).
//! * [`qr`] — thin QR via modified Gram–Schmidt (used by the randomized
//!   truncated SVD).
//! * [`svd`] — one-sided Jacobi SVD, the workhorse behind the **truncated
//!   SVD sparsity predictor** baseline of the paper (Davis et al. \[11\],
//!   LRADNN \[12\]).
//! * [`truncated`] — randomized subspace-iteration truncated SVD, so the
//!   per-epoch `U·V` refresh of the SVD baseline scales to 1000×1000 weight
//!   matrices.
//! * [`init`] — deterministic weight initializers (Xavier/He) built on a
//!   seeded RNG, so every experiment in the repository is reproducible.
//!
//! # Example
//!
//! ```
//! use sparsenn_linalg::{Matrix, truncated::truncated_svd};
//!
//! let a = Matrix::from_fn(6, 4, |i, j| (i as f32) + (j as f32));
//! let svd = truncated_svd(&a, 2, 42);
//! // Rank-2 approximation of a rank-2 matrix is (near) exact.
//! let approx = svd.reconstruct();
//! assert!(a.sub(&approx).frobenius_norm() < 1e-3 * a.frobenius_norm().max(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
mod matrix;
pub mod qr;
pub mod svd;
pub mod truncated;
pub mod vector;

pub use matrix::Matrix;
pub use svd::Svd;
pub use truncated::TruncatedSvd;
