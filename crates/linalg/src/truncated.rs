//! Randomized truncated SVD (Halko–Martinsson–Tropp subspace iteration).
//!
//! The truncated-SVD sparsity predictor of the paper (Davis et al. \[11\],
//! LRADNN \[12\]) needs the top-`r` singular triplets of every weight matrix
//! **once per training epoch**. A full Jacobi SVD of a 1000×1000 matrix per
//! epoch would dominate training time; the randomized sketch brings it down
//! to a handful of matrix–panel products plus a small-core Jacobi SVD.

use crate::qr::qr;
use crate::svd::jacobi_svd;
use crate::Matrix;

/// A rank-`r` truncated SVD `A ≈ U·diag(s)·Vᵀ`.
#[derive(Clone, Debug, PartialEq)]
pub struct TruncatedSvd {
    /// `m × r` left singular vectors.
    pub u: Matrix,
    /// The `r` leading singular values, descending.
    pub s: Vec<f32>,
    /// `n × r` right singular vectors.
    pub v: Matrix,
}

impl TruncatedSvd {
    /// Reconstructs the rank-`r` approximation `U·diag(s)·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut out = Matrix::zeros(self.u.rows(), self.v.rows());
        for t in 0..self.s.len() {
            if self.s[t] == 0.0 {
                continue;
            }
            out.add_scaled_outer(self.s[t], &self.u.col(t), &self.v.col(t));
        }
        out
    }

    /// Splits the approximation into the predictor factor pair
    /// `(U', V')` with `U' = U·√Σ` (`m × r`) and `V' = √Σ·Vᵀ` (`r × n`), so
    /// that `U'·V' ≈ A`.
    ///
    /// This is exactly the form the SparseNN predictor consumes: the paper's
    /// `U⁽ˡ⁾ ∈ R^{m×r}` and `V⁽ˡ⁾ ∈ R^{r×n}` of Eq. (2). Splitting the
    /// singular values symmetrically keeps both factors at comparable scale,
    /// which matters once they are quantized to 16-bit fixed point.
    pub fn predictor_factors(&self) -> (Matrix, Matrix) {
        let r = self.s.len();
        let u = Matrix::from_fn(self.u.rows(), r, |i, j| {
            self.u.get(i, j) * self.s[j].max(0.0).sqrt()
        });
        let v = Matrix::from_fn(r, self.v.rows(), |i, j| {
            self.v.get(j, i) * self.s[i].max(0.0).sqrt()
        });
        (u, v)
    }
}

/// Number of power (subspace) iterations. Two is the usual accuracy /
/// cost sweet spot for spectra that decay slowly (random dense weights).
const POWER_ITERATIONS: usize = 2;

/// Oversampling columns added to the sketch.
const OVERSAMPLE: usize = 8;

/// Computes a rank-`r` truncated SVD of `a` with a seeded Gaussian sketch.
///
/// Deterministic for a given `(a, r, seed)` triple. `r` is clamped to
/// `min(m, n)`.
///
/// # Example
///
/// ```
/// use sparsenn_linalg::{Matrix, truncated::truncated_svd};
/// let a = Matrix::from_fn(20, 12, |i, j| ((i * j) % 7) as f32 - 3.0);
/// let t = truncated_svd(&a, 4, 7);
/// assert_eq!(t.u.shape(), (20, 4));
/// assert_eq!(t.v.shape(), (12, 4));
/// assert_eq!(t.s.len(), 4);
/// ```
pub fn truncated_svd(a: &Matrix, r: usize, seed: u64) -> TruncatedSvd {
    let (m, n) = a.shape();
    let r = r.min(m).min(n).max(1);
    let k = (r + OVERSAMPLE).min(m).min(n);

    // Gaussian sketch Ω (n × k).
    let mut rng = crate::init::seeded_rng(seed);
    let omega = Matrix::from_fn(n, k, |_, _| crate::init::gaussian(&mut rng) as f32);

    // Y = A·Ω, orthonormalize.
    let mut q = qr(&a.matmul(&omega)).q;
    // Subspace (power) iterations: Q ← orth(A·orth(Aᵀ·Q)).
    for _ in 0..POWER_ITERATIONS {
        let z = qr(&a.transpose().matmul(&q)).q;
        q = qr(&a.matmul(&z)).q;
    }

    // Small core B = Qᵀ·A (k × n); SVD via Jacobi on the k-column transpose.
    let b = q.transpose().matmul(a);
    let core = jacobi_svd(&b.transpose()); // Bᵀ = U₁·S·V₁ᵀ  ⇒  B = V₁·S·U₁ᵀ
    let u = q.matmul(&core.v); // m × k
    let v = core.u; // n × k

    TruncatedSvd {
        u: Matrix::from_fn(m, r, |i, j| u.get(i, j)),
        s: core.s[..r].to_vec(),
        v: Matrix::from_fn(n, r, |i, j| v.get(i, j)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank(m: usize, n: usize, rank: usize) -> Matrix {
        let mut a = Matrix::zeros(m, n);
        for t in 0..rank {
            let u: Vec<f32> = (0..m).map(|i| ((i * (t + 3)) % 13) as f32 - 6.0).collect();
            let v: Vec<f32> = (0..n).map(|j| ((j * (t + 5)) % 11) as f32 - 5.0).collect();
            a.add_scaled_outer(1.0 / (t + 1) as f32, &u, &v);
        }
        a
    }

    #[test]
    fn recovers_low_rank_exactly() {
        let a = low_rank(30, 20, 3);
        let t = truncated_svd(&a, 3, 1);
        let err = a.sub(&t.reconstruct()).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-4, "relative error {err}");
    }

    #[test]
    fn agrees_with_full_jacobi_on_leading_values() {
        let a = Matrix::from_fn(16, 12, |i, j| ((i * 5 + j * 11) % 19) as f32 - 9.0);
        let full = jacobi_svd(&a);
        let trunc = truncated_svd(&a, 5, 99);
        for t in 0..5 {
            let rel = (full.s[t] - trunc.s[t]).abs() / full.s[t].max(1e-6);
            assert!(
                rel < 0.05,
                "σ_{t}: full {} vs trunc {}",
                full.s[t],
                trunc.s[t]
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = low_rank(25, 18, 5);
        let t1 = truncated_svd(&a, 4, 1234);
        let t2 = truncated_svd(&a, 4, 1234);
        assert_eq!(t1, t2);
    }

    #[test]
    fn predictor_factors_multiply_back() {
        let a = low_rank(24, 16, 2);
        let t = truncated_svd(&a, 2, 5);
        let (u, v) = t.predictor_factors();
        assert_eq!(u.shape(), (24, 2));
        assert_eq!(v.shape(), (2, 16));
        let err = a.sub(&u.matmul(&v)).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn rank_clamped_to_dimensions() {
        let a = low_rank(6, 4, 2);
        let t = truncated_svd(&a, 100, 3);
        assert_eq!(t.s.len(), 4);
        assert_eq!(t.u.shape(), (6, 4));
    }

    #[test]
    fn better_rank_means_lower_error() {
        let a = Matrix::from_fn(20, 20, |i, j| ((i * 3 + j * 7) % 23) as f32 - 11.0);
        let e1 = a
            .sub(&truncated_svd(&a, 2, 1).reconstruct())
            .frobenius_norm();
        let e2 = a
            .sub(&truncated_svd(&a, 8, 1).reconstruct())
            .frobenius_norm();
        let e3 = a
            .sub(&truncated_svd(&a, 16, 1).reconstruct())
            .frobenius_norm();
        assert!(e1 >= e2 && e2 >= e3, "errors {e1} {e2} {e3} should descend");
    }
}
