//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use sparsenn_linalg::{qr::qr, svd::jacobi_svd, truncated::truncated_svd, vector, Matrix};

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        prop::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// matvec is linear: A(x + αy) = Ax + αAy.
    #[test]
    fn matvec_is_linear(a in matrix_strategy(12), alpha in -3.0f32..3.0) {
        let n = a.cols();
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let y: Vec<f32> = (0..n).map(|i| (i as f32 * 1.3).cos()).collect();
        let mut xy = x.clone();
        vector::axpy(alpha, &y, &mut xy);
        let lhs = a.matvec(&xy);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        for i in 0..a.rows() {
            let rhs = ax[i] + alpha * ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
        }
    }

    /// ⟨Ax, y⟩ = ⟨x, Aᵀy⟩ (adjoint identity links forward and backward pass).
    #[test]
    fn matvec_adjoint_identity(a in matrix_strategy(12)) {
        let x: Vec<f32> = (0..a.cols()).map(|i| (i as f32 * 0.9).sin()).collect();
        let y: Vec<f32> = (0..a.rows()).map(|i| (i as f32 * 0.4).cos()).collect();
        let lhs = vector::dot(&a.matvec(&x), &y);
        let rhs = vector::dot(&x, &a.matvec_t(&y));
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()));
    }

    /// QR reconstructs A.
    #[test]
    fn qr_reconstructs(a in matrix_strategy(10)) {
        let f = qr(&a);
        let err = a.sub(&f.q.matmul(&f.r)).frobenius_norm();
        prop_assert!(err <= 1e-3 * (1.0 + a.frobenius_norm()), "err {err}");
    }

    /// Jacobi SVD reconstructs A and keeps singular values sorted.
    #[test]
    fn svd_reconstructs_and_sorts(a in matrix_strategy(9)) {
        let svd = jacobi_svd(&a);
        let err = a.sub(&svd.reconstruct()).frobenius_norm();
        prop_assert!(err <= 1e-3 * (1.0 + a.frobenius_norm()), "err {err}");
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-5);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    /// The spectral content of the truncated SVD never exceeds the full one,
    /// and reconstruction error is bounded by the tail energy plus slack.
    #[test]
    fn truncated_error_bounded_by_tail(a in matrix_strategy(9), r in 1usize..4) {
        let full = jacobi_svd(&a);
        let r = r.min(full.s.len());
        let t = truncated_svd(&a, r, 11);
        let tail: f32 = full.s[r..].iter().map(|s| s * s).sum::<f32>().sqrt();
        let err = a.sub(&t.reconstruct()).frobenius_norm();
        // Randomized algorithms give (1+ε) approximations; allow 30 % + abs slack.
        prop_assert!(err <= 1.3 * tail + 1e-2 + 0.05 * a.frobenius_norm(),
            "err {err} tail {tail}");
    }

    /// Softmax is a probability distribution and argmax-invariant.
    #[test]
    fn softmax_properties(xs in prop::collection::vec(-30.0f32..30.0, 1..16)) {
        let p = vector::softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert_eq!(vector::argmax(&xs), vector::argmax(&p));
    }
}
