//! Per-operation logic energies and logic-area constants (65 nm anchors).
//!
//! The values are standard-cell estimates of the kind Design Compiler +
//! PrimeTime would report for a 65 nm LP library at the paper's 500 MHz
//! operating point. What matters for the reproduction is their *relative*
//! magnitude versus SRAM accesses — the W-memory read dominates everything
//! else, which is exactly why skipping predicted-zero rows saves energy.

use crate::tech::TechNode;

/// Per-event dynamic energies, picojoules, at a given node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogicEnergies {
    /// One 16×16-bit multiply-accumulate into a wide accumulator.
    pub mac_pj: f64,
    /// One 32/64-bit accumulator addition (router ACC stage).
    pub add_pj: f64,
    /// One activation register file access (read or write).
    pub regfile_pj: f64,
    /// One activation-queue push or pop.
    pub queue_pj: f64,
    /// One predictor-bank bit write.
    pub pred_write_pj: f64,
    /// One predictor-bank LNZD scan.
    pub pred_scan_pj: f64,
    /// One flit traversing one router (buffer write/read + crossbar).
    pub router_hop_pj: f64,
    /// One 32-bit flit traversing one chip-to-chip link of a multi-chip
    /// (model-parallel) system: off-chip SerDes at ~1.25 pJ/bit, more
    /// than an order of magnitude above an on-chip router hop — which is
    /// why partition planners must weigh communication against W-memory
    /// relief.
    pub interchip_hop_pj: f64,
    /// Pipeline/control overhead of a busy datapath cycle.
    pub busy_overhead_pj: f64,
    /// Clock-tree energy of an idle PE cycle.
    pub idle_clock_pj: f64,
}

impl LogicEnergies {
    /// Energies at the given technology node.
    pub fn at(tech: TechNode) -> Self {
        let s = tech.energy_scale();
        Self {
            mac_pj: 1.0 * s,
            add_pj: 0.2 * s,
            regfile_pj: 0.3 * s,
            queue_pj: 0.3 * s,
            pred_write_pj: 0.02 * s,
            pred_scan_pj: 0.10 * s,
            router_hop_pj: 1.8 * s,
            interchip_hop_pj: 40.0 * s,
            busy_overhead_pj: 0.7 * s,
            idle_clock_pj: 0.45 * s,
        }
    }
}

/// Logic-area constants, mm² at 65 nm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogicArea {
    /// Combinational logic per PE (datapath, LNZDs, address generation).
    pub pe_combinational_mm2: f64,
    /// Sequential logic per PE (pipeline registers, queues, register
    /// files, predictor bank).
    pub pe_sequential_mm2: f64,
    /// Buffers/inverters per PE (clock and repeater cells).
    pub pe_buf_inv_mm2: f64,
    /// One router of the H-tree (buffers + crossbar + ACC adder).
    pub router_mm2: f64,
}

impl LogicArea {
    /// Areas at the given technology node.
    ///
    /// 65 nm anchors are calibrated against the paper's Table III:
    /// combinational 1.72 mm², non-combinational 2.07 mm², buf/inv
    /// 0.20 mm² over 64 PEs, and 0.59 mm² of routing over 21 routers.
    pub fn at(tech: TechNode) -> Self {
        let s = tech.area_scale();
        Self {
            pe_combinational_mm2: 0.0214 * s,
            pe_sequential_mm2: 0.0287 * s,
            pe_buf_inv_mm2: 0.0031 * s,
            router_mm2: 0.0281 * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramMacro;

    #[test]
    fn sram_read_dominates_logic_ops() {
        let e = LogicEnergies::at(TechNode::n65());
        let w = SramMacro::new(128 * 1024, 16, TechNode::n65());
        assert!(
            w.read_energy_pj() > 10.0 * e.mac_pj,
            "W read must dominate the MAC"
        );
        assert!(w.read_energy_pj() > 5.0 * e.router_hop_pj);
        assert!(
            e.interchip_hop_pj > 10.0 * e.router_hop_pj,
            "going off-chip must dwarf an on-chip hop"
        );
    }

    #[test]
    fn energies_scale_with_node() {
        let old = LogicEnergies::at(TechNode::n65());
        let new = LogicEnergies::at(TechNode::n28());
        assert!(new.mac_pj < old.mac_pj);
        assert!((new.mac_pj / old.mac_pj - new.add_pj / old.add_pj).abs() < 1e-12);
    }

    #[test]
    fn idle_cycles_are_much_cheaper_than_busy_work() {
        let e = LogicEnergies::at(TechNode::n65());
        let w = SramMacro::new(128 * 1024, 16, TechNode::n65());
        let busy = w.read_energy_pj() + e.mac_pj + e.busy_overhead_pj;
        assert!(e.idle_clock_pj < busy / 20.0);
    }
}
