//! Technology nodes and their first-order scaling factors.

/// A CMOS technology node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TechNode {
    nm: u32,
}

/// The reference node every constant in this crate is calibrated at
/// (TSMC 65 nm LP, the paper's implementation node).
pub const REFERENCE_NM: u32 = 65;

impl TechNode {
    /// A node at `nm` nanometres.
    ///
    /// # Panics
    ///
    /// Panics on a zero feature size.
    pub fn new(nm: u32) -> Self {
        assert!(nm > 0, "feature size must be positive");
        Self { nm }
    }

    /// The paper's implementation node.
    pub fn n65() -> Self {
        Self { nm: 65 }
    }

    /// DNN-Engine's node (Table IV).
    pub fn n28() -> Self {
        Self { nm: 28 }
    }

    /// Feature size in nanometres.
    pub fn nm(&self) -> u32 {
        self.nm
    }

    /// Dynamic-energy scale factor relative to 65 nm.
    ///
    /// Energy per switched node goes as `C·V²`; with constant-field scaling
    /// both shrink with feature size. The exponent 1.6 is fitted so the
    /// combined capacity + node scaling reproduces the paper's CACTI
    /// observation (28 nm/1 MB → 65 nm/8 MB ≈ 11× per access — see
    /// [`crate::scaling`]).
    pub fn energy_scale(&self) -> f64 {
        (f64::from(self.nm) / f64::from(REFERENCE_NM)).powf(1.6)
    }

    /// Area scale factor relative to 65 nm (classic `L²` scaling).
    pub fn area_scale(&self) -> f64 {
        let r = f64::from(self.nm) / f64::from(REFERENCE_NM);
        r * r
    }
}

impl Default for TechNode {
    fn default() -> Self {
        Self::n65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_unity() {
        let t = TechNode::n65();
        assert!((t.energy_scale() - 1.0).abs() < 1e-12);
        assert!((t.area_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_nodes_are_cheaper() {
        let t = TechNode::n28();
        assert!(t.energy_scale() < 1.0);
        assert!(t.area_scale() < 0.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_nm_panics() {
        TechNode::new(0);
    }
}
