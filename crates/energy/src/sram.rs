//! CACTI-style SRAM macro model.
//!
//! First-order technology-independent scaling laws calibrated at 65 nm:
//!
//! * dynamic read energy ∝ √capacity (bitline + decoder energy grows with
//!   the array's linear dimension);
//! * access time ∝ capacity^⅓ — calibrated so the 128 KB W macro needs
//!   more than 1.7 ns, the paper's stated reason for the 2 ns clock;
//! * leakage ∝ capacity;
//! * area ∝ capacity (≈ 8 mm²/MB at 65 nm, which puts the Table II machine
//!   at Table III's ≈ 74 mm² of macro).

use crate::tech::TechNode;

/// One on-chip SRAM macro.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramMacro {
    capacity_bytes: usize,
    word_bits: u32,
    tech: TechNode,
}

/// Read energy per 16-bit word of a 128 KB macro at 65 nm, picojoules
/// (CACTI-6.5-flavoured anchor point).
const READ_PJ_ANCHOR: f64 = 36.0;
const ANCHOR_SQRT_BYTES: f64 = 362.038_671_967_512_36; // √131072

impl SramMacro {
    /// A macro of `capacity_bytes` with `word_bits`-wide ports.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or word width.
    pub fn new(capacity_bytes: usize, word_bits: u32, tech: TechNode) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(word_bits > 0, "word width must be positive");
        Self {
            capacity_bytes,
            word_bits,
            tech,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Dynamic energy of one read access, picojoules.
    pub fn read_energy_pj(&self) -> f64 {
        READ_PJ_ANCHOR * (self.capacity_bytes as f64).sqrt() / ANCHOR_SQRT_BYTES
            * (f64::from(self.word_bits) / 16.0)
            * self.tech.energy_scale()
    }

    /// Dynamic energy of one write access, picojoules (≈ 10 % above read).
    pub fn write_energy_pj(&self) -> f64 {
        self.read_energy_pj() * 1.1
    }

    /// Static leakage power, milliwatts (1.2 µW/KB at 65 nm LP).
    pub fn leakage_mw(&self) -> f64 {
        1.2e-3 * (self.capacity_bytes as f64 / 1024.0) * self.tech.energy_scale()
    }

    /// Random-access time, nanoseconds (`0.35 · KB^⅓` at 65 nm).
    pub fn access_time_ns(&self) -> f64 {
        0.35 * (self.capacity_bytes as f64 / 1024.0).cbrt() * (f64::from(self.tech.nm()) / 65.0)
    }

    /// Macro area, mm² (8.28 mm²/MB at 65 nm).
    pub fn area_mm2(&self) -> f64 {
        8.28 * (self.capacity_bytes as f64 / (1024.0 * 1024.0)) * self.tech.area_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w_macro() -> SramMacro {
        SramMacro::new(128 * 1024, 16, TechNode::n65())
    }

    fn uv_macro() -> SramMacro {
        SramMacro::new(8 * 1024, 16, TechNode::n65())
    }

    #[test]
    fn anchor_is_exact() {
        assert!((w_macro().read_energy_pj() - 36.0).abs() < 1e-6);
    }

    #[test]
    fn small_macros_are_cheaper_per_access() {
        // √(128K/8K) = 4: the U/V memories cost a quarter per access.
        let ratio = w_macro().read_energy_pj() / uv_macro().read_energy_pj();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn w_macro_access_time_justifies_2ns_clock() {
        // Paper: "the access time of the 128KB SRAM is more than 1.7 ns".
        let t = w_macro().access_time_ns();
        assert!(t > 1.7 && t < 2.0, "access time {t} ns");
    }

    #[test]
    fn area_tracks_capacity_linearly() {
        let a = w_macro().area_mm2();
        let b = uv_macro().area_mm2();
        assert!((a / b - 16.0).abs() < 1e-9);
        // One PE's macros (128 + 8 + 8 KB) ≈ Table III's 74.4/64 ≈ 1.16 mm².
        let per_pe = a + 2.0 * b;
        assert!(
            (per_pe - 1.16).abs() < 0.05,
            "per-PE macro area {per_pe} mm²"
        );
    }

    #[test]
    fn newer_node_cuts_energy_and_area() {
        let old = SramMacro::new(1 << 20, 16, TechNode::n65());
        let new = SramMacro::new(1 << 20, 16, TechNode::n28());
        assert!(new.read_energy_pj() < old.read_energy_pj() / 2.0);
        assert!(new.area_mm2() < old.area_mm2() / 4.0);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        assert!(w_macro().write_energy_pj() > w_macro().read_energy_pj());
    }
}
