//! Energy, power and area models for the SparseNN accelerator.
//!
//! The paper's hardware numbers come from Synopsys Design Compiler +
//! PrimeTime (logic) and CACTI 6.5 (SRAM) at TSMC 65 nm LP. This crate is
//! the reproduction's analytic substitute: a CACTI-style SRAM model
//! ([`sram`]), per-operation logic energies ([`logic`]), a power estimator
//! that consumes the cycle-level simulator's event counters ([`power`]) —
//! the analogue of feeding post-synthesis toggle rates into PrimeTime —
//! an area report reproducing Table III ([`area`]), and the
//! technology-scaling rules behind Table IV's 4× energy-efficiency argument
//! ([`scaling`]).
//!
//! Calibration: the model's constants are anchored so that (a) the default
//! machine's area breakdown lands on Table III (≈ 78 mm², ≈ 95 % memory
//! macro, < 1 % routing), (b) a 128 KB SRAM access takes > 1.7 ns
//! (the paper's reason for the 2 ns clock) and (c) the 28 nm → 65 nm,
//! 1 MB → 8 MB per-access energy ratio is ≈ 11× (the paper's CACTI-derived
//! scaling factor). Everything else follows from the event counts, so the
//! uv_on/uv_off comparison is mechanism-driven, not curve-fit.
//!
//! # Example
//!
//! ```
//! use sparsenn_energy::{area::area_report, power::PowerModel};
//! use sparsenn_sim::{MachineConfig, MachineEvents};
//!
//! let cfg = MachineConfig::default();
//! let report = area_report(&cfg);
//! assert!(report.total_mm2 > 70.0 && report.total_mm2 < 90.0);
//!
//! let model = PowerModel::new(&cfg);
//! let mut ev = MachineEvents::default();
//! ev.cycles = 1000;
//! ev.w_reads = 64_000;
//! ev.macs = 64_000;
//! let p = model.estimate(&ev);
//! assert!(p.total_mw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod logic;
pub mod power;
pub mod scaling;
pub mod sram;
pub mod tech;

pub use power::{PowerModel, PowerReport};
pub use tech::TechNode;
