//! Area report reproducing the paper's Table III.

use crate::logic::LogicArea;
use crate::sram::SramMacro;
use crate::tech::TechNode;
use sparsenn_sim::MachineConfig;
use std::fmt;

/// Area breakdown of the accelerator, mm², in Table III's rows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaReport {
    /// Total die area.
    pub total_mm2: f64,
    /// Combinational standard cells.
    pub combinational_mm2: f64,
    /// Buffer/inverter cells (subset of combinational in the paper's
    /// report; listed separately, same convention here).
    pub buf_inv_mm2: f64,
    /// Sequential (non-combinational) cells.
    pub non_combinational_mm2: f64,
    /// SRAM macros.
    pub macro_mm2: f64,
    /// One processing element (logic + its macros).
    pub pe_mm2: f64,
    /// All routing logic (the 21 H-tree routers).
    pub routing_mm2: f64,
}

impl AreaReport {
    /// Fraction of the total taken by SRAM macros.
    pub fn macro_fraction(&self) -> f64 {
        self.macro_mm2 / self.total_mm2
    }

    /// Fraction of the total taken by routing.
    pub fn routing_fraction(&self) -> f64 {
        self.routing_mm2 / self.total_mm2
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Area breakdown (mm^2):")?;
        writeln!(f, "  Total              {:>12.3} (100%)", self.total_mm2)?;
        writeln!(
            f,
            "  Combinational      {:>12.3} ({:.1}%)",
            self.combinational_mm2,
            100.0 * self.combinational_mm2 / self.total_mm2
        )?;
        writeln!(
            f,
            "  Buf/Inv            {:>12.3} ({:.1}%)",
            self.buf_inv_mm2,
            100.0 * self.buf_inv_mm2 / self.total_mm2
        )?;
        writeln!(
            f,
            "  Non-combinational  {:>12.3} ({:.1}%)",
            self.non_combinational_mm2,
            100.0 * self.non_combinational_mm2 / self.total_mm2
        )?;
        writeln!(
            f,
            "  Macro (Memory)     {:>12.3} ({:.1}%)",
            self.macro_mm2,
            100.0 * self.macro_fraction()
        )?;
        writeln!(
            f,
            "  Processing element {:>12.3} x{} ({:.1}%)",
            self.pe_mm2,
            64,
            100.0 * self.pe_mm2 * 64.0 / self.total_mm2
        )?;
        write!(
            f,
            "  Routing logics     {:>12.3} ({:.1}%)",
            self.routing_mm2,
            100.0 * self.routing_fraction()
        )
    }
}

/// Number of routers in a radix-4 three-level H-tree over 64 PEs.
fn router_count(cfg: &MachineConfig) -> usize {
    let mut total = 0;
    let mut n = cfg.num_pes();
    while n > 1 {
        n /= cfg.noc.radix;
        total += n;
    }
    total
}

/// Computes the area report for a machine configuration at 65 nm.
pub fn area_report(cfg: &MachineConfig) -> AreaReport {
    area_report_at(cfg, TechNode::n65())
}

/// Computes the area report at an arbitrary node.
pub fn area_report_at(cfg: &MachineConfig, tech: TechNode) -> AreaReport {
    let logic = LogicArea::at(tech);
    let w = SramMacro::new(cfg.w_mem_bytes, 16, tech);
    let u = SramMacro::new(cfg.u_mem_bytes, 16, tech);
    let v = SramMacro::new(cfg.v_mem_bytes, 16, tech);
    let n = cfg.num_pes() as f64;

    let macro_per_pe = w.area_mm2() + u.area_mm2() + v.area_mm2();
    let pe_logic = logic.pe_combinational_mm2 + logic.pe_sequential_mm2 + logic.pe_buf_inv_mm2;
    let pe = macro_per_pe + pe_logic;
    let routing = router_count(cfg) as f64 * logic.router_mm2;
    let total = pe * n + routing;

    AreaReport {
        total_mm2: total,
        combinational_mm2: logic.pe_combinational_mm2 * n + routing * 0.6,
        buf_inv_mm2: logic.pe_buf_inv_mm2 * n,
        non_combinational_mm2: logic.pe_sequential_mm2 * n + routing * 0.4,
        macro_mm2: macro_per_pe * n,
        pe_mm2: pe,
        routing_mm2: routing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_matches_table_iii_shape() {
        let r = area_report(&MachineConfig::default());
        // Paper: 78.4 mm² total, 94.8 % macro, < 1 % routing,
        // PE = 1.216 mm² × 64 = 99.2 %.
        assert!(
            (r.total_mm2 - 78.4).abs() < 6.0,
            "total {:.1} mm²",
            r.total_mm2
        );
        assert!(
            (r.macro_fraction() - 0.948).abs() < 0.02,
            "macro {:.3}",
            r.macro_fraction()
        );
        assert!(
            r.routing_fraction() < 0.01,
            "routing {:.4}",
            r.routing_fraction()
        );
        assert!((r.pe_mm2 - 1.216).abs() < 0.1, "PE {:.3} mm²", r.pe_mm2);
    }

    #[test]
    fn router_count_is_21_for_the_default_tree() {
        assert_eq!(router_count(&MachineConfig::default()), 16 + 4 + 1);
    }

    #[test]
    fn components_are_consistent() {
        let r = area_report(&MachineConfig::default());
        let rebuilt = r.macro_mm2 + r.combinational_mm2 + r.non_combinational_mm2 + r.buf_inv_mm2;
        assert!((rebuilt - r.total_mm2).abs() < 0.02 * r.total_mm2);
        assert!((r.pe_mm2 * 64.0 + r.routing_mm2 - r.total_mm2).abs() < 1e-9);
    }

    #[test]
    fn display_contains_all_rows() {
        let s = area_report(&MachineConfig::default()).to_string();
        for needle in ["Total", "Combinational", "Buf/Inv", "Macro", "Routing"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn smaller_node_shrinks_everything() {
        let big = area_report(&MachineConfig::default());
        let small = area_report_at(&MachineConfig::default(), TechNode::n28());
        assert!(small.total_mm2 < big.total_mm2 / 4.0);
    }
}
