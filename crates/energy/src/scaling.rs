//! Cross-technology comparison rules (the paper's Table IV argument).
//!
//! The paper compares the 65 nm SparseNN against the 28 nm DNN-Engine by
//! scaling per-access memory energy: "the energy consumption per read
//! access is roughly 11× when the technology node is scaled from 28 nm to
//! 65 nm and the memory size changes from 1 MB to 8 MB". This module
//! reproduces that factor from the [`crate::sram`] model and provides the
//! normalized energy-efficiency comparison used to reach the paper's
//! "4× better energy-efficiency" conclusion.

use crate::sram::SramMacro;
use crate::tech::TechNode;

/// Ratio of per-access read energies between two `(capacity bytes, node)`
/// memory configurations.
pub fn per_access_energy_ratio(to: (usize, TechNode), from: (usize, TechNode)) -> f64 {
    let a = SramMacro::new(to.0, 16, to.1);
    let b = SramMacro::new(from.0, 16, from.1);
    a.read_energy_pj() / b.read_energy_pj()
}

/// The paper's normalization: scale a foreign platform's energy up to the
/// SparseNN memory configuration (8 MB at 65 nm) before comparing.
///
/// Returns `(scaling_factor, scaled_energy_uj)`.
pub fn normalize_energy_to_sparsenn(
    foreign_energy_uj: f64,
    foreign_mem_bytes: usize,
    foreign_tech: TechNode,
) -> (f64, f64) {
    let factor = per_access_energy_ratio(
        (8 * 1024 * 1024, TechNode::n65()),
        (foreign_mem_bytes, foreign_tech),
    );
    (factor, foreign_energy_uj * factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaling_factor_is_about_11x() {
        // 28 nm / 1 MB  →  65 nm / 8 MB.
        let r = per_access_energy_ratio(
            (8 * 1024 * 1024, TechNode::n65()),
            (1_000_000, TechNode::n28()),
        );
        assert!(
            (9.0..13.0).contains(&r),
            "scaling factor {r}, paper says ≈ 11×"
        );
    }

    #[test]
    fn identity_scaling_is_one() {
        let r = per_access_energy_ratio((1 << 20, TechNode::n65()), (1 << 20, TechNode::n65()));
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_reproduces_the_4x_conclusion() {
        // Paper: DNN-Engine ≈ 5.1 µJ on BG-RAND layer 1; SparseNN ≈ 14 µJ;
        // after the ≈ 11× normalization SparseNN is ≈ 4× more efficient.
        let (factor, scaled) = normalize_energy_to_sparsenn(5.1, 1_000_000, TechNode::n28());
        let sparsenn_uj = 14.0;
        let advantage = scaled / sparsenn_uj;
        assert!(factor > 9.0 && factor < 13.0);
        assert!(
            (2.5..6.0).contains(&advantage),
            "advantage {advantage:.1}×, paper concludes ≈ 4×"
        );
    }
}
