//! Power and energy estimation from simulator event counts.
//!
//! The reproduction's PrimeTime: the cycle-level simulator reports *what
//! toggled* ([`MachineEvents`]), this module prices each event and divides
//! by wall-clock time. All components are reported separately so the
//! benches can show *where* the uv_on savings come from (fewer W-memory
//! reads, cheap U/V accesses, idle cycles).

use crate::logic::LogicEnergies;
use crate::sram::SramMacro;
use crate::tech::TechNode;
use sparsenn_sim::{MachineConfig, MachineEvents};
use std::fmt;

/// Power/energy estimate for one simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerReport {
    /// Execution time, microseconds.
    pub time_us: f64,
    /// W-memory dynamic power, mW.
    pub w_mem_mw: f64,
    /// U + V memory dynamic power, mW.
    pub uv_mem_mw: f64,
    /// Datapath (MAC + pipeline overhead) power, mW.
    pub datapath_mw: f64,
    /// Register files, queues and predictor bank power, mW.
    pub regfile_mw: f64,
    /// NoC power (router hops + ACC merges), mW.
    pub noc_mw: f64,
    /// Chip-level interconnect power of a multi-chip (model-parallel)
    /// run, mW. 0 for single-chip simulations.
    pub interchip_mw: f64,
    /// Idle clocking power, mW.
    pub idle_mw: f64,
    /// Static leakage (all SRAM macros), mW.
    pub leakage_mw: f64,
    /// Total power, mW.
    pub total_mw: f64,
    /// Total energy, microjoules.
    pub energy_uj: f64,
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "time {:.2} us, energy {:.2} uJ, power {:.1} mW",
            self.time_us, self.energy_uj, self.total_mw
        )?;
        write!(
            f,
            "  W-mem {:.1} | U/V-mem {:.1} | datapath {:.1} | RF/queues {:.1} | NoC {:.1} | inter-chip {:.1} | idle {:.1} | leakage {:.1} (mW)",
            self.w_mem_mw, self.uv_mem_mw, self.datapath_mw, self.regfile_mw,
            self.noc_mw, self.interchip_mw, self.idle_mw, self.leakage_mw
        )
    }
}

/// Prices simulator events at a technology node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    clock_ns: f64,
    energies: LogicEnergies,
    w_read_pj: f64,
    uv_read_pj: f64,
    leakage_mw: f64,
}

impl PowerModel {
    /// Builds the model for a machine configuration at 65 nm.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::at_node(cfg, TechNode::n65())
    }

    /// Builds the model for a machine configuration at a given node.
    pub fn at_node(cfg: &MachineConfig, tech: TechNode) -> Self {
        let w = SramMacro::new(cfg.w_mem_bytes, 16, tech);
        let u = SramMacro::new(cfg.u_mem_bytes, 16, tech);
        let v = SramMacro::new(cfg.v_mem_bytes, 16, tech);
        let n = cfg.num_pes() as f64;
        Self {
            clock_ns: cfg.clock_ns,
            energies: LogicEnergies::at(tech),
            w_read_pj: w.read_energy_pj(),
            // U and V macros are the same size by default; average anyway.
            uv_read_pj: (u.read_energy_pj() + v.read_energy_pj()) / 2.0,
            leakage_mw: n * (w.leakage_mw() + u.leakage_mw() + v.leakage_mw()),
        }
    }

    /// Estimates power and energy for one simulation's event counts.
    pub fn estimate(&self, ev: &MachineEvents) -> PowerReport {
        let e = &self.energies;
        let time_us = ev.cycles as f64 * self.clock_ns * 1e-3;

        let w_mem_pj = ev.w_reads as f64 * self.w_read_pj;
        let uv_mem_pj = (ev.u_reads + ev.v_reads) as f64 * self.uv_read_pj;
        let datapath_pj = ev.macs as f64 * e.mac_pj + ev.pe_busy_cycles as f64 * e.busy_overhead_pj;
        let regfile_pj = (ev.src_reads + ev.dst_writes) as f64 * e.regfile_pj
            + (ev.queue_pushes + ev.queue_pops) as f64 * e.queue_pj
            + ev.pred_writes as f64 * e.pred_write_pj
            + ev.pred_scans as f64 * e.pred_scan_pj;
        let noc_pj = ev.noc.hops as f64 * e.router_hop_pj + ev.noc.acc_merges as f64 * e.add_pj;
        let interchip_pj = ev.interchip_flit_hops as f64 * e.interchip_hop_pj;
        let idle_pj = ev.pe_idle_cycles as f64 * e.idle_clock_pj;

        let dynamic_pj =
            w_mem_pj + uv_mem_pj + datapath_pj + regfile_pj + noc_pj + interchip_pj + idle_pj;
        let leak_uj = self.leakage_mw * time_us * 1e-3;
        let energy_uj = dynamic_pj * 1e-6 + leak_uj;

        // pJ / µs = µW; ×10⁻³ → mW.
        let to_mw = |pj: f64| {
            if time_us > 0.0 {
                pj / time_us * 1e-3
            } else {
                0.0
            }
        };
        let total_mw = if time_us > 0.0 {
            energy_uj / time_us * 1e3
        } else {
            0.0
        };
        PowerReport {
            time_us,
            w_mem_mw: to_mw(w_mem_pj),
            uv_mem_mw: to_mw(uv_mem_pj),
            datapath_mw: to_mw(datapath_pj),
            regfile_mw: to_mw(regfile_pj),
            noc_mw: to_mw(noc_pj),
            interchip_mw: to_mw(interchip_pj),
            idle_mw: to_mw(idle_pj),
            leakage_mw: self.leakage_mw,
            total_mw,
            energy_uj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_events(cycles: u64) -> MachineEvents {
        // A fully-busy uv_off machine: every PE reads W + MACs every cycle.
        let pes = 64;
        MachineEvents {
            cycles,
            w_cycles: cycles,
            w_reads: cycles * pes,
            macs: cycles * pes,
            pe_busy_cycles: cycles * pes,
            ..MachineEvents::default()
        }
    }

    #[test]
    fn fully_busy_machine_lands_in_fig7_power_range() {
        let model = PowerModel::new(&MachineConfig::default());
        let p = model.estimate(&busy_events(10_000));
        // The paper's uv_off power is high hundreds of mW to ~1.4 W.
        assert!(
            p.total_mw > 800.0 && p.total_mw < 1800.0,
            "busy power {:.0} mW outside the plausible range",
            p.total_mw
        );
        assert!(p.w_mem_mw > 0.75 * p.total_mw, "W memory must dominate");
    }

    #[test]
    fn components_sum_to_total() {
        let model = PowerModel::new(&MachineConfig::default());
        let mut ev = busy_events(5_000);
        ev.u_reads = 10_000;
        ev.v_reads = 10_000;
        ev.noc.hops = 3_000;
        ev.interchip_flit_hops = 1_000;
        ev.pe_idle_cycles = 10_000;
        let p = model.estimate(&ev);
        assert!(p.interchip_mw > 0.0);
        let sum = p.w_mem_mw
            + p.uv_mem_mw
            + p.datapath_mw
            + p.regfile_mw
            + p.noc_mw
            + p.interchip_mw
            + p.idle_mw
            + p.leakage_mw;
        assert!((sum - p.total_mw).abs() < 1e-6 * p.total_mw);
    }

    #[test]
    fn energy_scales_with_events_power_with_rate() {
        let model = PowerModel::new(&MachineConfig::default());
        let a = model.estimate(&busy_events(1_000));
        let b = model.estimate(&busy_events(2_000));
        assert!((b.energy_uj / a.energy_uj - 2.0).abs() < 0.01);
        assert!(
            (b.total_mw - a.total_mw).abs() < 1.0,
            "steady-state power is rate-invariant"
        );
    }

    #[test]
    fn zero_cycles_is_safe() {
        let model = PowerModel::new(&MachineConfig::default());
        let p = model.estimate(&MachineEvents::default());
        assert_eq!(p.total_mw, 0.0);
        assert_eq!(p.energy_uj, 0.0);
    }

    #[test]
    fn display_mentions_all_components() {
        let model = PowerModel::new(&MachineConfig::default());
        let s = model.estimate(&busy_events(100)).to_string();
        for needle in ["W-mem", "U/V-mem", "NoC", "leakage"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
