//! Property-based verification of the two-stage kernel against the golden
//! fixed-point model: prescan coverage is exact, outputs are bit-identical
//! in both UV modes, batched runs equal their serial counterparts sample
//! by sample, and the prescan never does more work than dense.

use proptest::prelude::*;
use sparsenn_kernel::{BlockIndex, Scratch, SparseKernel, Strategy};
use sparsenn_linalg::init::seeded_rng;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_model::{Mlp, PredictedNetwork};
use sparsenn_numeric::Q6_10;

fn build_net(seed: u64, hidden: usize, rank: usize) -> FixedNetwork {
    let mut rng = seeded_rng(seed);
    let mlp = Mlp::random(&[24, hidden, 10], &mut rng);
    let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
    FixedNetwork::from_float(&net)
}

fn build_input(seed: u64, len: usize, sparsity_pct: u8) -> Vec<f32> {
    let mut rng = seeded_rng(seed ^ 0xDEAD);
    (0..len)
        .map(|_| {
            use rand::Rng;
            if rng.gen_range(0u8..100) < sparsity_pct {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The prescan index covers the nonzeros exactly: every nonzero lies
    /// in a live block (no misses) and every live block holds at least one
    /// nonzero (no dead blocks in the live list), for random vectors,
    /// sparsity levels and block sizes.
    #[test]
    fn prescan_coverage_is_exact(
        seed in 0u64..10_000,
        len in 1usize..600,
        block in 1usize..48,
        sparsity in 0u8..100,
    ) {
        let x: Vec<Q6_10> = build_input(seed, len, sparsity)
            .iter()
            .map(|&v| Q6_10::from_f32(v))
            .collect();
        let mut idx = BlockIndex::new();
        idx.prescan(&x, block);
        prop_assert_eq!(idx.blocks(), len.div_ceil(block));
        let mut nnz = 0u64;
        for (j, v) in x.iter().enumerate() {
            if !v.is_zero() {
                nnz += 1;
                prop_assert!(idx.is_live(j / block), "nonzero at {} missed", j);
            }
        }
        prop_assert_eq!(idx.nnz(), nnz);
        for &b in idx.live() {
            let o = b as usize * block;
            prop_assert!(
                x[o..(o + block).min(len)].iter().any(|v| !v.is_zero()),
                "block {} live but all-zero", b
            );
        }
        // The live list and the mask words agree.
        for b in 0..idx.blocks() {
            prop_assert_eq!(idx.is_live(b), idx.live().contains(&(b as u32)));
        }
        // The coalesced runs flatten back to exactly the live list, and
        // every run is maximal (no two adjacent runs touch).
        let flat: Vec<u32> = idx
            .runs()
            .iter()
            .flat_map(|&(s, n)| s..s + n)
            .collect();
        prop_assert_eq!(flat.as_slice(), idx.live());
        for w in idx.runs().windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0, "runs {:?} not maximal", w);
        }
    }

    /// Kernel outputs and masks are bit-identical to the golden model for
    /// random networks, inputs, block sizes, both strategies and both UV
    /// modes — and prescan never touches more words than dense.
    #[test]
    fn kernel_is_bit_exact_vs_golden(
        seed in 0u64..10_000,
        hidden in 8usize..96,
        rank in 1usize..6,
        block in 1usize..40,
        sparsity in 0u8..100,
        uv_on in any::<bool>(),
    ) {
        let net = build_net(seed, hidden, rank);
        let x = net.quantize_input(&build_input(seed, 24, sparsity));
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let kernel = SparseKernel::pack(&net, block);
        let mut s = kernel.scratch();
        let golden = net.forward(&x, mode);
        for strategy in [Strategy::Prescan, Strategy::Dense] {
            let run = kernel.run(&x, mode, strategy, &mut s);
            for (l, (r, g)) in run.layers.iter().zip(&golden).enumerate() {
                prop_assert_eq!(&r.output, &g.output,
                    "layer {} output differs ({:?})", l, strategy);
                prop_assert_eq!(&r.mask, &g.mask,
                    "layer {} mask differs ({:?})", l, strategy);
            }
        }
        // Work accounting: prescan touches no more W words than dense,
        // modulo the padding slack of the final partial block (the panels
        // really do read whole blocks).
        let pre = kernel.run(&x, mode, Strategy::Prescan, &mut s);
        let dense = kernel.run(&x, mode, Strategy::Dense, &mut s);
        for (l, (p, d)) in pre.layers.iter().zip(&dense.layers).enumerate() {
            let padded = (p.stats.cols as usize).div_ceil(block) * block;
            let slack = p.stats.active_rows * (padded as u64 - p.stats.cols);
            prop_assert!(p.stats.w_words <= d.stats.w_words + slack,
                "layer {}: {} > {} + {}", l, p.stats.w_words, d.stats.w_words, slack);
            prop_assert!(p.stats.live_blocks <= p.stats.total_blocks, "layer {}", l);
            prop_assert_eq!(p.stats.nnz_in, d.stats.nnz_in, "layer {}", l);
        }
    }

    /// A batched run is bit-identical to B serial runs for B ∈ 1..=8, both
    /// UV modes and both strategies — outputs, masks AND per-layer stats —
    /// and the batch W book never exceeds the serial book.
    #[test]
    fn run_batch_matches_serial_per_sample(
        seed in 0u64..10_000,
        hidden in 8usize..64,
        b in 1usize..=8,
        block in 1usize..40,
        uv_on in any::<bool>(),
    ) {
        let net = build_net(seed, hidden, 3);
        let inputs: Vec<_> = (0..b)
            .map(|s| {
                let sparsity = (20 + s * 9) as u8 % 100;
                net.quantize_input(&build_input(seed ^ ((s as u64) << 16), 24, sparsity))
            })
            .collect();
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let kernel = SparseKernel::pack(&net, block);
        let mut s = kernel.scratch();
        for strategy in [Strategy::Prescan, Strategy::Dense] {
            let batch = kernel.run_batch(&inputs, mode, strategy, &mut s);
            prop_assert_eq!(batch.runs.len(), b);
            let mut serial_words = 0u64;
            for (si, x) in inputs.iter().enumerate() {
                let own = kernel.run(x, mode, strategy, &mut s);
                prop_assert_eq!(&batch.runs[si], &own,
                    "sample {} differs from its serial run ({:?})", si, strategy);
                serial_words += own.layers.iter().map(|l| l.stats.w_words).sum::<u64>();
            }
            prop_assert_eq!(batch.w_words_serial, serial_words, "{:?}", strategy);
            prop_assert!(batch.w_words_batch <= batch.w_words_serial,
                "batching never adds W traffic ({:?})", strategy);
            prop_assert!(batch.w_amortization() >= 1.0);
            if b == 1 && strategy == Strategy::Prescan {
                // A batch of one amortizes nothing the serial book counts…
                // unless a masked-off row left its panel unread serially
                // while the union pass (built only from active samples)
                // counts the same zero. Both books agree at B = 1.
                prop_assert_eq!(batch.w_words_batch, batch.w_words_serial);
            }
        }
    }

    /// The scratch arena is reusable: interleaving runs of different
    /// shapes, strategies and modes through one scratch never changes
    /// results vs a fresh scratch.
    #[test]
    fn scratch_reuse_never_changes_results(
        seed in 0u64..5_000,
        uv_on in any::<bool>(),
    ) {
        let small = build_net(seed, 8, 2);
        let big = build_net(seed ^ 1, 80, 4);
        let xs = small.quantize_input(&build_input(seed, 24, 50));
        let xb = big.quantize_input(&build_input(seed ^ 2, 24, 30));
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let ks = SparseKernel::pack(&small, 16);
        let kb = SparseKernel::pack(&big, 16);
        let mut shared = Scratch::default();
        // Warm the shared scratch on the big net, then reuse on the small.
        let _ = kb.run(&xb, mode, Strategy::Prescan, &mut shared);
        let reused = ks.run(&xs, mode, Strategy::Prescan, &mut shared);
        let fresh = ks.run(&xs, mode, Strategy::Prescan, &mut ks.scratch());
        prop_assert_eq!(reused, fresh);
    }
}
