//! Stage 1: the prescan — a nonzero-block index over an activation vector.

use sparsenn_numeric::Q6_10;

/// The nonzero-block index one prescan pass produces: a bitmask word per
/// 64 blocks (bit set = block holds at least one nonzero activation), the
/// ascending live-block list derived from the words by a trailing-zeros
/// scan, and the live blocks coalesced into maximal adjacent runs — real
/// sparsity patterns cluster (glyph strokes, ReLU'd activations), so the
/// compute stage iterates a few long contiguous segments instead of many
/// block-sized ones.
///
/// Reused across layers and samples: [`prescan`](Self::prescan) clears and
/// refills in place, so a warmed index never allocates.
#[derive(Clone, Debug, Default)]
pub struct BlockIndex {
    block: usize,
    blocks: usize,
    words: Vec<u64>,
    live: Vec<u32>,
    runs: Vec<(u32, u32)>,
    nnz: u64,
}

impl BlockIndex {
    /// An empty index (fills on first [`prescan`](Self::prescan)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks `x` once, recording which fixed-size column blocks hold at
    /// least one nonzero activation (and the exact nonzero count, for the
    /// activity book). `x.len()` need not be a multiple of `block`; the
    /// final partial chunk forms the last block.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn prescan(&mut self, x: &[Q6_10], block: usize) {
        assert!(block > 0, "block size must be positive");
        let blocks = x.len().div_ceil(block);
        self.block = block;
        self.blocks = blocks;
        self.words.clear();
        self.words.resize(blocks.div_ceil(64), 0);
        self.nnz = 0;
        for (b, chunk) in x.chunks(block).enumerate() {
            // Branchless count so the scan vectorizes — the block verdict
            // falls out of it for free.
            let nz = chunk.iter().filter(|v| !v.is_zero()).count();
            if nz > 0 {
                self.words[b / 64] |= 1u64 << (b % 64);
            }
            self.nnz += nz as u64;
        }
        self.live.clear();
        self.runs.clear();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = (wi * 64 + bits.trailing_zeros() as usize) as u32;
                self.live.push(b);
                match self.runs.last_mut() {
                    Some((start, len)) if *start + *len == b => *len += 1,
                    _ => self.runs.push((b, 1)),
                }
                bits &= bits - 1;
            }
        }
    }

    /// The block size this index was built with.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Total blocks the scanned vector spans.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The bitmask words (bit `b % 64` of word `b / 64` = block `b` live).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Live block ids, ascending.
    pub fn live(&self) -> &[u32] {
        &self.live
    }

    /// Live blocks coalesced into maximal adjacent `(start, len)` runs,
    /// ascending and non-overlapping; flattening the runs yields exactly
    /// [`live`](Self::live). The compute stage iterates these so clustered
    /// sparsity costs one loop setup per cluster, not per block.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Whether block `b` holds a nonzero.
    pub fn is_live(&self, b: usize) -> bool {
        b < self.blocks && self.words[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Exact nonzero count of the scanned vector.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Activation words the compute stage will touch per row:
    /// `live blocks × block size`.
    pub fn live_cols(&self) -> usize {
        self.live.len() * self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f32]) -> Vec<Q6_10> {
        vals.iter().map(|&x| Q6_10::from_f32(x)).collect()
    }

    #[test]
    fn live_blocks_are_exactly_those_with_nonzeros() {
        // 10 elements, block 4 → blocks {0,1,2}; only block 1 has data.
        let x = v(&[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.5, 0.0, 0.0, 0.0]);
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 4);
        assert_eq!(idx.blocks(), 3);
        assert_eq!(idx.live(), &[1]);
        assert_eq!(idx.runs(), &[(1, 1)]);
        assert!(!idx.is_live(0) && idx.is_live(1) && !idx.is_live(2));
        assert_eq!(idx.nnz(), 2);
        assert_eq!(idx.live_cols(), 4);
    }

    #[test]
    fn all_zero_vector_has_no_live_blocks() {
        let x = vec![Q6_10::ZERO; 100];
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 16);
        assert!(idx.live().is_empty());
        assert_eq!(idx.nnz(), 0);
        assert!(idx.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn dense_vector_lights_every_block() {
        let x = v(&[1.0; 33]);
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 8);
        assert_eq!(idx.blocks(), 5); // ceil(33/8)
        assert_eq!(idx.live(), &[0, 1, 2, 3, 4]);
        assert_eq!(idx.runs(), &[(0, 5)], "adjacent blocks coalesce");
        assert_eq!(idx.nnz(), 33);
    }

    #[test]
    fn reuse_clears_previous_state() {
        let mut idx = BlockIndex::new();
        idx.prescan(&v(&[1.0; 64]), 4);
        assert_eq!(idx.live().len(), 16);
        idx.prescan(&[Q6_10::ZERO; 8], 4);
        assert!(idx.live().is_empty());
        assert!(idx.runs().is_empty());
        assert_eq!(idx.blocks(), 2);
    }

    #[test]
    fn more_than_64_blocks_spans_words() {
        // 520 elements at block 4 → 130 blocks → 3 mask words.
        let mut x = vec![Q6_10::ZERO; 520];
        x[0] = Q6_10::from_f32(1.0); // block 0 (word 0)
        x[517] = Q6_10::from_f32(1.0); // block 129 (word 2)
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 4);
        assert_eq!(idx.words().len(), 3);
        assert_eq!(idx.live(), &[0, 129]);
        assert_eq!(idx.runs(), &[(0, 1), (129, 1)], "a word gap splits runs");
    }

    #[test]
    fn runs_coalesce_across_word_boundaries() {
        // Blocks 62..=66 live at block size 1: the run must not split at
        // the 64-bit word boundary between block 63 and 64.
        let mut x = vec![Q6_10::ZERO; 70];
        for v in &mut x[62..=66] {
            *v = Q6_10::from_f32(1.0);
        }
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 1);
        assert_eq!(idx.live(), &[62, 63, 64, 65, 66]);
        assert_eq!(idx.runs(), &[(62, 5)]);
    }
}
