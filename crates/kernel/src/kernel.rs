//! The two-stage kernel: prescan → block-skip compute, over a whole
//! quantized network.

use crate::packed::{PackedLayer, PackedPredictor};
use crate::prescan::BlockIndex;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_numeric::{argmax, Q6_10};

/// Which compute stage to run. Both produce bit-identical outputs; they
/// differ only in wall-clock cost — [`Dense`](Strategy::Dense) is the
/// baseline [`Prescan`](Strategy::Prescan)'s measured speedup is reported
/// against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Two-stage: prescan builds the nonzero-block index, compute touches
    /// only live blocks and predictor-active rows.
    #[default]
    Prescan,
    /// Straight dense GEMV over every column and row (predictor verdicts
    /// still computed; bypassed rows zeroed after the fact), on the same
    /// packed layout with the same accumulator.
    Dense,
}

/// Functional activity of one kernel layer pass — what the compute stage
/// actually touched. Deterministic (a pure function of the input pattern
/// and strategy), so records built from it are reproducible run to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerStats {
    /// Output rows of the layer.
    pub rows: u64,
    /// Unpadded input columns.
    pub cols: u64,
    /// Nonzero input activations (prescan's exact count).
    pub nnz_in: u64,
    /// Live column blocks the prescan found.
    pub live_blocks: u64,
    /// Total column blocks.
    pub total_blocks: u64,
    /// Rows the W stage computed (predictor-active, or all).
    pub active_rows: u64,
    /// 16-bit W words the compute stage read.
    pub w_words: u64,
    /// 16-bit V words read (0 for unpredicted layers).
    pub v_words: u64,
    /// 16-bit U words read (0 for unpredicted layers).
    pub u_words: u64,
    /// Multiply-accumulates executed.
    pub macs: u64,
}

/// One layer of a kernel forward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelLayer {
    /// Output activations (bit-exact vs the golden model).
    pub output: Vec<Q6_10>,
    /// Predictor mask when the layer ran predicted (`true` = computed).
    pub mask: Option<Vec<bool>>,
    /// What the pass touched.
    pub stats: LayerStats,
}

/// Result of one kernel forward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRun {
    /// Per-layer results, input side first.
    pub layers: Vec<KernelLayer>,
}

impl KernelRun {
    /// Final-layer output activations.
    pub fn output(&self) -> &[Q6_10] {
        &self.layers.last().expect("at least one layer").output
    }

    /// Argmax classification of the final layer.
    pub fn classify(&self) -> usize {
        argmax(self.output())
    }
}

/// Result of one batched kernel pass: per-sample runs (each bit-identical
/// to running that sample alone) plus the batch's W-traffic books.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelBatchRun {
    /// Per-sample forward passes.
    pub runs: Vec<KernelRun>,
    /// W words B serial passes would read (sum of per-sample `w_words`).
    pub w_words_serial: u64,
    /// W words the batched pass reads: each row panel is streamed once
    /// per batch, over the union of the active samples' live blocks
    /// (≤ serial).
    pub w_words_batch: u64,
}

impl KernelBatchRun {
    /// W-traffic amortization factor: serial over batch (≥ 1).
    pub fn w_amortization(&self) -> f64 {
        if self.w_words_batch == 0 {
            return 1.0;
        }
        self.w_words_serial as f64 / self.w_words_batch as f64
    }
}

/// Preallocated working memory for [`SparseKernel`] runs: padded ping-pong
/// activation buffers, the prescan index, predictor intermediates — and,
/// for batches, one set per sample. Build once with
/// [`SparseKernel::scratch`]; every subsequent run allocates only its
/// output vectors.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    act: Vec<Q6_10>,
    next: Vec<Q6_10>,
    index: BlockIndex,
    v_result: Vec<Q6_10>,
    mask: Vec<bool>,
    // Per-sample arenas for batched runs (grown on demand, then reused).
    b_act: Vec<Vec<Q6_10>>,
    b_next: Vec<Vec<Q6_10>>,
    b_index: Vec<BlockIndex>,
    b_mask: Vec<Vec<bool>>,
    union_words: Vec<u64>,
}

impl Scratch {
    fn ensure(&mut self, k: &SparseKernel) {
        if self.act.len() < k.buf_len {
            self.act.resize(k.buf_len, Q6_10::ZERO);
            self.next.resize(k.buf_len, Q6_10::ZERO);
        }
        if self.v_result.len() < k.max_rank {
            self.v_result.resize(k.max_rank, Q6_10::ZERO);
        }
        if self.mask.len() < k.max_rows {
            self.mask.resize(k.max_rows, false);
        }
    }

    fn ensure_batch(&mut self, k: &SparseKernel, b: usize) {
        self.ensure(k);
        while self.b_act.len() < b {
            self.b_act.push(vec![Q6_10::ZERO; k.buf_len]);
            self.b_next.push(vec![Q6_10::ZERO; k.buf_len]);
            self.b_index.push(BlockIndex::new());
            self.b_mask.push(vec![false; k.max_rows]);
        }
        for buf in self.b_act.iter_mut().chain(self.b_next.iter_mut()) {
            if buf.len() < k.buf_len {
                buf.resize(k.buf_len, Q6_10::ZERO);
            }
        }
        for m in &mut self.b_mask {
            if m.len() < k.max_rows {
                m.resize(k.max_rows, false);
            }
        }
        if self.union_words.len() < k.max_words {
            self.union_words.resize(k.max_words, 0);
        }
    }
}

/// A quantized network repacked for the two-stage kernel: one
/// [`PackedLayer`] per weight layer, one [`PackedPredictor`] per predicted
/// hidden layer. Packing happens once here; runs only read.
#[derive(Clone, Debug)]
pub struct SparseKernel {
    block: usize,
    layers: Vec<PackedLayer>,
    preds: Vec<Option<PackedPredictor>>,
    buf_len: usize,
    max_rank: usize,
    max_rows: usize,
    max_words: usize,
}

impl SparseKernel {
    /// Repacks a quantized network with the given column-block size.
    ///
    /// # Panics
    ///
    /// Panics if the network has no layers or `block == 0`.
    pub fn pack(net: &FixedNetwork, block: usize) -> Self {
        assert!(net.num_layers() > 0, "network has no layers");
        assert!(block > 0, "block size must be positive");
        let n = net.num_layers();
        let layers: Vec<PackedLayer> = net
            .layers()
            .iter()
            .map(|w| PackedLayer::pack(w, block))
            .collect();
        let preds: Vec<Option<PackedPredictor>> = (0..n)
            .map(|l| {
                (l + 1 < n)
                    .then(|| net.predictors().get(l))
                    .flatten()
                    .map(|p| PackedPredictor::pack(p, block))
            })
            .collect();
        let max_padded = layers.iter().map(PackedLayer::padded).max().unwrap_or(0);
        let max_rows = layers.iter().map(PackedLayer::rows).max().unwrap_or(0);
        let max_rank = preds
            .iter()
            .flatten()
            .map(PackedPredictor::rank)
            .max()
            .unwrap_or(0);
        let max_words = layers
            .iter()
            .map(|l| l.blocks().div_ceil(64))
            .max()
            .unwrap_or(0);
        Self {
            block,
            layers,
            preds,
            buf_len: max_padded.max(max_rows),
            max_rank,
            max_rows,
            max_words,
        }
    }

    /// The column-block size every panel was packed with.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input width the kernel expects.
    pub fn input_width(&self) -> usize {
        self.layers[0].cols()
    }

    /// A scratch arena sized for this kernel.
    pub fn scratch(&self) -> Scratch {
        let mut s = Scratch::default();
        s.ensure(self);
        s
    }

    /// Runs one quantized input through the network.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the first layer's width.
    pub fn run(
        &self,
        input: &[Q6_10],
        mode: UvMode,
        strategy: Strategy,
        s: &mut Scratch,
    ) -> KernelRun {
        assert_eq!(input.len(), self.input_width(), "input width mismatch");
        s.ensure(self);
        s.act[..input.len()].copy_from_slice(input);
        s.act[input.len()..self.layers[0].padded()].fill(Q6_10::ZERO);
        let mut layers = Vec::with_capacity(self.layers.len());
        // Split the ping-pong buffers out of the scratch so the layer body
        // can borrow index/mask/v_result alongside them.
        let mut act = std::mem::take(&mut s.act);
        let mut next = std::mem::take(&mut s.next);
        for l in 0..self.layers.len() {
            let stats = self.layer_pass(
                l,
                mode,
                strategy,
                &act,
                &mut next,
                &mut s.index,
                &mut s.mask,
                &mut s.v_result,
            );
            let lay = &self.layers[l];
            let mask = self
                .predicted(l, mode)
                .then(|| s.mask[..lay.rows()].to_vec());
            layers.push(KernelLayer {
                output: next[..lay.rows()].to_vec(),
                mask,
                stats,
            });
            // Zero the padding tail the next layer's prescan will scan.
            if l + 1 < self.layers.len() {
                let pad_next = self.layers[l + 1].padded();
                next[lay.rows()..pad_next].fill(Q6_10::ZERO);
            }
            std::mem::swap(&mut act, &mut next);
        }
        s.act = act;
        s.next = next;
        KernelRun { layers }
    }

    /// Whether layer `l` runs the predictor in the given mode.
    fn predicted(&self, l: usize, mode: UvMode) -> bool {
        mode == UvMode::On && self.preds[l].is_some()
    }

    /// One layer pass: prescan + predictor + W stage, activations read
    /// from `act[..padded]`, outputs written to `next[..rows]` (mask to
    /// `mask[..rows]` when predicted). Returns what was touched.
    #[allow(clippy::too_many_arguments)]
    fn layer_pass(
        &self,
        l: usize,
        mode: UvMode,
        strategy: Strategy,
        act: &[Q6_10],
        next: &mut [Q6_10],
        index: &mut BlockIndex,
        mask: &mut [bool],
        v_result: &mut [Q6_10],
    ) -> LayerStats {
        let lay = &self.layers[l];
        let is_hidden = l + 1 < self.layers.len();
        let rows = lay.rows();
        let mut st = LayerStats {
            rows: rows as u64,
            cols: lay.cols() as u64,
            total_blocks: lay.blocks() as u64,
            ..LayerStats::default()
        };
        // Stage 1: prescan (the dense baseline pays a plain nnz count
        // instead — it reads the input either way).
        match strategy {
            Strategy::Prescan => {
                index.prescan(&act[..lay.padded()], self.block);
                st.nnz_in = index.nnz();
                st.live_blocks = index.live().len() as u64;
            }
            Strategy::Dense => {
                st.nnz_in = act[..lay.cols()].iter().filter(|v| !v.is_zero()).count() as u64;
                st.live_blocks = st.total_blocks;
            }
        }
        // Predictor: V·a quantized per row, then sign of U·(V·a).
        let predicted = self.predicted(l, mode);
        if predicted {
            let p = self.preds[l].as_ref().expect("predicted layers have one");
            let r = p.rank();
            for (t, v) in v_result.iter_mut().enumerate().take(r) {
                let acc = match strategy {
                    Strategy::Prescan => p.v.block_dot(t, index, act),
                    Strategy::Dense => p.v.dense_dot(t, act),
                };
                *v = acc.to_fixed();
            }
            st.v_words = match strategy {
                Strategy::Prescan => (r * index.live_cols()) as u64,
                Strategy::Dense => (r * lay.cols()) as u64,
            };
            for (i, m) in mask.iter_mut().enumerate().take(rows) {
                *m = p.u_verdict(i, &v_result[..r]);
            }
            st.u_words = (rows * r) as u64;
        }
        // Stage 2: the W pass over live blocks and active rows.
        let mut active = 0u64;
        for i in 0..rows {
            let row_active = !predicted || mask[i];
            match strategy {
                Strategy::Prescan => {
                    if !row_active {
                        next[i] = Q6_10::ZERO;
                        continue;
                    }
                    let q: Q6_10 = lay.block_dot(i, index, act).to_fixed();
                    next[i] = if is_hidden { q.relu() } else { q };
                    active += 1;
                }
                Strategy::Dense => {
                    // Dense baseline computes every row; bypassed rows are
                    // zeroed afterwards (same bits, full dense cost).
                    let q: Q6_10 = lay.dense_dot(i, act).to_fixed();
                    let q = if is_hidden { q.relu() } else { q };
                    next[i] = if row_active { q } else { Q6_10::ZERO };
                    if row_active {
                        active += 1;
                    }
                }
            }
        }
        st.active_rows = active;
        st.w_words = match strategy {
            Strategy::Prescan => active * index.live_cols() as u64,
            Strategy::Dense => (rows * lay.cols()) as u64,
        };
        st.macs = st.w_words + st.v_words + st.u_words;
        st
    }

    /// Runs a batch of quantized inputs in one pass: prescan once per
    /// sample, then each layer's W stage iterates **rows outer, samples
    /// inner**, so a row's weight panel is streamed from memory once per
    /// batch while every sample applies its own live-block index and
    /// predictor verdict — per-sample results stay bit-identical to
    /// serial [`run`](Self::run)s.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any input width mismatches.
    pub fn run_batch(
        &self,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
        strategy: Strategy,
        s: &mut Scratch,
    ) -> KernelBatchRun {
        assert!(!inputs.is_empty(), "batch has no samples");
        let b = inputs.len();
        s.ensure_batch(self, b);
        for (x, buf) in inputs.iter().zip(&mut s.b_act) {
            assert_eq!(x.len(), self.input_width(), "input width mismatch");
            buf[..x.len()].copy_from_slice(x);
            buf[x.len()..self.layers[0].padded()].fill(Q6_10::ZERO);
        }
        let mut per_sample: Vec<Vec<KernelLayer>> = (0..b)
            .map(|_| Vec::with_capacity(self.layers.len()))
            .collect();
        let (mut w_serial, mut w_batch) = (0u64, 0u64);
        let mut b_act = std::mem::take(&mut s.b_act);
        let mut b_next = std::mem::take(&mut s.b_next);
        for l in 0..self.layers.len() {
            let lay = &self.layers[l];
            let is_hidden = l + 1 < self.layers.len();
            let rows = lay.rows();
            let predicted = self.predicted(l, mode);
            let mut stats = vec![
                LayerStats {
                    rows: rows as u64,
                    cols: lay.cols() as u64,
                    total_blocks: lay.blocks() as u64,
                    ..LayerStats::default()
                };
                b
            ];
            // Per-sample prescan + predictor (verdicts are per sample).
            for si in 0..b {
                let act = &b_act[si][..];
                let st = &mut stats[si];
                match strategy {
                    Strategy::Prescan => {
                        s.b_index[si].prescan(&act[..lay.padded()], self.block);
                        st.nnz_in = s.b_index[si].nnz();
                        st.live_blocks = s.b_index[si].live().len() as u64;
                    }
                    Strategy::Dense => {
                        st.nnz_in =
                            act[..lay.cols()].iter().filter(|v| !v.is_zero()).count() as u64;
                        st.live_blocks = st.total_blocks;
                    }
                }
                if predicted {
                    let p = self.preds[l].as_ref().expect("predicted layers have one");
                    let r = p.rank();
                    for t in 0..r {
                        let acc = match strategy {
                            Strategy::Prescan => p.v.block_dot(t, &s.b_index[si], act),
                            Strategy::Dense => p.v.dense_dot(t, act),
                        };
                        s.v_result[t] = acc.to_fixed();
                    }
                    st.v_words = match strategy {
                        Strategy::Prescan => (r * s.b_index[si].live_cols()) as u64,
                        Strategy::Dense => (r * lay.cols()) as u64,
                    };
                    for i in 0..rows {
                        s.b_mask[si][i] = p.u_verdict(i, &s.v_result[..r]);
                    }
                    st.u_words = (rows * r) as u64;
                }
            }
            // W stage: rows outer, samples inner — one panel stream per
            // batch. The batch W book counts, per row, the union of the
            // active samples' live blocks. `i` indexes four parallel
            // per-sample structures, so a range loop reads clearest.
            let nwords = lay.blocks().div_ceil(64);
            #[allow(clippy::needless_range_loop)]
            for i in 0..rows {
                let union = &mut s.union_words[..nwords];
                union.fill(0);
                let mut any = false;
                for si in 0..b {
                    let row_active = !predicted || s.b_mask[si][i];
                    match strategy {
                        Strategy::Prescan => {
                            if !row_active {
                                b_next[si][i] = Q6_10::ZERO;
                                continue;
                            }
                            any = true;
                            for (u, w) in union.iter_mut().zip(s.b_index[si].words()) {
                                *u |= *w;
                            }
                            let q: Q6_10 = lay.block_dot(i, &s.b_index[si], &b_act[si]).to_fixed();
                            b_next[si][i] = if is_hidden { q.relu() } else { q };
                            stats[si].active_rows += 1;
                        }
                        Strategy::Dense => {
                            // Dense computes every row (full baseline cost),
                            // then zeroes the bypassed ones — same bits as
                            // serial Dense.
                            any = true;
                            let q: Q6_10 = lay.dense_dot(i, &b_act[si]).to_fixed();
                            let q = if is_hidden { q.relu() } else { q };
                            b_next[si][i] = if row_active { q } else { Q6_10::ZERO };
                            if row_active {
                                stats[si].active_rows += 1;
                            }
                        }
                    }
                }
                match strategy {
                    Strategy::Prescan => {
                        let union_blocks: u64 =
                            union.iter().map(|w| u64::from(w.count_ones())).sum();
                        w_batch += union_blocks * self.block as u64;
                    }
                    Strategy::Dense => {
                        if any || !predicted {
                            w_batch += lay.cols() as u64;
                        }
                    }
                }
            }
            for si in 0..b {
                let st = &mut stats[si];
                st.w_words = match strategy {
                    Strategy::Prescan => st.active_rows * s.b_index[si].live_cols() as u64,
                    Strategy::Dense => (rows * lay.cols()) as u64,
                };
                st.macs = st.w_words + st.v_words + st.u_words;
                w_serial += st.w_words;
                per_sample[si].push(KernelLayer {
                    output: b_next[si][..rows].to_vec(),
                    mask: predicted.then(|| s.b_mask[si][..rows].to_vec()),
                    stats: *st,
                });
                if l + 1 < self.layers.len() {
                    let pad_next = self.layers[l + 1].padded();
                    b_next[si][rows..pad_next].fill(Q6_10::ZERO);
                }
            }
            std::mem::swap(&mut b_act, &mut b_next);
        }
        s.b_act = b_act;
        s.b_next = b_next;
        KernelBatchRun {
            runs: per_sample
                .into_iter()
                .map(|layers| KernelRun { layers })
                .collect(),
            w_words_serial: w_serial,
            w_words_batch: w_batch,
        }
    }
}
