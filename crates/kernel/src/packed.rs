//! Block-panel weight layouts, repacked once at construction.

use crate::prescan::BlockIndex;
use sparsenn_model::fixedpoint::{FixedMatrix, FixedPredictor};
use sparsenn_numeric::{Accumulator, Q6_10};

/// A weight matrix repacked for the block-skip compute stage: row-major,
/// every row zero-padded to a whole number of column blocks, so a
/// (row, block) panel is one contiguous `block`-word slice.
///
/// Zero padding is bit-exact: padded weights multiply padded (zero)
/// activations, contributing exactly `0` to the wide accumulator.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedLayer {
    rows: usize,
    cols: usize,
    block: usize,
    blocks: usize,
    padded: usize,
    data: Vec<Q6_10>,
}

impl PackedLayer {
    /// Repacks a quantized matrix into block panels (done once; the
    /// compute stage never touches the original layout again).
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn pack(m: &FixedMatrix, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        let (rows, cols) = (m.rows(), m.cols());
        let blocks = cols.div_ceil(block);
        let padded = blocks * block;
        let mut data = vec![Q6_10::ZERO; rows * padded];
        for i in 0..rows {
            data[i * padded..i * padded + cols].copy_from_slice(m.row(i));
        }
        Self {
            rows,
            cols,
            block,
            blocks,
            padded,
            data,
        }
    }

    /// Output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Unpadded input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column-block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Column blocks per row.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Padded row stride (`blocks × block`).
    pub fn padded(&self) -> usize {
        self.padded
    }

    /// Row `i` as a padded panel slice.
    #[inline]
    fn panel(&self, i: usize) -> &[Q6_10] {
        &self.data[i * self.padded..(i + 1) * self.padded]
    }

    /// Stage-2 dot product of row `i` with a padded activation buffer,
    /// touching only the index's live blocks — iterated as coalesced
    /// adjacent-block runs, so clustered sparsity pays one loop setup per
    /// cluster. Bit-identical to the golden `row_dot` (zeros inside live
    /// blocks contribute 0; dead blocks hold only zeros; i64 accumulation
    /// is order-independent, so segment boundaries don't matter).
    ///
    /// # Panics
    ///
    /// Debug-asserts the index block size matches and `x` covers the
    /// padded width.
    #[inline]
    pub fn block_dot(&self, i: usize, idx: &BlockIndex, x: &[Q6_10]) -> Accumulator {
        debug_assert_eq!(idx.block_size(), self.block, "index/panel block mismatch");
        debug_assert!(x.len() >= self.padded, "activation buffer too short");
        let panel = self.panel(i);
        let mut acc = Accumulator::new();
        for &(start, len) in idx.runs() {
            let o = start as usize * self.block;
            let n = len as usize * self.block;
            for (w, a) in panel[o..o + n].iter().zip(&x[o..o + n]) {
                acc.mac(*w, *a);
            }
        }
        acc
    }

    /// The dense baseline: a straight dot product over every (unpadded)
    /// column — the best dense implementation of the same arithmetic on
    /// the same layout, which is what the prescan speedup is measured
    /// against.
    #[inline]
    pub fn dense_dot(&self, i: usize, x: &[Q6_10]) -> Accumulator {
        let panel = self.panel(i);
        let mut acc = Accumulator::new();
        for (w, a) in panel[..self.cols].iter().zip(&x[..self.cols]) {
            acc.mac(*w, *a);
        }
        acc
    }
}

/// A UV predictor repacked for the kernel: V (`r × n`) gets the same
/// column blocking as the layer (it reads the same sparse activations),
/// U (`m × r`) stays dense — its operand is the short quantized V result.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedPredictor {
    /// Block-panel V factor.
    pub v: PackedLayer,
    u_rows: usize,
    u_cols: usize,
    u: Vec<Q6_10>,
}

impl PackedPredictor {
    /// Repacks a quantized predictor pair.
    pub fn pack(p: &FixedPredictor, block: usize) -> Self {
        let (u_rows, u_cols) = (p.u.rows(), p.u.cols());
        let mut u = Vec::with_capacity(u_rows * u_cols);
        for i in 0..u_rows {
            u.extend_from_slice(p.u.row(i));
        }
        Self {
            v: PackedLayer::pack(&p.v, block),
            u_rows,
            u_cols,
            u,
        }
    }

    /// Predictor rank (`r` = V rows = U cols).
    pub fn rank(&self) -> usize {
        self.u_cols
    }

    /// Predicted output rows (`m` = U rows).
    pub fn u_rows(&self) -> usize {
        self.u_rows
    }

    /// U-phase verdict for output row `i`: sign of `U[i] · v_result`.
    /// Dense accumulation over the V result is bit-identical to the
    /// golden `row_dot` (which skips zeros): zero entries contribute 0.
    #[inline]
    pub fn u_verdict(&self, i: usize, v_result: &[Q6_10]) -> bool {
        let row = &self.u[i * self.u_cols..(i + 1) * self.u_cols];
        let mut acc = Accumulator::new();
        for (w, a) in row.iter().zip(v_result) {
            acc.mac(*w, *a);
        }
        acc.is_positive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::Matrix;

    fn mat(rows: usize, cols: usize) -> FixedMatrix {
        FixedMatrix::from_float(&Matrix::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f32 * 0.13).sin()
        }))
    }

    #[test]
    fn pack_pads_rows_to_whole_blocks() {
        let m = mat(3, 10);
        let p = PackedLayer::pack(&m, 4);
        assert_eq!(p.blocks(), 3);
        assert_eq!(p.padded(), 12);
        // Original values preserved, tail zero-padded.
        for i in 0..3 {
            assert_eq!(&p.panel(i)[..10], m.row(i));
            assert!(p.panel(i)[10..].iter().all(|v| v.is_zero()));
        }
    }

    #[test]
    fn block_dot_matches_golden_row_dot() {
        let m = mat(5, 23);
        let p = PackedLayer::pack(&m, 8);
        // Sparse activations with zeros scattered through live blocks.
        let x: Vec<Q6_10> = (0..23)
            .map(|j| {
                if j % 3 == 0 {
                    Q6_10::ZERO
                } else {
                    Q6_10::from_f32((j as f32 * 0.21).cos())
                }
            })
            .collect();
        let mut padded = x.clone();
        padded.resize(p.padded(), Q6_10::ZERO);
        let mut idx = BlockIndex::new();
        idx.prescan(&padded, 8);
        for i in 0..5 {
            let golden = m.row_dot(i, &x);
            assert_eq!(p.block_dot(i, &idx, &padded), golden, "row {i}");
            assert_eq!(p.dense_dot(i, &padded), golden, "row {i} dense");
        }
    }

    #[test]
    fn dead_blocks_are_never_touched_yet_results_match() {
        let m = mat(4, 32);
        let p = PackedLayer::pack(&m, 8);
        // Only block 2 live.
        let mut x = vec![Q6_10::ZERO; 32];
        x[17] = Q6_10::from_f32(0.75);
        x[22] = Q6_10::from_f32(-0.5);
        let mut idx = BlockIndex::new();
        idx.prescan(&x, 8);
        assert_eq!(idx.live(), &[2]);
        for i in 0..4 {
            assert_eq!(p.block_dot(i, &idx, &x), m.row_dot(i, &x), "row {i}");
        }
    }

    #[test]
    fn u_verdict_matches_golden_u_phase() {
        use sparsenn_model::Predictor;
        let u = Matrix::from_fn(6, 3, |i, j| ((i + j) as f32 * 0.3).sin());
        let v = Matrix::from_fn(3, 8, |i, j| ((i * 8 + j) as f32 * 0.17).cos());
        let fp = FixedPredictor::from_float(&Predictor::new(u, v));
        let pp = PackedPredictor::pack(&fp, 4);
        let vr: Vec<Q6_10> = [0.5f32, 0.0, -0.25]
            .iter()
            .map(|&x| Q6_10::from_f32(x))
            .collect();
        let golden = fp.u_phase(&vr);
        for (i, &want) in golden.iter().enumerate() {
            assert_eq!(pp.u_verdict(i, &vr), want, "row {i}");
        }
        assert_eq!(pp.rank(), 3);
        assert_eq!(pp.u_rows(), 6);
    }
}
