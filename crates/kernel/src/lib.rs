//! Performance-first CPU inference kernels for SparseNN.
//!
//! Every other execution substrate in this repository *models* speed — the
//! cycle-accurate machine, the golden fixed-point reference, the analytic
//! SIMD platforms. This crate is engineered for it: a two-stage design in
//! the style of SparseFlow that turns SparseNN's input/output sparsity into
//! **measured wall-clock** wins on a general-purpose core.
//!
//! 1. **Prescan** ([`BlockIndex`]): one pass over the activation vector
//!    builds a nonzero-block index — per-layer bitmask words plus a
//!    live-block list over fixed-size column blocks. Cost: `O(n)` loads,
//!    no multiplies.
//! 2. **Compute** ([`SparseKernel`]): touches only live blocks, against
//!    weights repacked once at construction into row-major block panels
//!    ([`PackedLayer`]) — contiguous, cache-blocked, SIMD-friendly. Output
//!    sparsity composes on top: rows the UV predictor bypasses are skipped
//!    whole.
//!
//! The hot path allocates nothing: all intermediates live in a
//! preallocated [`Scratch`] arena reused across samples and batches.
//!
//! Results are **bit-exact** against the golden fixed-point model
//! (`sparsenn_model::fixedpoint`) in both UV modes. The key property is
//! that a zero activation contributes exactly `0` to the wide `i64`
//! accumulator, so a dense dot product over a live block (zeros included)
//! equals the golden `row_dot` (which skips zeros) bit for bit — and i64
//! addition is order-independent, so block order doesn't matter either.
//! Zero padding at the row tail is exact for the same reason.
//!
//! [`Strategy::Dense`] keeps an honest dense-GEMV baseline in the same
//! crate (same data layout, same accumulator), so "prescan speedup" is
//! measured against the best dense implementation of the same arithmetic,
//! not a strawman.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod packed;
mod prescan;

pub use kernel::{
    KernelBatchRun, KernelLayer, KernelRun, LayerStats, Scratch, SparseKernel, Strategy,
};
pub use packed::{PackedLayer, PackedPredictor};
pub use prescan::BlockIndex;

/// Default column-block size, tuned by measurement (`--bin kernel` in the
/// bench crate): with scattered zeros the chance a block is entirely dead
/// falls off exponentially in the block width, so the finer 8-wide block
/// (16 bytes per panel row) skips markedly more work than 16 or 32 on both
/// glyph-style inputs and ReLU'd hidden activations, and still amortizes
/// the index indirection.
pub const DEFAULT_BLOCK: usize = 8;
