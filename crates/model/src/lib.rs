//! The DNN model of the SparseNN paper: an MLP with a per-hidden-layer
//! **UV output-sparsity predictor**, in both `f32` (training) and bit-exact
//! 16-bit fixed-point (accelerator golden model) forms.
//!
//! The paper's Eq. (1)–(3):
//!
//! ```text
//! a⁽ˡ⁺¹⁾ = f(W⁽ˡ⁾ a⁽ˡ⁾)                      feedforward (ReLU hidden layers)
//! p⁽ˡ⁺¹⁾ = sign(U⁽ˡ⁾ V⁽ˡ⁾ a⁽ˡ⁾)               lightweight sparsity predictor
//! a⁽ˡ⁺¹⁾ = p⁽ˡ⁺¹⁾ ∘ f(W⁽ˡ⁾ a⁽ˡ⁾)              predicted-gated activation
//! ```
//!
//! At inference only the rows predicted positive are computed; the rest are
//! bypassed (their activation is zero). The final classifier layer is
//! linear (softmax applied by the loss) and carries no predictor — the
//! paper reports predicted sparsity ρ only for hidden layers.
//!
//! # Crate layout
//!
//! * [`Mlp`], [`DenseLayer`] — the float network.
//! * [`Predictor`] — one `U·V` factor pair.
//! * [`PredictedNetwork`] — network + predictors, with plain / predicted /
//!   training-faithful forward passes.
//! * [`fixedpoint`] — the quantized golden model the cycle-level simulator
//!   is verified against, bit for bit.
//! * [`stats`] — TER and sparsity measurement.
//!
//! # Example
//!
//! ```
//! use sparsenn_model::{Mlp, PredictedNetwork};
//! use sparsenn_linalg::init::seeded_rng;
//!
//! let mut rng = seeded_rng(1);
//! let mlp = Mlp::random(&[8, 16, 4], &mut rng);
//! let net = PredictedNetwork::with_random_predictors(mlp, 4, &mut rng);
//! let x = vec![0.5f32; 8];
//! let out = net.forward_predicted(&x);
//! assert_eq!(out.logits().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixedpoint;
mod mlp;
mod predictor;
pub mod serialize;
pub mod stats;

pub use mlp::{DenseLayer, Mlp};
pub use predictor::{PredictedForward, PredictedNetwork, Predictor};

/// Number of classes of the digit benchmarks (kept crate-local so `model`
/// does not depend on the datasets crate's constant).
pub(crate) const NUM_CLASSES_INTERNAL: usize = 10;
