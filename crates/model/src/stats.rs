//! Test-error-rate and sparsity measurement.
//!
//! The quantities reported in the paper's Fig. 6 and Table I: **TER** (test
//! error rate, %) and **ρ⁽ˡ⁾** (predicted output sparsity per hidden layer,
//! %).

use crate::{Mlp, PredictedNetwork};
use sparsenn_datasets::Dataset;
use sparsenn_linalg::vector;

/// Which forward pass to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// Plain feedforward, predictor ignored (the NO-UV rows of Table I).
    Plain,
    /// Predictor-gated inference (the SVD / End-to-End rows).
    #[default]
    Predicted,
}

/// Test error rate in percent of a predictor-carrying network.
pub fn test_error_rate(net: &PredictedNetwork, data: &Dataset, mode: EvalMode) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut wrong = 0usize;
    for (img, label) in data.iter() {
        let pred = match mode {
            EvalMode::Plain => vector::argmax(&net.forward_plain(img)),
            EvalMode::Predicted => vector::argmax(net.forward_predicted(img).logits()),
        }
        .expect("nonempty logits");
        if pred != label as usize {
            wrong += 1;
        }
    }
    100.0 * wrong as f32 / data.len() as f32
}

/// Test error rate in percent of a plain MLP.
pub fn test_error_rate_plain(mlp: &Mlp, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let wrong = data
        .iter()
        .filter(|(img, label)| {
            vector::argmax(mlp.forward(img).logits()).expect("nonempty") != *label as usize
        })
        .count();
    100.0 * wrong as f32 / data.len() as f32
}

/// Mean predicted output sparsity ρ per hidden layer, in percent,
/// averaged over the dataset (the paper's ρ⁽¹⁾…ρ⁽³⁾ columns).
pub fn predicted_sparsity(net: &PredictedNetwork, data: &Dataset) -> Vec<f32> {
    let hidden = net.predictors().len();
    let mut sums = vec![0.0f64; hidden];
    if data.is_empty() {
        return vec![0.0; hidden];
    }
    for (img, _) in data.iter() {
        let fwd = net.forward_predicted(img);
        for (l, s) in sums.iter_mut().enumerate() {
            *s += f64::from(fwd.predicted_sparsity(l));
        }
    }
    sums.iter()
        .map(|&s| (100.0 * s / data.len() as f64) as f32)
        .collect()
}

/// Mean *natural* output sparsity per hidden layer (fraction of exact
/// zeros after ReLU, no predictor), in percent. This is the sparsity the
/// EIE baseline (`uv_off`) exploits on the next layer's input.
pub fn natural_sparsity(mlp: &Mlp, data: &Dataset) -> Vec<f32> {
    let hidden = mlp.num_hidden();
    let mut sums = vec![0.0f64; hidden];
    if data.is_empty() {
        return vec![0.0; hidden];
    }
    for (img, _) in data.iter() {
        let acts = mlp.forward(img);
        for (l, s) in sums.iter_mut().enumerate() {
            *s += f64::from(vector::sparsity(&acts.post[l + 1]));
        }
    }
    sums.iter()
        .map(|&s| (100.0 * s / data.len() as f64) as f32)
        .collect()
}

/// A 10×10 confusion matrix (`rows` = true label, `cols` = prediction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: [[usize; crate::NUM_CLASSES_INTERNAL]; crate::NUM_CLASSES_INTERNAL],
    total: usize,
}

impl ConfusionMatrix {
    /// Number of samples with true label `t` predicted as `p`.
    ///
    /// # Panics
    ///
    /// Panics if either index is ≥ 10.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: usize = (0..crate::NUM_CLASSES_INTERNAL)
            .map(|c| self.counts[c][c])
            .sum();
        correct as f32 / self.total as f32
    }

    /// Per-class recall (`None` when the class has no samples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: usize = self.counts[class].iter().sum();
        if row == 0 {
            return None;
        }
        Some(self.counts[class][class] as f32 / row as f32)
    }

    /// The most confused (true, predicted) off-diagonal pair, if any
    /// misclassification happened.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for t in 0..crate::NUM_CLASSES_INTERNAL {
            for p in 0..crate::NUM_CLASSES_INTERNAL {
                if t != p
                    && self.counts[t][p] > 0
                    && best.is_none_or(|(_, _, c)| self.counts[t][p] > c)
                {
                    best = Some((t, p, self.counts[t][p]));
                }
            }
        }
        best
    }
}

/// Builds the confusion matrix of a network over a dataset.
pub fn confusion_matrix(net: &PredictedNetwork, data: &Dataset, mode: EvalMode) -> ConfusionMatrix {
    let mut counts = [[0usize; crate::NUM_CLASSES_INTERNAL]; crate::NUM_CLASSES_INTERNAL];
    for (img, label) in data.iter() {
        let pred = match mode {
            EvalMode::Plain => vector::argmax(&net.forward_plain(img)),
            EvalMode::Predicted => vector::argmax(net.forward_predicted(img).logits()),
        }
        .expect("nonempty logits");
        counts[label as usize][pred.min(crate::NUM_CLASSES_INTERNAL - 1)] += 1;
    }
    ConfusionMatrix {
        counts,
        total: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_datasets::{DatasetKind, DatasetSpec};
    use sparsenn_linalg::init::seeded_rng;

    fn tiny_data() -> Dataset {
        DatasetSpec {
            kind: DatasetKind::Basic,
            train: 20,
            test: 10,
            seed: 1,
        }
        .generate()
        .test
    }

    #[test]
    fn random_network_ter_is_chance_level() {
        let mut rng = seeded_rng(2);
        let mlp = Mlp::random(&[784, 32, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 4, &mut rng);
        let data = tiny_data();
        let ter = test_error_rate(&net, &data, EvalMode::Plain);
        assert!(ter >= 50.0, "random net should be near chance, got {ter}%");
    }

    #[test]
    fn empty_dataset_gives_zero_ter() {
        let mut rng = seeded_rng(3);
        let mlp = Mlp::random(&[784, 8, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 2, &mut rng);
        let empty = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 0,
            test: 0,
            seed: 1,
        }
        .generate()
        .test;
        assert_eq!(test_error_rate(&net, &empty, EvalMode::Predicted), 0.0);
        assert_eq!(predicted_sparsity(&net, &empty), vec![0.0]);
    }

    #[test]
    fn sparsity_percentages_are_in_range() {
        let mut rng = seeded_rng(4);
        let mlp = Mlp::random(&[784, 16, 16, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 4, &mut rng);
        let data = tiny_data();
        for s in predicted_sparsity(&net, &data) {
            assert!((0.0..=100.0).contains(&s));
        }
        for s in natural_sparsity(net.mlp(), &data) {
            assert!((0.0..=100.0).contains(&s));
        }
    }

    #[test]
    fn confusion_matrix_sums_and_accuracy_agree_with_ter() {
        let mut rng = seeded_rng(6);
        let mlp = Mlp::random(&[784, 16, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 3, &mut rng);
        let data = tiny_data();
        let cm = confusion_matrix(&net, &data, EvalMode::Predicted);
        let total: usize = (0..10)
            .map(|t| (0..10).map(|p| cm.count(t, p)).sum::<usize>())
            .sum();
        assert_eq!(total, data.len());
        let ter = test_error_rate(&net, &data, EvalMode::Predicted);
        assert!((cm.accuracy() * 100.0 - (100.0 - ter)).abs() < 1e-4);
    }

    #[test]
    fn recall_is_none_for_absent_classes() {
        let mut rng = seeded_rng(7);
        let mlp = Mlp::random(&[784, 8, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 2, &mut rng);
        let empty = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 0,
            test: 0,
            seed: 1,
        }
        .generate()
        .test;
        let cm = confusion_matrix(&net, &empty, EvalMode::Plain);
        assert_eq!(cm.recall(3), None);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.worst_confusion(), None);
    }

    #[test]
    fn plain_modes_agree_between_entry_points() {
        let mut rng = seeded_rng(5);
        let mlp = Mlp::random(&[784, 16, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp.clone(), 4, &mut rng);
        let data = tiny_data();
        assert_eq!(
            test_error_rate(&net, &data, EvalMode::Plain),
            test_error_rate_plain(&mlp, &data)
        );
    }
}
