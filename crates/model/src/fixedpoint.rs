//! Bit-exact fixed-point golden model of the accelerator's arithmetic.
//!
//! This module is the reproduction's analogue of the paper's Matlab
//! fixed-point simulation: a functional (cycle-free) model of exactly the
//! arithmetic the hardware performs — Q6.10 operands, full-precision MACs
//! into a wide accumulator, round-to-nearest-even writeback, ReLU, and the
//! three-phase V → U → W predictor flow. The cycle-level machine in
//! `sparsenn-sim` must produce **identical bits**; integration tests assert
//! this on random networks.

use crate::{Mlp, PredictedNetwork, Predictor};
use sparsenn_numeric::{quantize, Accumulator, Q6_10};

/// A quantized dense matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Q6_10>,
}

impl FixedMatrix {
    /// Quantizes a float matrix.
    pub fn from_float(m: &sparsenn_linalg::Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: quantize::quantize_slice(m.as_slice()),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[Q6_10] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Q6_10 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// A new matrix holding the given rows of this one, in the given
    /// order — the row-tiling primitive of model-parallel partitioning:
    /// a chip's weight tile is `select_rows(tile_rows)` and computes
    /// exactly the rows the plan assigned it, bit-identically to the
    /// full matrix (row arithmetic is row-local).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> FixedMatrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        FixedMatrix {
            rows: rows.len(),
            cols: self.cols,
            data,
        }
    }

    /// Full-precision dot product of row `i` with the activation vector,
    /// skipping zero activations (they contribute nothing — this is why
    /// input-sparsity skipping is *exact*, not approximate).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != cols`.
    pub fn row_dot(&self, i: usize, a: &[Q6_10]) -> Accumulator {
        assert_eq!(a.len(), self.cols, "activation length mismatch");
        let row = self.row(i);
        let mut acc = Accumulator::new();
        for (w, x) in row.iter().zip(a) {
            if !x.is_zero() {
                acc.mac(*w, *x);
            }
        }
        acc
    }
}

/// A quantized predictor factor pair.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedPredictor {
    /// `m × r` quantized left factor.
    pub u: FixedMatrix,
    /// `r × n` quantized right factor.
    pub v: FixedMatrix,
}

impl FixedPredictor {
    /// Quantizes a float predictor.
    pub fn from_float(p: &Predictor) -> Self {
        Self {
            u: FixedMatrix::from_float(p.u()),
            v: FixedMatrix::from_float(p.v()),
        }
    }

    /// V phase: `V·a` accumulated at full precision, then quantized to
    /// 16 bits — exactly what the H-tree's accumulate-and-broadcast does
    /// (partial sums merge losslessly in i64; the root quantizes the final
    /// value before broadcasting it as a 16-bit activation).
    pub fn v_phase(&self, a: &[Q6_10]) -> Vec<Q6_10> {
        (0..self.v.rows())
            .map(|t| self.v.row_dot(t, a).to_fixed())
            .collect()
    }

    /// U phase: signs of `U·(V·a)`. Only the sign bit is kept (the
    /// hardware stores it in the 1-bit predictor register bank), so no
    /// writeback quantization happens here.
    pub fn u_phase(&self, v_result: &[Q6_10]) -> Vec<bool> {
        (0..self.u.rows())
            .map(|i| self.u.row_dot(i, v_result).is_positive())
            .collect()
    }

    /// Complete prediction for one input vector.
    pub fn predict(&self, a: &[Q6_10]) -> Vec<bool> {
        self.u_phase(&self.v_phase(a))
    }

    /// The predictor for a row tile of the layer: U keeps only the tile's
    /// rows (each U row gates one output neuron), V is carried whole —
    /// every chip computes the full `V·a` locally from the broadcast
    /// input, so the quantized V result (and hence every predictor bit)
    /// is bit-identical to the unpartitioned predictor's.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for U.
    pub fn select_rows(&self, rows: &[usize]) -> FixedPredictor {
        FixedPredictor {
            u: self.u.select_rows(rows),
            v: self.v.clone(),
        }
    }
}

/// Whether the golden model (and the machine) uses the UV predictor.
///
/// `Off` is exactly the EIE baseline of the paper ("when UV predictor is
/// not used, SparseNN is the same as the conventional EIE architecture").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum UvMode {
    /// Exploit output sparsity: run V/U phases, bypass inactive rows.
    #[default]
    On,
    /// Input sparsity only (EIE-equivalent baseline).
    Off,
}

/// A fully quantized network: one [`FixedMatrix`] per layer plus one
/// [`FixedPredictor`] per hidden layer.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedNetwork {
    layers: Vec<FixedMatrix>,
    predictors: Vec<FixedPredictor>,
}

/// Per-layer record of a golden forward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenLayer {
    /// Output activations after writeback (and ReLU for hidden layers).
    pub output: Vec<Q6_10>,
    /// Predictor mask, if the layer ran in [`UvMode::On`] and has a
    /// predictor.
    pub mask: Option<Vec<bool>>,
    /// Quantized V-phase intermediate, if a predictor ran.
    pub v_result: Option<Vec<Q6_10>>,
}

impl FixedNetwork {
    /// Quantizes a trained float network.
    pub fn from_float(net: &PredictedNetwork) -> Self {
        Self {
            layers: net
                .mlp()
                .layers()
                .iter()
                .map(|l| FixedMatrix::from_float(l.w()))
                .collect(),
            predictors: net
                .predictors()
                .iter()
                .map(FixedPredictor::from_float)
                .collect(),
        }
    }

    /// Quantizes a plain MLP (no predictors; only [`UvMode::Off`] makes
    /// sense then).
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp
                .layers()
                .iter()
                .map(|l| FixedMatrix::from_float(l.w()))
                .collect(),
            predictors: Vec::new(),
        }
    }

    /// The quantized weight layers.
    pub fn layers(&self) -> &[FixedMatrix] {
        &self.layers
    }

    /// The quantized predictors (one per hidden layer when present).
    pub fn predictors(&self) -> &[FixedPredictor] {
        &self.predictors
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Quantizes a float input vector to the network's activation format.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<Q6_10> {
        quantize::quantize_slice(x)
    }

    /// Golden computation of one layer.
    ///
    /// Hidden layers (`layer < num_layers() - 1`) apply ReLU; with
    /// [`UvMode::On`] and an available predictor, inactive rows are bypassed
    /// and forced to zero.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `a` has the wrong width.
    pub fn forward_layer(&self, layer: usize, a: &[Q6_10], mode: UvMode) -> GoldenLayer {
        assert!(layer < self.layers.len(), "layer out of range");
        let w = &self.layers[layer];
        let is_hidden = layer + 1 < self.layers.len();
        let predictor = if mode == UvMode::On && is_hidden {
            self.predictors.get(layer)
        } else {
            None
        };

        let (mask, v_result) = match predictor {
            Some(p) => {
                let v = p.v_phase(a);
                let m = p.u_phase(&v);
                (Some(m), Some(v))
            }
            None => (None, None),
        };

        let mut output = vec![Q6_10::ZERO; w.rows()];
        for (i, out) in output.iter_mut().enumerate() {
            if let Some(m) = &mask {
                if !m[i] {
                    continue; // bypassed: stays zero, W memory untouched
                }
            }
            let acc = w.row_dot(i, a);
            let val: Q6_10 = acc.to_fixed();
            *out = if is_hidden { val.relu() } else { val };
        }
        GoldenLayer {
            output,
            mask,
            v_result,
        }
    }

    /// Golden forward pass through the whole network.
    pub fn forward(&self, x: &[Q6_10], mode: UvMode) -> Vec<GoldenLayer> {
        let mut acts = x.to_vec();
        let mut out = Vec::with_capacity(self.layers.len());
        for l in 0..self.layers.len() {
            let g = self.forward_layer(l, &acts, mode);
            acts = g.output.clone();
            out.push(g);
        }
        out
    }

    /// Classifies an input: argmax of the final layer's outputs.
    pub fn classify(&self, x: &[Q6_10], mode: UvMode) -> usize {
        let layers = self.forward(x, mode);
        let logits = &layers.last().expect("at least one layer").output;
        sparsenn_numeric::argmax(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_linalg::Matrix;

    fn quantized_net(seed: u64, dims: &[usize], r: usize) -> (PredictedNetwork, FixedNetwork) {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(dims, &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, r, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        (net, fixed)
    }

    #[test]
    fn fixed_forward_tracks_float_forward() {
        let (net, fixed) = quantized_net(1, &[10, 20, 8], 4);
        let x: Vec<f32> = (0..10).map(|i| ((i as f32) * 0.37).sin().abs()).collect();
        let xq = fixed.quantize_input(&x);
        let golden = fixed.forward(&xq, UvMode::Off);
        let float_logits = net.forward_plain(&x);
        for (g, f) in golden.last().unwrap().output.iter().zip(&float_logits) {
            assert!(
                (g.to_f32() - f).abs() < 0.12,
                "fixed {} vs float {f} drifted too far",
                g.to_f32()
            );
        }
    }

    #[test]
    fn uv_off_has_no_masks() {
        let (_, fixed) = quantized_net(2, &[6, 12, 4], 3);
        let x = fixed.quantize_input(&[0.5; 6]);
        let layers = fixed.forward(&x, UvMode::Off);
        assert!(layers
            .iter()
            .all(|l| l.mask.is_none() && l.v_result.is_none()));
    }

    #[test]
    fn uv_on_masks_hidden_layers_only() {
        let (_, fixed) = quantized_net(3, &[6, 12, 10, 4], 3);
        let x = fixed.quantize_input(&[0.3; 6]);
        let layers = fixed.forward(&x, UvMode::On);
        assert!(layers[0].mask.is_some());
        assert!(layers[1].mask.is_some());
        assert!(
            layers[2].mask.is_none(),
            "classifier layer must not be masked"
        );
    }

    #[test]
    fn bypassed_rows_are_exactly_zero() {
        let (_, fixed) = quantized_net(4, &[8, 16, 4], 2);
        let x = fixed.quantize_input(&[0.7; 8]);
        let layers = fixed.forward(&x, UvMode::On);
        let mask = layers[0].mask.as_ref().unwrap();
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                assert!(layers[0].output[i].is_zero());
            }
        }
    }

    #[test]
    fn hidden_outputs_are_non_negative() {
        let (_, fixed) = quantized_net(5, &[8, 16, 4], 2);
        let x = fixed.quantize_input(&[0.9; 8]);
        for mode in [UvMode::On, UvMode::Off] {
            let layers = fixed.forward(&x, mode);
            assert!(layers[0].output.iter().all(|v| v.raw() >= 0));
        }
    }

    #[test]
    fn skipping_zero_inputs_changes_nothing() {
        // row_dot skips zero activations; verify against a dense recompute.
        let m = FixedMatrix::from_float(&Matrix::from_fn(3, 5, |i, j| {
            ((i * 5 + j) as f32 * 0.21).sin()
        }));
        let a: Vec<Q6_10> = [0.0f32, 0.5, 0.0, -0.75, 0.25]
            .iter()
            .map(|&v| Q6_10::from_f32(v))
            .collect();
        for i in 0..3 {
            let mut dense = Accumulator::new();
            for (j, &aj) in a.iter().enumerate() {
                dense.mac(m.get(i, j), aj);
            }
            assert_eq!(m.row_dot(i, &a), dense);
        }
    }

    #[test]
    fn select_rows_is_bit_exact_per_row() {
        let (_, fixed) = quantized_net(6, &[8, 16, 4], 2);
        let w = &fixed.layers()[0];
        let tile = w.select_rows(&[3, 0, 15]);
        assert_eq!(tile.rows(), 3);
        assert_eq!(tile.cols(), 8);
        assert_eq!(tile.row(0), w.row(3));
        assert_eq!(tile.row(1), w.row(0));
        assert_eq!(tile.row(2), w.row(15));
        // A tiled predictor produces the same bits for its rows.
        let p = &fixed.predictors()[0];
        let x = fixed.quantize_input(&[0.4; 8]);
        let full = p.predict(&x);
        let sub = p.select_rows(&[5, 2]).predict(&x);
        assert_eq!(sub, vec![full[5], full[2]]);
    }

    #[test]
    fn classify_returns_argmax() {
        // Identity-ish single layer: input 3 wide, output 3 wide.
        let w = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let mlp = Mlp::new(vec![crate::DenseLayer::new(w)]);
        let fixed = FixedNetwork::from_mlp(&mlp);
        let x = fixed.quantize_input(&[0.1, 0.9, 0.4]);
        assert_eq!(fixed.classify(&x, UvMode::Off), 1);
    }
}
