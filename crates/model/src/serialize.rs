//! Plain-text model persistence.
//!
//! Trained predictor networks are expensive to produce (minutes of SGD at
//! paper scale), so the harness and downstream users need to save and
//! reload them. The format is a deliberately simple line-oriented text
//! format — no external dependencies, stable across platforms, and
//! diff-able — storing `f32` values as exact hexadecimal bit patterns so a
//! round trip is bit-lossless.
//!
//! ```text
//! sparsenn-model v1
//! dims 784 256 10
//! rank 8
//! layer 0 <rows> <cols>
//! <hex row> …
//! predictor 0 u <rows> <cols>
//! …
//! ```

use crate::{DenseLayer, Mlp, PredictedNetwork, Predictor};
use sparsenn_linalg::Matrix;
use std::fmt::Write as _;

/// Error produced when parsing a serialized model fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    line: usize,
    message: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid model at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelError {}

fn err(line: usize, message: impl Into<String>) -> ParseModelError {
    ParseModelError {
        line,
        message: message.into(),
    }
}

/// Serializes a network (weights + predictors) to the text format.
///
/// # Example
///
/// ```
/// use sparsenn_model::{serialize, Mlp, PredictedNetwork};
/// use sparsenn_linalg::init::seeded_rng;
/// let mut rng = seeded_rng(1);
/// let net = PredictedNetwork::with_random_predictors(
///     Mlp::random(&[4, 6, 2], &mut rng), 2, &mut rng);
/// let text = serialize::to_string(&net);
/// let back = serialize::from_str(&text).unwrap();
/// assert_eq!(net, back);
/// ```
pub fn to_string(net: &PredictedNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sparsenn-model v1");
    let dims = net.mlp().dims();
    let _ = writeln!(
        out,
        "dims {}",
        dims.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    );
    let rank = net.predictors().first().map_or(0, Predictor::rank);
    let _ = writeln!(out, "rank {rank}");
    for (l, layer) in net.mlp().layers().iter().enumerate() {
        write_matrix(&mut out, &format!("layer {l}"), layer.w());
    }
    for (l, p) in net.predictors().iter().enumerate() {
        write_matrix(&mut out, &format!("predictor {l} u"), p.u());
        write_matrix(&mut out, &format!("predictor {l} v"), p.v());
    }
    out
}

fn write_matrix(out: &mut String, tag: &str, m: &Matrix) {
    let _ = writeln!(out, "{tag} {} {}", m.rows(), m.cols());
    for i in 0..m.rows() {
        let row: Vec<String> = m
            .row(i)
            .iter()
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
}

/// Parses a network from the text format.
///
/// # Errors
///
/// Returns [`ParseModelError`] with the offending line on malformed input.
pub fn from_str(text: &str) -> Result<PredictedNetwork, ParseModelError> {
    let mut lines = text.lines().enumerate().peekable();
    let (n, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header.trim() != "sparsenn-model v1" {
        return Err(err(n + 1, "bad header (expected `sparsenn-model v1`)"));
    }
    let (n, dims_line) = lines.next().ok_or_else(|| err(2, "missing dims"))?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| err(n + 1, "expected `dims …`"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| err(n + 1, format!("bad dim `{t}`"))))
        .collect::<Result<_, _>>()?;
    if dims.len() < 2 {
        return Err(err(n + 1, "need at least two dims"));
    }
    let (n, rank_line) = lines.next().ok_or_else(|| err(3, "missing rank"))?;
    let _rank: usize = rank_line
        .strip_prefix("rank ")
        .ok_or_else(|| err(n + 1, "expected `rank …`"))?
        .trim()
        .parse()
        .map_err(|_| err(n + 1, "bad rank"))?;

    let mut read_matrix = |tag: String| -> Result<Matrix, ParseModelError> {
        let (n, head) = lines
            .next()
            .ok_or_else(|| err(usize::MAX, format!("missing `{tag}` header")))?;
        let rest = head
            .strip_prefix(&tag)
            .ok_or_else(|| err(n + 1, format!("expected `{tag}`, found `{head}`")))?;
        let shape: Vec<usize> = rest
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| err(n + 1, format!("bad shape token `{t}`")))
            })
            .collect::<Result<_, _>>()?;
        if shape.len() != 2 {
            return Err(err(n + 1, "matrix header needs rows and cols"));
        }
        let (rows, cols) = (shape[0], shape[1]);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let (n, row) = lines
                .next()
                .ok_or_else(|| err(usize::MAX, "missing matrix row"))?;
            for tok in row.split_whitespace() {
                let bits = u32::from_str_radix(tok, 16)
                    .map_err(|_| err(n + 1, format!("bad hex value `{tok}`")))?;
                data.push(f32::from_bits(bits));
            }
            if data.len() % cols != 0 {
                return Err(err(n + 1, "row length mismatch"));
            }
        }
        if data.len() != rows * cols {
            return Err(err(n + 1, "matrix size mismatch"));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    };

    let mut layers = Vec::with_capacity(dims.len() - 1);
    for l in 0..dims.len() - 1 {
        let m = read_matrix(format!("layer {l} "))?;
        layers.push(DenseLayer::new(m));
    }
    let hidden = dims.len() - 2;
    let mut predictors = Vec::with_capacity(hidden);
    for l in 0..hidden {
        let u = read_matrix(format!("predictor {l} u "))?;
        let v = read_matrix(format!("predictor {l} v "))?;
        predictors.push(Predictor::new(u, v));
    }
    Ok(PredictedNetwork::new(Mlp::new(layers), predictors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;

    fn sample() -> PredictedNetwork {
        let mut rng = seeded_rng(9);
        PredictedNetwork::with_random_predictors(Mlp::random(&[5, 7, 6, 3], &mut rng), 2, &mut rng)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let net = sample();
        let text = to_string(&net);
        let back = from_str(&text).expect("parse");
        assert_eq!(net, back);
    }

    #[test]
    fn format_is_stable_for_equal_networks() {
        assert_eq!(to_string(&sample()), to_string(&sample()));
    }

    #[test]
    fn bad_header_is_rejected() {
        let e = from_str("not a model\n").unwrap_err();
        assert!(e.to_string().contains("bad header"), "{e}");
    }

    #[test]
    fn truncated_input_is_rejected() {
        let text = to_string(&sample());
        let cut = &text[..text.len() / 2];
        assert!(from_str(cut).is_err());
    }

    #[test]
    fn corrupt_hex_is_rejected() {
        let text = to_string(&sample())
            .replace(' ', " zz ")
            .replacen(" zz ", " ", 3);
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn special_float_values_survive() {
        // Negative zero and subnormals must round trip bit-exactly.
        let w = Matrix::from_vec(1, 3, vec![-0.0f32, f32::MIN_POSITIVE / 2.0, 1.5e-42]);
        let out = Matrix::from_vec(2, 1, vec![1.0, -1.0]);
        let mlp = Mlp::new(vec![DenseLayer::new(w), DenseLayer::new(out)]);
        let u = Matrix::from_vec(1, 1, vec![0.5]);
        let v = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let net = PredictedNetwork::new(mlp, vec![Predictor::new(u, v)]);
        let back = from_str(&to_string(&net)).unwrap();
        assert_eq!(
            net.mlp().layers()[0].w().as_slice()[0].to_bits(),
            (-0.0f32).to_bits()
        );
        assert_eq!(net, back);
    }
}
