//! The UV output-sparsity predictor and the predictor-gated network.

use crate::mlp::Mlp;
use rand::rngs::StdRng;
use sparsenn_linalg::{init, vector, Matrix};

/// One low-rank sparsity predictor `p = sign(U·V·a)` (Eq. (2)).
///
/// `U` is `m × r`, `V` is `r × n`, where `m`/`n` are the layer's
/// output/input widths and `r ≪ m, n` is the rank. The prediction costs
/// `O(r(m + n))` instead of the layer's `O(mn)` — the paper's "less than
/// 5 % of the original feedforward" overhead claim at `r = 15`, `m = n
/// = 1000`.
#[derive(Clone, Debug, PartialEq)]
pub struct Predictor {
    u: Matrix,
    v: Matrix,
}

impl Predictor {
    /// Wraps existing factors.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree (`U.cols != V.rows`).
    pub fn new(u: Matrix, v: Matrix) -> Self {
        assert_eq!(u.cols(), v.rows(), "predictor rank mismatch");
        Self { u, v }
    }

    /// Xavier-initialized predictor of rank `r` for a layer with `outputs`
    /// rows and `inputs` columns (the starting point for end-to-end
    /// training).
    pub fn random(outputs: usize, inputs: usize, r: usize, rng: &mut StdRng) -> Self {
        Self {
            u: init::xavier_uniform(outputs, r, rng),
            v: init::xavier_uniform(r, inputs, rng),
        }
    }

    /// The `m × r` left factor.
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The `r × n` right factor.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Mutable factors (for SGD updates).
    pub fn factors_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.u, &mut self.v)
    }

    /// The predictor rank `r`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// The intermediate `V·a` (the accelerator's V-phase result).
    pub fn v_scores(&self, a: &[f32]) -> Vec<f32> {
        self.v.matvec(a)
    }

    /// The pre-sign scores `U·V·a` (the accelerator's U-phase result).
    pub fn scores(&self, a: &[f32]) -> Vec<f32> {
        self.u.matvec(&self.v_scores(a))
    }

    /// The activeness prediction: `true` where the row is predicted to
    /// produce a positive (hence nonzero) activation. `sign(0)` counts as
    /// inactive, matching the hardware's "only positive outputs are
    /// scheduled".
    pub fn predict(&self, a: &[f32]) -> Vec<bool> {
        self.scores(a).iter().map(|&s| s > 0.0).collect()
    }
}

/// A network with one predictor per hidden layer.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictedNetwork {
    mlp: Mlp,
    predictors: Vec<Predictor>,
}

/// Result of a predictor-gated forward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictedForward {
    /// `post[0]` is the input; `post[l+1]` the gated output of layer `l`.
    pub post: Vec<Vec<f32>>,
    /// Per-hidden-layer activeness masks (`true` = computed).
    pub masks: Vec<Vec<bool>>,
}

impl PredictedForward {
    /// The classifier logits.
    pub fn logits(&self) -> &[f32] {
        self.post.last().expect("never empty")
    }

    /// Fraction of hidden units predicted *inactive* at hidden layer `l`
    /// (the paper's ρ⁽ˡ⁺¹⁾, in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn predicted_sparsity(&self, l: usize) -> f32 {
        let mask = &self.masks[l];
        if mask.is_empty() {
            return 0.0;
        }
        mask.iter().filter(|&&m| !m).count() as f32 / mask.len() as f32
    }
}

impl PredictedNetwork {
    /// Combines a network and its per-hidden-layer predictors.
    ///
    /// # Panics
    ///
    /// Panics if the number of predictors differs from `mlp.num_hidden()`
    /// or any predictor's shape does not match its layer.
    pub fn new(mlp: Mlp, predictors: Vec<Predictor>) -> Self {
        assert_eq!(
            predictors.len(),
            mlp.num_hidden(),
            "one predictor per hidden layer"
        );
        for (l, p) in predictors.iter().enumerate() {
            assert_eq!(
                p.u().rows(),
                mlp.layers()[l].outputs(),
                "predictor U rows mismatch"
            );
            assert_eq!(
                p.v().cols(),
                mlp.layers()[l].inputs(),
                "predictor V cols mismatch"
            );
        }
        Self { mlp, predictors }
    }

    /// Attaches fresh random rank-`r` predictors to every hidden layer.
    pub fn with_random_predictors(mlp: Mlp, r: usize, rng: &mut StdRng) -> Self {
        let predictors = (0..mlp.num_hidden())
            .map(|l| Predictor::random(mlp.layers()[l].outputs(), mlp.layers()[l].inputs(), r, rng))
            .collect();
        Self::new(mlp, predictors)
    }

    /// The underlying network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Mutable network access.
    pub fn mlp_mut(&mut self) -> &mut Mlp {
        &mut self.mlp
    }

    /// The per-hidden-layer predictors.
    pub fn predictors(&self) -> &[Predictor] {
        &self.predictors
    }

    /// Mutable predictor access.
    pub fn predictors_mut(&mut self) -> &mut [Predictor] {
        &mut self.predictors
    }

    /// Plain forward pass, ignoring the predictors (the NO-UV baseline and
    /// the `uv_off` accelerator mode).
    pub fn forward_plain(&self, x: &[f32]) -> Vec<f32> {
        self.mlp.forward(x).logits().to_vec()
    }

    /// Inference forward pass with output-sparsity bypass: hidden rows
    /// predicted inactive are *not computed* (their activation is zero),
    /// exactly like the accelerator's W phase.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input width.
    pub fn forward_predicted(&self, x: &[f32]) -> PredictedForward {
        let mut post = vec![x.to_vec()];
        let mut masks = Vec::with_capacity(self.predictors.len());
        for (l, layer) in self.mlp.layers().iter().enumerate() {
            let a = post.last().expect("never empty");
            if l < self.predictors.len() {
                let mask = self.predictors[l].predict(a);
                let mut out = vec![0.0f32; layer.outputs()];
                for (i, (oi, &active)) in out.iter_mut().zip(&mask).enumerate() {
                    if active {
                        *oi = vector::dot(layer.w().row(i), a).max(0.0);
                    }
                }
                masks.push(mask);
                post.push(out);
            } else {
                post.push(layer.preact(a));
            }
        }
        PredictedForward { post, masks }
    }

    /// The paper-faithful *training* forward pass of Algorithm 1:
    /// `a = p ∘ ReLU(W·a)` with `p = sign(U·V·a) ∈ {−1, 0, +1}`.
    ///
    /// Unlike [`forward_predicted`](Self::forward_predicted), a false
    /// negative (`p = −1` while `ReLU > 0`) produces a *negated* activation
    /// rather than zero; this is what the straight-through gradients are
    /// computed against during training.
    pub fn forward_training(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut post = vec![x.to_vec()];
        for (l, layer) in self.mlp.layers().iter().enumerate() {
            let a = post.last().expect("never empty");
            let z = layer.preact(a);
            if l < self.predictors.len() {
                let p = vector::sign(&self.predictors[l].scores(a));
                let gated = vector::hadamard(&p, &vector::relu(&z));
                post.push(gated);
            } else {
                post.push(z);
            }
        }
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;

    fn small_net(seed: u64) -> PredictedNetwork {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(&[6, 12, 8, 4], &mut rng);
        PredictedNetwork::with_random_predictors(mlp, 3, &mut rng)
    }

    #[test]
    fn shapes_are_validated() {
        let net = small_net(0);
        assert_eq!(net.predictors().len(), 2);
        assert_eq!(net.predictors()[0].rank(), 3);
        assert_eq!(net.predictors()[0].u().rows(), 12);
        assert_eq!(net.predictors()[1].v().cols(), 12);
    }

    #[test]
    #[should_panic(expected = "one predictor per hidden layer")]
    fn wrong_predictor_count_panics() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::random(&[4, 6, 2], &mut rng);
        PredictedNetwork::new(mlp, vec![]);
    }

    #[test]
    fn predicted_inactive_rows_are_zero() {
        let net = small_net(3);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.61).sin().max(0.0)).collect();
        let out = net.forward_predicted(&x);
        for (l, mask) in out.masks.iter().enumerate() {
            for (i, &active) in mask.iter().enumerate() {
                if !active {
                    assert_eq!(
                        out.post[l + 1][i],
                        0.0,
                        "layer {l} row {i} should be bypassed"
                    );
                }
            }
        }
    }

    #[test]
    fn gating_only_removes_or_keeps_values() {
        // Where the mask is active, the gated value equals the plain ReLU value.
        let net = small_net(4);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.3).cos().abs()).collect();
        let plain = net.mlp().forward(&x);
        let pred = net.forward_predicted(&x);
        for (i, &active) in pred.masks[0].iter().enumerate() {
            if active {
                assert!((pred.post[1][i] - plain.post[1][i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn predicted_sparsity_counts_inactive_fraction() {
        let pf = PredictedForward {
            post: vec![vec![], vec![]],
            masks: vec![vec![true, false, false, true]],
        };
        assert_eq!(pf.predicted_sparsity(0), 0.5);
    }

    #[test]
    fn training_forward_matches_sign_times_relu() {
        let net = small_net(5);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 1.3).sin()).collect();
        let tr = net.forward_training(&x);
        // Recompute layer 0 by hand.
        let z = net.mlp().layers()[0].preact(&x);
        let p = vector::sign(&net.predictors()[0].scores(&x));
        for i in 0..z.len() {
            let expect = p[i] * z[i].max(0.0);
            assert!((tr[1][i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_predictor_makes_predicted_equal_plain() {
        // Use the layer itself as its own (rank = full) predictor: U = W, V = I.
        let mut rng = seeded_rng(6);
        let mlp = Mlp::random(&[5, 7, 3], &mut rng);
        let w = mlp.layers()[0].w().clone();
        let eye = Matrix::from_fn(5, 5, |i, j| if i == j { 1.0 } else { 0.0 });
        let net = PredictedNetwork::new(mlp, vec![Predictor::new(w, eye)]);
        let x: Vec<f32> = (0..5).map(|i| (i as f32).cos()).collect();
        let plain = net.forward_plain(&x);
        let pred = net.forward_predicted(&x);
        for (a, b) in plain.iter().zip(pred.logits()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
