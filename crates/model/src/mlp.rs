//! The plain multi-layer perceptron.

use rand::rngs::StdRng;
use sparsenn_linalg::{init, vector, Matrix};

/// One fully-connected layer `a ↦ W·a` (no bias, exactly as in the paper's
/// Eq. (1) and Algorithm 1).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseLayer {
    w: Matrix,
}

impl DenseLayer {
    /// Wraps a weight matrix.
    pub fn new(w: Matrix) -> Self {
        Self { w }
    }

    /// He-normal initialized layer `outputs × inputs`.
    pub fn random(outputs: usize, inputs: usize, rng: &mut StdRng) -> Self {
        Self {
            w: init::he_normal(outputs, inputs, rng),
        }
    }

    /// The weight matrix.
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// Mutable access to the weights (SGD updates).
    pub fn w_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Number of input activations.
    pub fn inputs(&self) -> usize {
        self.w.cols()
    }

    /// Number of output activations.
    pub fn outputs(&self) -> usize {
        self.w.rows()
    }

    /// Pre-activation `W·a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != inputs()`.
    pub fn preact(&self, a: &[f32]) -> Vec<f32> {
        self.w.matvec(a)
    }
}

/// A multi-layer perceptron: `dims[0]` inputs, ReLU hidden layers of sizes
/// `dims[1..n-1]`, and a linear output layer of size `dims[n-1]`.
///
/// The paper's two configurations are `[784, 1000, 10]` ("3-layer", one
/// hidden layer) and `[784, 1000, 1000, 1000, 10]` ("5-layer", three hidden
/// layers). The paper counts input and output layers, hence "3-layer" for a
/// single hidden layer.
#[derive(Clone, Debug, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// All activations recorded by a forward pass (needed for backprop).
#[derive(Clone, Debug, PartialEq)]
pub struct Activations {
    /// `pre[l] = W⁽ˡ⁾·a⁽ˡ⁾` for every layer `l`.
    pub pre: Vec<Vec<f32>>,
    /// `post[0]` is the input; `post[l+1]` the (ReLU'd or linear) output of
    /// layer `l`. Length `layers + 1`.
    pub post: Vec<Vec<f32>>,
}

impl Activations {
    /// The network output (logits of the linear classifier layer).
    pub fn logits(&self) -> &[f32] {
        self.post.last().expect("activations never empty")
    }
}

impl Mlp {
    /// Builds an MLP from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layers disagree on dimensions or `layers` is
    /// empty.
    pub fn new(layers: Vec<DenseLayer>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].outputs(),
                pair[1].inputs(),
                "layer dimension mismatch"
            );
        }
        Self { layers }
    }

    /// Random He-initialized MLP with the given layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn random(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|d| DenseLayer::random(d[1], d[0], rng))
            .collect::<Vec<_>>();
        Self::new(layers)
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable layer access (SGD updates).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of hidden (ReLU, predictor-carrying) layers.
    pub fn num_hidden(&self) -> usize {
        self.layers.len() - 1
    }

    /// Layer sizes `[inputs, hidden..., outputs]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].inputs()];
        d.extend(self.layers.iter().map(DenseLayer::outputs));
        d
    }

    /// Full forward pass recording every activation. Hidden layers apply
    /// ReLU; the final layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input dimension.
    pub fn forward(&self, x: &[f32]) -> Activations {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len() + 1);
        post.push(x.to_vec());
        for (l, layer) in self.layers.iter().enumerate() {
            let z = layer.preact(post.last().expect("post never empty"));
            let a = if l + 1 < self.layers.len() {
                vector::relu(&z)
            } else {
                z.clone()
            };
            pre.push(z);
            post.push(a);
        }
        Activations { pre, post }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;

    #[test]
    fn dims_roundtrip() {
        let mlp = Mlp::random(&[784, 100, 50, 10], &mut seeded_rng(0));
        assert_eq!(mlp.dims(), vec![784, 100, 50, 10]);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.num_hidden(), 2);
    }

    #[test]
    fn forward_shapes_and_relu() {
        let mlp = Mlp::random(&[6, 8, 3], &mut seeded_rng(1));
        let acts = mlp.forward(&[0.2; 6]);
        assert_eq!(acts.post.len(), 3);
        assert_eq!(acts.pre.len(), 2);
        assert_eq!(acts.logits().len(), 3);
        // Hidden activations are non-negative (ReLU).
        assert!(acts.post[1].iter().all(|&v| v >= 0.0));
        // Output layer is linear: logits equal the last pre-activation.
        assert_eq!(acts.pre[1], *acts.logits());
    }

    #[test]
    fn identity_layer_passes_input() {
        let id = DenseLayer::new(Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 }));
        let mlp = Mlp::new(vec![id]);
        let acts = mlp.forward(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(acts.logits(), &[1.0, -2.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "layer dimension mismatch")]
    fn mismatched_layers_panic() {
        let a = DenseLayer::new(Matrix::zeros(4, 6));
        let b = DenseLayer::new(Matrix::zeros(2, 5));
        Mlp::new(vec![a, b]);
    }

    #[test]
    fn hidden_sparsity_from_relu_is_substantial() {
        // With He-init and a zero-mean input, about half the hidden units die.
        let mlp = Mlp::random(&[50, 200, 10], &mut seeded_rng(2));
        let x: Vec<f32> = (0..50).map(|i| ((i as f32) * 0.37).sin()).collect();
        let acts = mlp.forward(&x);
        let s = sparsenn_linalg::vector::sparsity(&acts.post[1]);
        assert!(s > 0.25 && s < 0.75, "hidden sparsity {s}");
    }
}
