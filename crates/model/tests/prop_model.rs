//! Property-based tests of the model invariants the accelerator relies on.

use proptest::prelude::*;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_model::{Mlp, PredictedNetwork};

fn network(seed: u64, hidden: usize, rank: usize) -> PredictedNetwork {
    let mut rng = seeded_rng(seed);
    PredictedNetwork::with_random_predictors(
        Mlp::random(&[12, hidden, 8], &mut rng),
        rank,
        &mut rng,
    )
}

fn input(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed ^ 0xF00D);
    (0..12)
        .map(|_| {
            use rand::Rng;
            if rng.gen_bool(0.4) {
                0.0
            } else {
                rng.gen_range(-1.5f32..1.5)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gating only removes: the predicted forward's nonzero set is a
    /// subset of the plain forward's at every hidden layer, and the values
    /// that survive are identical.
    #[test]
    fn predicted_nonzeros_are_a_subset_of_plain(seed in 0u64..10_000, rank in 1usize..5) {
        let net = network(seed, 16, rank);
        let x = input(seed);
        let plain = net.mlp().forward(&x);
        let pred = net.forward_predicted(&x);
        for (i, &v) in pred.post[1].iter().enumerate() {
            if v != 0.0 {
                prop_assert!((v - plain.post[1][i]).abs() < 1e-6);
            }
        }
    }

    /// The fixed-point golden model's predictor mask agrees with the float
    /// predictor on decisively-signed scores (quantization can only flip
    /// scores near zero).
    #[test]
    fn quantized_mask_agrees_on_decisive_scores(seed in 0u64..10_000) {
        let net = network(seed, 16, 3);
        let x = input(seed);
        let float_scores = net.predictors()[0].scores(&x);
        let fixed = FixedNetwork::from_float(&net);
        let xq = fixed.quantize_input(&x);
        let golden = fixed.forward_layer(0, &xq, UvMode::On);
        let mask = golden.mask.as_ref().expect("hidden layer has a mask");
        for (i, (&s, &m)) in float_scores.iter().zip(mask).enumerate() {
            if s.abs() > 0.05 {
                prop_assert_eq!(m, s > 0.0, "row {} score {}", i, s);
            }
        }
    }

    /// Zero input ⇒ zero hidden activations, empty prediction, zero logits.
    #[test]
    fn zero_input_collapses_everything(seed in 0u64..10_000) {
        let net = network(seed, 12, 2);
        let x = vec![0.0f32; 12];
        let pred = net.forward_predicted(&x);
        prop_assert!(pred.post[1].iter().all(|&v| v == 0.0));
        prop_assert!(pred.logits().iter().all(|&v| v == 0.0));
    }

    /// Predictor scores are linear in the input (they are a composition of
    /// two linear maps).
    #[test]
    fn predictor_scores_are_linear(seed in 0u64..10_000, alpha in -2.0f32..2.0) {
        let net = network(seed, 10, 2);
        let x = input(seed);
        let scaled: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        let s1 = net.predictors()[0].scores(&x);
        let s2 = net.predictors()[0].scores(&scaled);
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert!((a * alpha - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} {b} {alpha}");
        }
    }

    /// Serialization round trip preserves the network bit for bit, for any
    /// architecture.
    #[test]
    fn serialize_roundtrip(seed in 0u64..10_000, hidden in 2usize..20, rank in 1usize..4) {
        let net = network(seed, hidden, rank);
        let text = sparsenn_model::serialize::to_string(&net);
        let back = sparsenn_model::serialize::from_str(&text).expect("parse");
        prop_assert_eq!(net, back);
    }
}
