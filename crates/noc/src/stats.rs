//! Event counters collected by the trees (inputs to the energy model).

/// Activity counters for one tree over one simulation.
///
/// Every field is a *count of events*; the energy model in
/// `sparsenn-energy` multiplies them by per-event energies, mirroring how
/// the paper feeds post-synthesis toggle rates into PrimeTime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Router traversals (one flit moving through one router).
    pub hops: u64,
    /// Flits the root emitted (broadcasts or finished reductions).
    pub root_emissions: u64,
    /// Cycles the root wanted to emit but was stalled by the sink.
    pub sink_stalls: u64,
    /// Cycles a router had a flit but no credit to forward it.
    pub credit_stalls: u64,
    /// Peak occupancy observed over all router buffers.
    pub peak_occupancy: usize,
    /// ACC-stage merge operations (reduce tree only).
    pub acc_merges: u64,
}

impl NocStats {
    /// Merges another stats block into this one (peaks take the max).
    pub fn merge(&mut self, other: &NocStats) {
        self.cycles += other.cycles;
        self.hops += other.hops;
        self.root_emissions += other.root_emissions;
        self.sink_stalls += other.sink_stalls;
        self.credit_stalls += other.credit_stalls;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
        self.acc_merges += other.acc_merges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_peaks() {
        let mut a = NocStats {
            cycles: 10,
            hops: 5,
            peak_occupancy: 2,
            ..NocStats::default()
        };
        let b = NocStats {
            cycles: 3,
            hops: 7,
            peak_occupancy: 4,
            ..NocStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 13);
        assert_eq!(a.hops, 12);
        assert_eq!(a.peak_occupancy, 4);
    }
}
