//! Credit-managed router input ports and fixed-latency links.

use std::collections::VecDeque;

/// A router input buffer plus the link feeding it.
///
/// Credit accounting: the upstream sender may launch a flit only when
/// `buffer occupancy + flits in flight on the link < capacity`, so the
/// buffer can never overflow regardless of timing — the invariant the
/// paper's "packet-buffer with credit" flow control provides.
#[derive(Clone, Debug)]
pub struct Port<T> {
    queue: VecDeque<T>,
    capacity: usize,
    /// In-flight flits: `(arrival_cycle, flit)`, ordered by arrival.
    link: VecDeque<(u64, T)>,
    latency: u64,
}

impl<T> Port<T> {
    /// Creates an empty port.
    pub fn new(capacity: usize, latency: u64) -> Self {
        assert!(capacity > 0, "port capacity must be positive");
        Self {
            queue: VecDeque::new(),
            capacity,
            link: VecDeque::new(),
            latency,
        }
    }

    /// `true` if the sender holds a credit (buffer + in-flight < capacity).
    pub fn has_credit(&self) -> bool {
        self.queue.len() + self.link.len() < self.capacity
    }

    /// Launches a flit onto the link at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if called without credit — senders must check
    /// [`has_credit`](Self::has_credit) first (the hardware cannot
    /// physically do otherwise).
    pub fn send(&mut self, cycle: u64, flit: T) {
        assert!(self.has_credit(), "send without credit");
        self.link.push_back((cycle + self.latency, flit));
    }

    /// Moves link arrivals due at `cycle` into the buffer.
    pub fn advance(&mut self, cycle: u64) {
        while let Some(&(ready, _)) = self.link.front() {
            if ready > cycle {
                break;
            }
            let (_, flit) = self.link.pop_front().expect("checked nonempty");
            self.queue.push_back(flit);
            debug_assert!(self.queue.len() <= self.capacity, "credit violation");
        }
    }

    /// The flit at the head of the buffer, if any.
    pub fn head(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Pops the head flit (returns the credit to the sender).
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Buffer occupancy (excludes in-flight flits).
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// `true` when both buffer and link are empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.link.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_blocks_at_capacity() {
        let mut p: Port<u32> = Port::new(2, 1);
        assert!(p.has_credit());
        p.send(0, 1);
        assert!(p.has_credit());
        p.send(0, 2);
        assert!(!p.has_credit(), "2 in flight with capacity 2 ⇒ no credit");
        p.advance(1);
        assert!(
            !p.has_credit(),
            "arrivals occupy the buffer, still no credit"
        );
        assert_eq!(p.pop(), Some(1));
        assert!(p.has_credit(), "pop returns a credit");
    }

    #[test]
    fn latency_is_respected() {
        let mut p: Port<u32> = Port::new(4, 3);
        p.send(10, 7);
        p.advance(12);
        assert!(p.head().is_none(), "not arrived yet");
        p.advance(13);
        assert_eq!(p.head(), Some(&7));
    }

    #[test]
    fn fifo_order_on_link() {
        let mut p: Port<u32> = Port::new(4, 2);
        p.send(0, 1);
        p.send(1, 2);
        p.advance(3);
        assert_eq!(p.pop(), Some(1));
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), None);
    }

    #[test]
    #[should_panic(expected = "send without credit")]
    fn overcommit_panics() {
        let mut p: Port<u32> = Port::new(1, 1);
        p.send(0, 1);
        p.send(0, 2);
    }
}
