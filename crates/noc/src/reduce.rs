//! The partial-sum reduction tree (V phase, paper Fig. 4).
//!
//! During the V computation the columns of `V` live with the PEs, so each
//! PE produces a *partial sum* for every predictor row. The H-tree routers
//! carry an extra ACC pipeline stage (Fig. 4(c): RC → SA → ST → ACC → LT):
//! a partial sum entering a router is added into that router's accumulation
//! register for its row; the flit carrying the **last** missing contribution
//! continues up the tree with the merged value, the others are absorbed.
//! The root therefore emits each row's complete 64-PE sum exactly once.

use crate::config::NocConfig;
use crate::link::Port;
use crate::stats::NocStats;
use std::collections::VecDeque;

/// A partial-sum flit: predictor row and the running Q(2·FRAC) value.
type SumFlit = (u32, i64);

#[derive(Clone, Debug)]
struct ReduceRouter {
    ports: Vec<Port<SumFlit>>,
    /// Per-row accumulation registers.
    acc: Vec<i64>,
    /// Contributions merged so far, per row.
    cnt: Vec<u32>,
    /// Contributions expected per row (ports with participating subtrees).
    expected: u32,
}

impl ReduceRouter {
    fn new(cfg: &NocConfig, rows: usize, expected: u32) -> Self {
        Self {
            ports: (0..cfg.radix)
                .map(|_| Port::new(cfg.queue_capacity, cfg.hop_latency))
                .collect(),
            acc: vec![0; rows],
            cnt: vec![0; rows],
            expected,
        }
    }

    /// Port whose head has the smallest row id (deterministic service
    /// order; any fair policy works because addition commutes).
    fn winner(&self) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (i, port) in self.ports.iter().enumerate() {
            if let Some(&(row, _)) = port.head() {
                if best.is_none_or(|(brow, _)| row < brow) {
                    best = Some((row, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn is_empty(&self) -> bool {
        self.ports.iter().all(Port::is_empty)
    }
}

/// Cycle-level model of the accumulating reduction through the H-tree.
///
/// Construct it with the set of *participating* PEs (those holding at least
/// one nonzero input activation — PEs with nothing to contribute stay
/// silent, and the expected-contribution counts adjust so rows still
/// complete).
#[derive(Clone, Debug)]
pub struct ReduceTree {
    cfg: NocConfig,
    levels: usize,
    routers: Vec<Vec<ReduceRouter>>,
    /// Completed row sums waiting at the root (emitted one per cycle).
    root_out: VecDeque<SumFlit>,
    cycle: u64,
    stats: NocStats,
    expected_total: u64,
    emitted: u64,
}

impl ReduceTree {
    /// Builds a tree for `rows` predictor rows with the given PE
    /// participation mask.
    ///
    /// # Panics
    ///
    /// Panics if `participants.len() != cfg.num_pes`.
    pub fn new(cfg: &NocConfig, rows: usize, participants: &[bool]) -> Self {
        assert_eq!(
            participants.len(),
            cfg.num_pes,
            "one participation flag per PE"
        );
        let levels = cfg.levels();
        // A subtree contributes if any of its PEs participate.
        let mut contributing: Vec<bool> = participants.to_vec();
        let mut routers = Vec::with_capacity(levels);
        for l in 0..levels {
            let n = cfg.routers_at_level(l);
            let mut level = Vec::with_capacity(n);
            let mut next_contributing = Vec::with_capacity(n);
            for r in 0..n {
                let children = &contributing[r * cfg.radix..(r + 1) * cfg.radix];
                let expected = children.iter().filter(|&&c| c).count() as u32;
                level.push(ReduceRouter::new(cfg, rows, expected));
                next_contributing.push(expected > 0);
            }
            routers.push(level);
            contributing = next_contributing;
        }
        let participating_rows = if participants.iter().any(|&p| p) {
            rows as u64
        } else {
            0
        };
        Self {
            cfg: *cfg,
            levels,
            routers,
            root_out: VecDeque::new(),
            cycle: 0,
            stats: NocStats::default(),
            expected_total: participating_rows,
            emitted: 0,
        }
    }

    /// Injects a partial sum from PE `pe` for `row`. Returns `false` when
    /// the leaf router has no credit (the PE must retry next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `pe` or `row` is out of range.
    pub fn try_inject(&mut self, pe: usize, row: u32, partial: i64) -> bool {
        assert!(pe < self.cfg.num_pes, "PE index out of range");
        assert!(
            (row as usize) < self.routers[0][0].acc.len(),
            "row out of range"
        );
        let port = &mut self.routers[0][pe / self.cfg.radix].ports[pe % self.cfg.radix];
        if port.has_credit() {
            port.send(self.cycle, (row, partial));
            true
        } else {
            false
        }
    }

    /// Advances one cycle; returns a completed `(row, total)` if the root
    /// finished one.
    pub fn tick(&mut self) -> Option<SumFlit> {
        self.cycle += 1;
        self.stats.cycles += 1;
        let cycle = self.cycle;

        for level in &mut self.routers {
            for r in level.iter_mut() {
                for p in &mut r.ports {
                    p.advance(cycle);
                }
            }
        }

        // Root-side first so credits free up for the levels below.
        for l in (0..self.levels).rev() {
            let is_root = l == self.levels - 1;
            let (lower, upper) = self.routers.split_at_mut(l + 1);
            let this_level = &mut lower[l];
            for r in 0..this_level.len() {
                let Some(port) = this_level[r].winner() else {
                    continue;
                };
                let &(row, _) = this_level[r].ports[port].head().expect("winner has head");
                let completes = this_level[r].cnt[row as usize] + 1 == this_level[r].expected;
                if completes && !is_root {
                    // The completing flit must continue upward: it needs a
                    // credit at the parent, else the pipeline stalls.
                    let parent = &upper[0][r / self.cfg.radix].ports[r % self.cfg.radix];
                    if !parent.has_credit() {
                        self.stats.credit_stalls += 1;
                        continue;
                    }
                }
                let (row, val) = this_level[r].ports[port].pop().expect("winner has head");
                let slot = row as usize;
                this_level[r].acc[slot] += val;
                this_level[r].cnt[slot] += 1;
                self.stats.acc_merges += 1;
                self.stats.hops += 1;
                if this_level[r].cnt[slot] == this_level[r].expected {
                    let total = this_level[r].acc[slot];
                    if is_root {
                        self.root_out.push_back((row, total));
                    } else {
                        let parent = &mut upper[0][r / self.cfg.radix].ports[r % self.cfg.radix];
                        parent.send(cycle, (row, total));
                    }
                }
            }
        }

        let peak = self
            .routers
            .iter()
            .flat_map(|lvl| lvl.iter())
            .flat_map(|r| r.ports.iter().map(Port::occupancy))
            .max()
            .unwrap_or(0);
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(peak);

        let out = self.root_out.pop_front();
        if out.is_some() {
            self.stats.root_emissions += 1;
            self.emitted += 1;
        }
        out
    }

    /// `true` once every expected row has been emitted and nothing is in
    /// flight.
    pub fn is_done(&self) -> bool {
        self.emitted == self.expected_total
            && self.root_out.is_empty()
            && self.routers.iter().flatten().all(ReduceRouter::is_empty)
    }

    /// Activity counters accumulated since construction.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_reduction(
        rows: usize,
        contributions: &[(usize, u32, i64)],
        participants: &[bool],
    ) -> Vec<(u32, i64)> {
        let cfg = NocConfig::default();
        let mut tree = ReduceTree::new(&cfg, rows, participants);
        let mut pending: Vec<(usize, u32, i64)> = contributions.to_vec();
        let mut out = Vec::new();
        for _ in 0..20_000 {
            pending.retain(|&(pe, row, v)| !tree.try_inject(pe, row, v));
            if let Some(done) = tree.tick() {
                out.push(done);
            }
            if pending.is_empty() && tree.is_done() {
                break;
            }
        }
        assert!(pending.is_empty(), "injection starved");
        assert!(tree.is_done(), "reduction did not finish");
        out
    }

    #[test]
    fn sums_match_sequential_reference() {
        let rows = 5;
        let participants = vec![true; 64];
        let mut contributions = Vec::new();
        let mut expect = vec![0i64; rows];
        for pe in 0..64usize {
            for (row, e) in expect.iter_mut().enumerate() {
                let v = (pe as i64 + 1) * (row as i64 + 3) - 40;
                contributions.push((pe, row as u32, v));
                *e += v;
            }
        }
        let out = run_reduction(rows, &contributions, &participants);
        assert_eq!(out.len(), rows);
        let mut got = vec![0i64; rows];
        for (row, total) in out {
            got[row as usize] = total;
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn each_row_emitted_exactly_once() {
        let participants = vec![true; 64];
        let contributions: Vec<(usize, u32, i64)> = (0..64)
            .flat_map(|pe| (0..3u32).map(move |r| (pe, r, 1)))
            .collect();
        let out = run_reduction(3, &contributions, &participants);
        let mut rows: Vec<u32> = out.iter().map(|&(r, _)| r).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2]);
        assert!(out.iter().all(|&(_, total)| total == 64));
    }

    #[test]
    fn silent_pes_do_not_block_completion() {
        // Only 3 PEs participate, scattered across subtrees.
        let mut participants = vec![false; 64];
        for &pe in &[2usize, 21, 63] {
            participants[pe] = true;
        }
        let contributions = vec![(2usize, 0u32, 10i64), (21, 0, 20), (63, 0, 30)];
        let out = run_reduction(1, &contributions, &participants);
        assert_eq!(out, vec![(0, 60)]);
    }

    #[test]
    fn no_participants_is_immediately_done() {
        let cfg = NocConfig::default();
        let tree = ReduceTree::new(&cfg, 4, &[false; 64]);
        assert!(tree.is_done());
    }

    #[test]
    fn merge_count_matches_total_contributions() {
        let participants = vec![true; 64];
        let contributions: Vec<(usize, u32, i64)> = (0..64).map(|pe| (pe, 0u32, 1i64)).collect();
        let cfg = NocConfig::default();
        let mut tree = ReduceTree::new(&cfg, 1, &participants);
        let mut pending = contributions;
        for _ in 0..10_000 {
            pending.retain(|&(pe, row, v)| !tree.try_inject(pe, row, v));
            tree.tick();
            if pending.is_empty() && tree.is_done() {
                break;
            }
        }
        assert!(tree.is_done());
        // 64 merges at the leaves + 16 at internal + 4 at root = 84.
        assert_eq!(tree.stats().acc_merges, 84);
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn row_out_of_range_panics() {
        let cfg = NocConfig::default();
        let mut tree = ReduceTree::new(&cfg, 2, &[true; 64]);
        tree.try_inject(0, 7, 1);
    }
}
