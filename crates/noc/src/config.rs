//! Network-on-chip configuration.

/// Number of levels of a radix-`radix` tree over `nodes` leaves — the
/// smallest `L` with `radix^L >= nodes` (0 for a single node). Shared by
/// the PE-level H-tree ([`NocConfig::levels`]) and the chip-level
/// interconnect of `sparsenn-partition`, which lifts the same tree shape
/// one level up. Unlike [`NocConfig::levels`] it accepts any node count.
///
/// # Panics
///
/// Panics if `radix < 2` or `nodes == 0`.
pub fn tree_levels(nodes: usize, radix: usize) -> usize {
    assert!(radix >= 2, "tree radix must be at least 2");
    assert!(nodes > 0, "a tree needs at least one node");
    let mut n = 1usize;
    let mut levels = 0usize;
    while n < nodes {
        n = n.saturating_mul(radix);
        levels += 1;
    }
    levels
}

/// Topology and flow-control parameters of the H-tree.
///
/// Defaults reproduce the paper's Table II machine: 64 PEs, radix-4 tree
/// (16 leaf + 4 internal + 1 root router), credit-based packet buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Number of processing elements (leaves of the tree).
    pub num_pes: usize,
    /// Router radix (children per router).
    pub radix: usize,
    /// Capacity of each router input buffer, in flits.
    pub queue_capacity: usize,
    /// Link/pipeline latency per hop, in cycles (the RC/SA/ST/LT stages
    /// sustain one flit per cycle but add this much latency).
    pub hop_latency: u64,
}

impl NocConfig {
    /// Number of tree levels (routers between PE and root, inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not a power of `radix`.
    pub fn levels(&self) -> usize {
        let levels = tree_levels(self.num_pes, self.radix);
        assert_eq!(
            self.radix.pow(levels as u32),
            self.num_pes,
            "num_pes must be a power of radix"
        );
        levels
    }

    /// Routers at tree level `l` (level 0 = leaves).
    pub fn routers_at_level(&self, l: usize) -> usize {
        self.num_pes / self.radix.pow(l as u32 + 1)
    }

    /// One-way latency of the downward broadcast pipeline, root to PE.
    pub fn broadcast_latency(&self) -> u64 {
        self.hop_latency * self.levels() as u64
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            num_pes: 64,
            radix: 4,
            queue_capacity: 4,
            hop_latency: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let c = NocConfig::default();
        assert_eq!(c.num_pes, 64);
        assert_eq!(c.levels(), 3);
        assert_eq!(c.routers_at_level(0), 16); // leaf
        assert_eq!(c.routers_at_level(1), 4); // internal
        assert_eq!(c.routers_at_level(2), 1); // root
    }

    #[test]
    fn small_tree_levels() {
        let c = NocConfig {
            num_pes: 16,
            ..NocConfig::default()
        };
        assert_eq!(c.levels(), 2);
        assert_eq!(c.broadcast_latency(), 2);
    }

    #[test]
    fn tree_levels_rounds_up_for_non_powers() {
        assert_eq!(tree_levels(1, 2), 0);
        assert_eq!(tree_levels(2, 2), 1);
        assert_eq!(tree_levels(3, 2), 2);
        assert_eq!(tree_levels(8, 2), 3);
        assert_eq!(tree_levels(64, 4), 3);
        assert_eq!(tree_levels(5, 4), 2);
    }

    #[test]
    #[should_panic(expected = "power of radix")]
    fn non_power_panics() {
        NocConfig {
            num_pes: 48,
            ..NocConfig::default()
        }
        .levels();
    }
}
