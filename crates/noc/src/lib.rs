//! The SparseNN on-chip network: a 3-level H-tree over 64 processing
//! elements with **buffered, credit-based flow control** (paper §V.B).
//!
//! Two traffic patterns are modelled cycle by cycle:
//!
//! * [`BroadcastTree`] — the W/U-phase pattern: nonzero activations are
//!   injected by their home PE, concentrated up the tree (at every router
//!   the activation with the **smallest index** wins arbitration; losers
//!   wait in the router buffer), and the root broadcasts one activation per
//!   cycle back down to *all* PEs. Because arbitration is local, delivery
//!   can be **out of order** — harmless, since fixed-point accumulation is
//!   order independent (see `sparsenn-numeric`).
//! * [`ReduceTree`] — the V-phase pattern (paper Fig. 4): PEs inject
//!   per-row partial sums; every router carries an ACC pipeline stage that
//!   merges the four children's partials, and the root emits one finished
//!   row sum per cycle.
//!
//! Both trees preserve two hardware invariants the tests enforce: **no flit
//! is ever dropped** (credit flow control blocks the sender instead) and
//! **router buffers never exceed their capacity**.
//!
//! # Example
//!
//! ```
//! use sparsenn_noc::{ActFlit, BroadcastTree, NocConfig};
//!
//! let mut tree = BroadcastTree::new(&NocConfig::default());
//! assert!(tree.try_inject(5, ActFlit { index: 42, value: 100 }));
//! let mut delivered = Vec::new();
//! for _ in 0..32 {
//!     if let Some(f) = tree.tick(true) {
//!         delivered.push(f.index);
//!     }
//! }
//! assert_eq!(delivered, vec![42]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broadcast;
mod config;
mod link;
mod reduce;
mod stats;

pub use broadcast::BroadcastTree;
pub use config::{tree_levels, NocConfig};
pub use reduce::ReduceTree;
pub use stats::NocStats;

/// A broadcast-network flit: one nonzero activation and its global index.
///
/// The index doubles as the arbitration key ("the activation with the
/// smallest index will be granted to the next level") and as the column
/// address the receiving PEs use for their weight lookup. The value is the
/// raw two's-complement encoding of a Q6.10 word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActFlit {
    /// Global activation index (column of the weight matrix).
    pub index: u32,
    /// Raw 16-bit fixed-point activation value.
    pub value: i16,
}

impl Keyed for ActFlit {
    fn key(&self) -> u64 {
        u64::from(self.index)
    }
}

/// Items routed by the [`BroadcastTree`] must expose an arbitration key;
/// the smallest key at each router wins.
pub trait Keyed {
    /// The arbitration key (lower wins).
    fn key(&self) -> u64;
}
