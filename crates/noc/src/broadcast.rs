//! The activation broadcast tree (W and U phases).

use crate::config::NocConfig;
use crate::link::Port;
use crate::stats::NocStats;
use crate::Keyed;
use std::collections::VecDeque;

/// One radix-`k` concentrator router: `k` buffered input ports, smallest-key
/// arbitration.
#[derive(Clone, Debug)]
struct Router<T> {
    ports: Vec<Port<T>>,
}

impl<T: Keyed + Copy> Router<T> {
    fn new(cfg: &NocConfig) -> Self {
        Self {
            ports: (0..cfg.radix)
                .map(|_| Port::new(cfg.queue_capacity, cfg.hop_latency))
                .collect(),
        }
    }

    /// Index of the port whose head flit has the smallest key.
    fn winner(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, port) in self.ports.iter().enumerate() {
            if let Some(f) = port.head() {
                let k = f.key();
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn advance(&mut self, cycle: u64) {
        for p in &mut self.ports {
            p.advance(cycle);
        }
    }

    fn is_empty(&self) -> bool {
        self.ports.iter().all(Port::is_empty)
    }

    fn peak_occupancy(&self) -> usize {
        self.ports.iter().map(Port::occupancy).max().unwrap_or(0)
    }
}

/// Cycle-level model of the upward concentration + downward broadcast
/// H-tree (paper Fig. 3(b)).
///
/// Per cycle, each router grants **one** flit — the one with the smallest
/// key among its input-buffer heads — to the next level if the parent
/// buffer has a credit. The root consumes one winner per cycle (when the
/// sink is ready) and pushes it into the fully-pipelined downward broadcast,
/// which delivers it to *every* PE [`broadcast_latency`] cycles later.
///
/// [`broadcast_latency`]: NocConfig::broadcast_latency
#[derive(Clone, Debug)]
pub struct BroadcastTree<T> {
    cfg: NocConfig,
    levels: usize,
    /// `routers[0]` = leaf level … `routers[levels-1]` = `[root]`.
    routers: Vec<Vec<Router<T>>>,
    /// Downward broadcast pipeline: `(delivery_cycle, flit)`.
    down: VecDeque<(u64, T)>,
    cycle: u64,
    stats: NocStats,
}

impl<T: Keyed + Copy> BroadcastTree<T> {
    /// Builds an idle tree for the given configuration.
    pub fn new(cfg: &NocConfig) -> Self {
        let levels = cfg.levels();
        let routers = (0..levels)
            .map(|l| {
                (0..cfg.routers_at_level(l))
                    .map(|_| Router::new(cfg))
                    .collect()
            })
            .collect();
        Self {
            cfg: *cfg,
            levels,
            routers,
            down: VecDeque::new(),
            cycle: 0,
            stats: NocStats::default(),
        }
    }

    /// Attempts to inject a flit from PE `pe`'s network interface into its
    /// leaf router. Returns `false` (and leaves the flit with the caller)
    /// when the router buffer has no credit.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn try_inject(&mut self, pe: usize, flit: T) -> bool {
        assert!(pe < self.cfg.num_pes, "PE index out of range");
        let port = &mut self.routers[0][pe / self.cfg.radix].ports[pe % self.cfg.radix];
        if port.has_credit() {
            port.send(self.cycle, flit);
            true
        } else {
            false
        }
    }

    /// Advances one clock cycle.
    ///
    /// `sink_ready` gates the root: when `false` (some PE activation queue
    /// is full), the root holds its winner — backpressure instead of drops.
    /// Returns the flit delivered to **all** PEs this cycle, if any.
    pub fn tick(&mut self, sink_ready: bool) -> Option<T> {
        self.cycle += 1;
        self.stats.cycles += 1;
        let cycle = self.cycle;

        // 1. Link arrivals.
        for level in &mut self.routers {
            for r in level.iter_mut() {
                r.advance(cycle);
            }
        }

        // 2. Deliver the head of the downward pipeline if due.
        let delivered = match self.down.front() {
            Some(&(ready, _)) if ready <= cycle => self.down.pop_front().map(|(_, f)| f),
            _ => None,
        };

        // 3. Root arbitration (gated by the sink).
        let root = &mut self.routers[self.levels - 1][0];
        if let Some(port) = root.winner() {
            if sink_ready {
                let flit = root.ports[port].pop().expect("winner has a head");
                self.down
                    .push_back((cycle + self.cfg.broadcast_latency(), flit));
                self.stats.root_emissions += 1;
                self.stats.hops += 1;
            } else {
                self.stats.sink_stalls += 1;
            }
        }

        // 4. Lower levels, root side first so freed credits propagate.
        for l in (0..self.levels - 1).rev() {
            let (lower, upper) = self.routers.split_at_mut(l + 1);
            let this_level = &mut lower[l];
            let parent_level = &mut upper[0];
            for r in 0..this_level.len() {
                if let Some(port) = this_level[r].winner() {
                    let parent = &mut parent_level[r / self.cfg.radix].ports[r % self.cfg.radix];
                    if parent.has_credit() {
                        let flit = this_level[r].ports[port].pop().expect("winner has a head");
                        parent.send(cycle, flit);
                        self.stats.hops += 1;
                    } else {
                        self.stats.credit_stalls += 1;
                    }
                }
            }
        }

        // 5. Occupancy statistics.
        let peak = self
            .routers
            .iter()
            .flat_map(|lvl| lvl.iter())
            .map(Router::peak_occupancy)
            .max()
            .unwrap_or(0);
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(peak);

        delivered
    }

    /// Flits currently inside the downward broadcast pipeline. The machine
    /// uses this to keep PE activation queues from overflowing: the sink is
    /// declared ready only while every queue has more free slots than
    /// flits already committed downward.
    pub fn down_in_flight(&self) -> usize {
        self.down.len()
    }

    /// `true` when no flit is buffered or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.down.is_empty() && self.routers.iter().flatten().all(Router::is_empty)
    }

    /// Activity counters accumulated since construction.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActFlit;

    fn flit(i: u32) -> ActFlit {
        ActFlit {
            index: i,
            value: i as i16,
        }
    }

    fn drain(tree: &mut BroadcastTree<ActFlit>, max_cycles: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            if let Some(f) = tree.tick(true) {
                out.push(f.index);
            }
            if tree.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_flit_is_broadcast_once() {
        let mut tree = BroadcastTree::new(&NocConfig::default());
        assert!(tree.try_inject(17, flit(9)));
        let out = drain(&mut tree, 100);
        assert_eq!(out, vec![9]);
        assert!(tree.is_idle());
    }

    #[test]
    fn all_flits_delivered_exactly_once() {
        let mut tree = BroadcastTree::new(&NocConfig::default());
        let mut pending: Vec<(usize, ActFlit)> =
            (0..64).map(|pe| (pe, flit(1000 + pe as u32))).collect();
        let mut out = Vec::new();
        for _ in 0..1000 {
            pending.retain(|&(pe, f)| !tree.try_inject(pe, f));
            if let Some(f) = tree.tick(true) {
                out.push(f.index);
            }
            if pending.is_empty() && tree.is_idle() {
                break;
            }
        }
        out.sort_unstable();
        let expect: Vec<u32> = (1000..1064).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn smallest_index_wins_local_arbitration() {
        // PEs 0 and 1 share a leaf router; inject a large and a small index
        // in the same cycle: the small one must come out first.
        let mut tree = BroadcastTree::new(&NocConfig::default());
        assert!(tree.try_inject(0, flit(500)));
        assert!(tree.try_inject(1, flit(3)));
        let out = drain(&mut tree, 100);
        assert_eq!(out, vec![3, 500]);
    }

    #[test]
    fn out_of_order_delivery_across_subtrees_is_possible() {
        // The paper: "the earlier nonzero activations might be blocked in a
        // leaf node, while some of the activations with a higher index may
        // enter into a higher level node from another leaf node".
        // Index 5 sits *behind* 100 in PE0's FIFO port, so index 50 from a
        // distant subtree overtakes it — and 100 itself beats 5.
        let mut tree = BroadcastTree::new(&NocConfig::default());
        assert!(tree.try_inject(0, flit(100)));
        assert!(tree.try_inject(0, flit(5)));
        assert!(tree.try_inject(63, flit(50)));
        let out = drain(&mut tree, 200);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![5, 50, 100]);
        assert_ne!(
            out, sorted,
            "delivery {out:?} should not be globally index-ordered"
        );
        let pos = |i: u32| out.iter().position(|&x| x == i).unwrap();
        assert!(pos(100) < pos(5), "{out:?}: 5 was blocked behind 100");
    }

    #[test]
    fn sink_backpressure_stalls_but_never_drops() {
        let mut tree = BroadcastTree::new(&NocConfig::default());
        for pe in 0..8 {
            assert!(tree.try_inject(pe, flit(pe as u32)));
        }
        // Sink never ready: nothing may be delivered.
        for _ in 0..100 {
            assert_eq!(tree.tick(false), None);
        }
        assert!(tree.stats().sink_stalls > 0);
        assert!(!tree.is_idle());
        // Release the sink: all 8 arrive.
        let out = drain(&mut tree, 200);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn saturated_root_delivers_one_per_cycle() {
        let mut tree = BroadcastTree::new(&NocConfig::default());
        let mut pending: Vec<(usize, ActFlit)> = (0..64)
            .flat_map(|pe| (0..4u32).map(move |k| (pe, flit((pe as u32) * 4 + k))))
            .collect();
        let mut deliveries = Vec::new();
        for _ in 0..2000 {
            pending.retain(|&(pe, f)| !tree.try_inject(pe, f));
            if tree.tick(true).is_some() {
                deliveries.push(tree.cycle());
            }
            if pending.is_empty() && tree.is_idle() {
                break;
            }
        }
        assert_eq!(deliveries.len(), 256);
        // After warmup the root must sustain 1 delivery/cycle: the whole
        // span is 256 deliveries in at most 256 + generous warmup cycles.
        let span = deliveries.last().unwrap() - deliveries.first().unwrap();
        assert!(span <= 300, "span {span} too slack for a pipelined tree");
    }

    #[test]
    fn broadcast_latency_matches_config() {
        let cfg = NocConfig {
            hop_latency: 2,
            ..NocConfig::default()
        };
        let mut tree = BroadcastTree::new(&cfg);
        assert!(tree.try_inject(0, flit(1)));
        let mut delivered_at = None;
        for _ in 0..100 {
            if tree.tick(true).is_some() {
                delivered_at = Some(tree.cycle());
                break;
            }
        }
        // 3 hops up at 2 cycles each (the leaf-injection link counts as the
        // first) + 1 arbitration step per level + 6 cycles down.
        let t = delivered_at.expect("must deliver");
        assert!(
            t >= 2 * 3 + 6,
            "delivery at {t} is faster than physically possible"
        );
        assert!(t <= 30, "delivery at {t} is suspiciously slow");
    }
}
