//! Property-based tests for the on-chip network: conservation (nothing is
//! ever dropped or duplicated), bounded buffers, and reduction
//! correctness under arbitrary injection patterns.

use proptest::prelude::*;
use sparsenn_noc::{ActFlit, BroadcastTree, NocConfig, ReduceTree};

fn cfg_strategy() -> impl Strategy<Value = NocConfig> {
    (1usize..6, 1u64..4).prop_map(|(cap, lat)| NocConfig {
        num_pes: 64,
        radix: 4,
        queue_capacity: cap,
        hop_latency: lat,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every injected flit is broadcast exactly once, whatever the buffer
    /// sizes, link latencies and injection pattern.
    #[test]
    fn broadcast_conserves_flits(
        cfg in cfg_strategy(),
        flits in prop::collection::vec((0usize..64, 0u32..10_000), 1..200),
        stall_mask in any::<u64>(),
    ) {
        let mut tree = BroadcastTree::new(&cfg);
        let mut pending: Vec<(usize, ActFlit)> = flits
            .iter()
            .enumerate()
            .map(|(k, &(pe, idx))| (pe, ActFlit { index: idx, value: k as i16 }))
            .collect();
        let mut delivered: Vec<ActFlit> = Vec::new();
        let mut cycles = 0u64;
        while !(pending.is_empty() && tree.is_idle()) {
            cycles += 1;
            prop_assert!(cycles < 200_000, "network livelock");
            pending.retain(|&(pe, f)| !tree.try_inject(pe, f));
            // Pseudo-random sink stalls exercise the backpressure path.
            let ready = (stall_mask >> (cycles % 64)) & 1 == 0 || cycles > 100_000;
            if let Some(f) = tree.tick(ready) {
                delivered.push(f);
            }
        }
        prop_assert_eq!(delivered.len(), flits.len());
        // Multiset equality via the unique value tag.
        let mut got: Vec<i16> = delivered.iter().map(|f| f.value).collect();
        got.sort_unstable();
        let expect: Vec<i16> = (0..flits.len() as i16).collect();
        prop_assert_eq!(got, expect);
        // Buffers never exceeded their configured capacity.
        prop_assert!(tree.stats().peak_occupancy <= cfg.queue_capacity);
    }

    /// The reduce tree computes exact per-row sums for arbitrary
    /// participation patterns and values, each row exactly once.
    #[test]
    fn reduction_is_exact(
        cfg in cfg_strategy(),
        rows in 1usize..8,
        participant_bits in any::<u64>(),
        scale in 1i64..1_000_000,
    ) {
        let participants: Vec<bool> = (0..64).map(|i| (participant_bits >> i) & 1 == 1).collect();
        let mut tree = ReduceTree::new(&cfg, rows, &participants);
        let mut pending = Vec::new();
        let mut expect = vec![0i64; rows];
        for (pe, &participates) in participants.iter().enumerate() {
            if !participates {
                continue;
            }
            for (row, e) in expect.iter_mut().enumerate() {
                let v = (pe as i64 - 31) * (row as i64 + 1) * scale;
                pending.push((pe, row as u32, v));
                *e += v;
            }
        }
        let mut got = vec![None::<i64>; rows];
        let mut cycles = 0u64;
        while !(pending.is_empty() && tree.is_done()) {
            cycles += 1;
            prop_assert!(cycles < 200_000, "reduction livelock");
            pending.retain(|&(pe, row, v)| !tree.try_inject(pe, row, v));
            if let Some((row, total)) = tree.tick() {
                prop_assert!(got[row as usize].is_none(), "row {} emitted twice", row);
                got[row as usize] = Some(total);
            }
        }
        if participants.iter().any(|&p| p) {
            for (row, (g, e)) in got.iter().zip(&expect).enumerate() {
                prop_assert_eq!(g.expect("row must complete"), *e, "row {}", row);
            }
        } else {
            prop_assert!(got.iter().all(Option::is_none));
        }
    }

    /// Arbitration is locally smallest-index-first: when two flits sit at
    /// the heads of different ports of the same leaf router, the smaller
    /// index is always delivered first.
    #[test]
    fn local_arbitration_orders_head_flits(a in 0u32..1000, b in 0u32..1000) {
        prop_assume!(a != b);
        let mut tree = BroadcastTree::new(&NocConfig::default());
        // PEs 0 and 1 share leaf router 0; same-cycle injection.
        let first = tree.try_inject(0, ActFlit { index: a, value: 1 });
        let second = tree.try_inject(1, ActFlit { index: b, value: 2 });
        prop_assert!(first && second);
        let mut order = Vec::new();
        for _ in 0..200 {
            if let Some(f) = tree.tick(true) {
                order.push(f.index);
            }
            if tree.is_idle() {
                break;
            }
        }
        prop_assert_eq!(order.len(), 2);
        prop_assert_eq!(order[0], a.min(b));
    }
}
