//! Property-based verification of the cycle-level machine against the
//! fixed-point golden model — the reproduction's equivalent of verifying
//! the RTL against the Matlab fixed-point simulation.

use proptest::prelude::*;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_model::{Mlp, PredictedNetwork};
use sparsenn_sim::{Machine, MachineConfig};

fn build_net(seed: u64, hidden: usize, rank: usize) -> FixedNetwork {
    let mut rng = seeded_rng(seed);
    let mlp = Mlp::random(&[24, hidden, 10], &mut rng);
    let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
    FixedNetwork::from_float(&net)
}

fn build_input(seed: u64, len: usize, sparsity_pct: u8) -> Vec<f32> {
    let mut rng = seeded_rng(seed ^ 0xDEAD);
    (0..len)
        .map(|_| {
            use rand::Rng;
            if rng.gen_range(0u8..100) < sparsity_pct {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The machine's outputs are bit-identical to the golden model for
    /// random networks, inputs, sparsity levels and both UV modes.
    #[test]
    fn machine_is_bit_exact_vs_golden(
        seed in 0u64..10_000,
        hidden in 8usize..96,
        rank in 1usize..6,
        sparsity in 0u8..100,
        uv_on in any::<bool>(),
    ) {
        let net = build_net(seed, hidden, rank);
        let x = net.quantize_input(&build_input(seed, 24, sparsity));
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, mode);
        let golden = net.forward(&x, mode);
        for (l, (r, g)) in run.layers.iter().zip(&golden).enumerate() {
            prop_assert_eq!(&r.output, &g.output, "layer {} output differs", l);
            prop_assert_eq!(&r.mask, &g.mask, "layer {} mask differs", l);
        }
    }

    /// Queue depth and NoC buffer capacity affect timing, never results.
    #[test]
    fn flow_control_parameters_never_change_results(
        seed in 0u64..10_000,
        queue_depth in 4usize..32,
        noc_cap in 1usize..8,
    ) {
        let net = build_net(seed, 48, 4);
        let x = net.quantize_input(&build_input(seed, 24, 40));
        let reference = Machine::new(MachineConfig::default());
        let cfg = MachineConfig {
            act_queue_depth: queue_depth,
            noc: sparsenn_noc::NocConfig {
                queue_capacity: noc_cap,
                ..Default::default()
            },
            ..Default::default()
        };
        let tweaked = Machine::new(cfg);
        let a = reference.run_network(&net, &x, UvMode::On);
        let b = tweaked.run_network(&net, &x, UvMode::On);
        prop_assert_eq!(a.output(), b.output());
    }

    /// Cycle counts are deterministic: the same run twice gives identical
    /// cycles and event counters.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..10_000) {
        let net = build_net(seed, 40, 3);
        let x = net.quantize_input(&build_input(seed, 24, 30));
        let machine = Machine::new(MachineConfig::default());
        let a = machine.run_network(&net, &x, UvMode::On);
        let b = machine.run_network(&net, &x, UvMode::On);
        prop_assert_eq!(a.total_cycles(), b.total_cycles());
        prop_assert_eq!(a.total_events(), b.total_events());
    }

    /// The row-availability profile is structurally sound for any
    /// network/input: one entry per row, every completion inside the
    /// layer (`0 < t ≤ cycles`), the histogram covers exactly the rows,
    /// and the staged core reproduces the monolithic run bit for bit.
    #[test]
    fn row_availability_profile_is_sound(
        seed in 0u64..10_000,
        hidden in 8usize..96,
        sparsity in 0u8..100,
        uv_on in any::<bool>(),
    ) {
        let net = build_net(seed, hidden, 4);
        let x = net.quantize_input(&build_input(seed, 24, sparsity));
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, mode);
        for (l, layer) in run.layers.iter().enumerate() {
            prop_assert_eq!(layer.row_ready.len(), layer.output.len(), "layer {}", l);
            prop_assert!(
                layer.row_ready.iter().all(|&t| t > 0 && t <= layer.cycles),
                "layer {}: availability must fall inside the layer", l
            );
            prop_assert!(layer.first_ready() <= layer.last_ready());
            prop_assert_eq!(
                layer.events.row_ready_hist.iter().sum::<u64>(),
                layer.output.len() as u64,
                "layer {}: histogram covers every row", l
            );
            // Rows the W phase touched become final no earlier than the
            // VU phase handed over.
            prop_assert!(layer.row_ready.iter().all(|&t| t >= layer.vu_cycles));
        }
        // Staged execution is the same computation, stage by stage.
        let mut acts = x.clone();
        for (l, layer) in run.layers.iter().enumerate() {
            let is_hidden = l + 1 < net.num_layers();
            let predictor = if is_hidden { net.predictors().get(l) } else { None };
            let mut stages = machine
                .stage_layer(&net.layers()[l], predictor, &acts, is_hidden, mode)
                .unwrap();
            stages.run_vu();
            stages.run_w();
            let staged = stages.writeback();
            prop_assert_eq!(&staged.output, &layer.output, "layer {}", l);
            prop_assert_eq!(&staged.row_ready, &layer.row_ready, "layer {}", l);
            prop_assert_eq!(&staged.events, &layer.events, "layer {}", l);
            acts = staged.output;
        }
    }

    /// The batched core is bit-identical to serial execution for random
    /// networks, batch sizes and both UV modes: every per-sample layer
    /// (output, mask, cycles, events) equals its own serial run exactly,
    /// the batch event book is the per-sample sum with only the W phase
    /// amortized (never upward), and a batch of one degenerates to the
    /// serial run.
    #[test]
    fn batched_core_matches_serial_per_sample(
        seed in 0u64..10_000,
        hidden in 8usize..64,
        b in 1usize..=8,
        uv_on in any::<bool>(),
    ) {
        let net = build_net(seed, hidden, 3);
        let inputs: Vec<_> = (0..b)
            .map(|s| {
                let sparsity = (20 + s * 9) as u8 % 100;
                net.quantize_input(&build_input(seed ^ (s as u64) << 16, 24, sparsity))
            })
            .collect();
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let machine = Machine::new(MachineConfig::default());
        let batch = machine.try_run_network_batch(&net, &inputs, mode).unwrap();
        prop_assert_eq!(batch.batch_size(), b);
        for (s, x) in inputs.iter().enumerate() {
            let serial = machine.run_network(&net, x, mode);
            for (l, (batched, own)) in batch.layers.iter()
                .map(|layer| &layer.per_sample[s])
                .zip(&serial.layers)
                .enumerate()
            {
                prop_assert_eq!(&batched.output, &own.output, "sample {} layer {} output", s, l);
                prop_assert_eq!(&batched.mask, &own.mask, "sample {} layer {} mask", s, l);
                prop_assert_eq!(batched.cycles, own.cycles, "sample {} layer {} cycles", s, l);
                prop_assert_eq!(&batched.events, &own.events, "sample {} layer {} events", s, l);
            }
        }
        // The books reconcile: the batch book is the per-sample sums with
        // only the W phase amortized — every field except the clock totals
        // and W reads equals the sum, and amortization only ever removes
        // W work.
        let mut summed = sparsenn_sim::MachineEvents::default();
        for layer in &batch.layers {
            for run in &layer.per_sample {
                summed.merge(&run.events);
            }
        }
        let batch_ev = batch.total_events();
        prop_assert!(batch_ev.cycles <= summed.cycles);
        prop_assert!(batch_ev.w_cycles <= summed.w_cycles);
        prop_assert!(batch_ev.w_reads <= summed.w_reads);
        let mut expected = summed;
        expected.cycles = batch_ev.cycles;
        expected.w_cycles = batch_ev.w_cycles;
        expected.w_reads = batch_ev.w_reads;
        prop_assert_eq!(&batch_ev, &expected, "only the W book amortizes");
        let (serial_reads, amortized_reads) = batch.w_read_totals();
        prop_assert_eq!(summed.w_reads, serial_reads);
        prop_assert_eq!(batch_ev.w_reads, amortized_reads);
        prop_assert!(amortized_reads <= serial_reads);
        if b == 1 {
            prop_assert_eq!(serial_reads, amortized_reads, "a batch of one amortizes nothing");
            prop_assert_eq!(batch.total_cycles(), batch.serial_cycles());
        }
    }

    /// Predicted-inactive rows never touch the W memory: W reads in uv_on
    /// mode are exactly (nnz inputs) × (active rows)… summed per activation.
    #[test]
    fn w_reads_scale_with_active_rows(seed in 0u64..1_000) {
        let net = build_net(seed, 64, 4);
        let x = net.quantize_input(&build_input(seed, 24, 20));
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_layer(&net.layers()[0], net.predictors().first(), &x, true, UvMode::On);
        let nnz = x.iter().filter(|v| !v.is_zero()).count() as u64;
        let active = run.mask.as_ref().unwrap().iter().filter(|&&m| m).count() as u64;
        prop_assert_eq!(run.events.w_reads, nnz * active);
    }
}
