//! The processing-element micro-architecture (paper Fig. 5).
//!
//! Each PE owns:
//!
//! * a slice of the **source activation register file** holding the input
//!   activations `a_j` with `j ≡ pe (mod 64)` — scanned in index order by a
//!   leading-nonzero detector (LNZD) that feeds the network interface;
//! * the **activation queue** buffering broadcasts arriving from the
//!   H-tree;
//! * the rows `i ≡ pe (mod 64)` of `W` (and `U`), plus the columns
//!   `j ≡ pe (mod 64)` of `V`, in private SRAMs;
//! * the 1-bit **predictor register bank** with its own LNZD, which the W
//!   phase uses to touch only rows predicted active;
//! * a single-MAC datapath (one multiply-accumulate per cycle) writing to
//!   wide accumulators, and the **destination register file** receiving the
//!   quantized outputs at writeback.
//!
//! The [`Pe`] is a passive state machine: `sparsenn-sim`'s
//! [`Machine`](crate::Machine) advances it one cycle at a time and wires it
//! to the NoC models.

use sparsenn_model::fixedpoint::FixedMatrix;
use sparsenn_noc::ActFlit;
use sparsenn_numeric::{Accumulator, Q6_10};
use std::collections::VecDeque;

use crate::config::ScanMode;
use crate::events::MachineEvents;

/// What the datapath accomplished in one cycle (for utilization stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A MAC (or pop-and-scan) was executed.
    Busy,
    /// Nothing to do: queue empty / waiting on the network.
    Idle,
    /// Datapath blocked: a finished V partial sum is waiting for reduce-tree
    /// credit.
    Stalled,
}

/// One processing element.
#[derive(Clone, Debug)]
pub struct Pe {
    id: usize,
    queue_cap: usize,
    /// Local nonzero input activations `(global index, value)`, ascending.
    src: Vec<(u32, Q6_10)>,
    src_cursor: usize,
    queue: VecDeque<ActFlit>,
    /// Global row ids mapped to this PE (`id, id + 64, …`), ascending.
    rows: Vec<u32>,
    /// Wide W-phase accumulators, one per local row.
    acc_w: Vec<Accumulator>,
    /// W-phase cycle of the last MAC into each local row (0 = the row was
    /// never touched); feeds the per-row completion profile at writeback.
    last_w_mac: Vec<u64>,
    /// Wide U-phase accumulators, one per local row.
    acc_u: Vec<Accumulator>,
    /// Predictor register bank (`true` = row predicted active).
    pred: Vec<bool>,
    /// Host-side row-enumeration strategy (see [`ScanMode`]).
    scan: ScanMode,
    /// [`ScanMode::MaskWord`]: the predictor bank packed into mask words,
    /// rebuilt whenever the bank changes.
    pred_words: Vec<u64>,
    /// [`ScanMode::MaskWord`]: local indices of predicted-active rows,
    /// derived from `pred_words` by a trailing-zeros scan.
    active: Vec<u32>,
    /// [`ScanMode::PerElement`] only: MACs still owed for the activation
    /// being processed (local row ids).
    mac_list: VecDeque<usize>,
    /// [`ScanMode::MaskWord`]: cursor into the current MAC enumeration —
    /// `true` walks every local row, `false` walks `active`.
    mac_all: bool,
    /// [`ScanMode::MaskWord`]: next position of the enumeration.
    mac_pos: usize,
    /// [`ScanMode::MaskWord`]: MACs still owed for the current activation.
    mac_rem: usize,
    /// The activation being processed.
    cur: Option<ActFlit>,
    /// Whether the current `mac_list` targets the U accumulators.
    cur_is_u: bool,
    /// V phase: current predictor row (`v_rows` when done).
    v_row: usize,
    /// Total predictor rows.
    v_rows: usize,
    /// Position inside `src` for the current V row.
    v_idx: usize,
    /// Partial sum of the current V row.
    v_partial: Accumulator,
    /// A finished partial sum waiting for network credit.
    v_emit: Option<(u32, i64)>,
}

impl Pe {
    /// Builds a PE for one layer run.
    ///
    /// `input` is the full activation vector; the PE keeps the nonzero
    /// entries whose index is congruent to `id` mod `num_pes`. `rows` is
    /// the layer's output count, distributed the same way.
    pub fn new(
        id: usize,
        num_pes: usize,
        queue_cap: usize,
        input: &[Q6_10],
        out_rows: usize,
    ) -> Self {
        Self::with_scan(id, num_pes, queue_cap, input, out_rows, ScanMode::default())
    }

    /// [`new`](Self::new) with an explicit row-enumeration strategy.
    pub fn with_scan(
        id: usize,
        num_pes: usize,
        queue_cap: usize,
        input: &[Q6_10],
        out_rows: usize,
        scan: ScanMode,
    ) -> Self {
        let src: Vec<(u32, Q6_10)> = input
            .iter()
            .enumerate()
            .skip(id)
            .step_by(num_pes)
            .filter(|(_, v)| !v.is_zero())
            .map(|(j, &v)| (j as u32, v))
            .collect();
        let rows: Vec<u32> = (id..out_rows).step_by(num_pes).map(|i| i as u32).collect();
        let n_rows = rows.len();
        let mut pe = Self {
            id,
            queue_cap,
            src,
            src_cursor: 0,
            queue: VecDeque::new(),
            rows,
            acc_w: vec![Accumulator::new(); n_rows],
            last_w_mac: vec![0; n_rows],
            acc_u: vec![Accumulator::new(); n_rows],
            pred: vec![true; n_rows],
            scan,
            pred_words: Vec::new(),
            active: Vec::new(),
            mac_list: VecDeque::new(),
            mac_all: false,
            mac_pos: 0,
            mac_rem: 0,
            cur: None,
            cur_is_u: false,
            v_row: 0,
            v_rows: 0,
            v_idx: 0,
            v_partial: Accumulator::new(),
            v_emit: None,
        };
        pe.rebuild_active();
        pe
    }

    /// Packs the predictor bank into mask words and re-derives the
    /// active-row list by a trailing-zeros scan over them — the hot-loop
    /// index [`ScanMode::MaskWord`] consumes. Runs once per predictor
    /// change (latch / force / external mask), never per queue pop.
    fn rebuild_active(&mut self) {
        if self.scan == ScanMode::PerElement {
            return;
        }
        self.pred_words.clear();
        self.pred_words.resize(self.pred.len().div_ceil(64), 0);
        for (i, &p) in self.pred.iter().enumerate() {
            if p {
                self.pred_words[i / 64] |= 1u64 << (i % 64);
            }
        }
        self.active.clear();
        for (wi, &word) in self.pred_words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                self.active
                    .push((wi * 64 + bits.trailing_zeros() as usize) as u32);
                bits &= bits - 1;
            }
        }
    }

    /// MACs still owed for the activation being processed.
    fn has_pending_macs(&self) -> bool {
        match self.scan {
            ScanMode::PerElement => !self.mac_list.is_empty(),
            ScanMode::MaskWord => self.mac_rem > 0,
        }
    }

    /// PE index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// `true` if this PE holds at least one nonzero input activation
    /// (i.e. participates in the V reduction and the broadcast).
    pub fn participates(&self) -> bool {
        !self.src.is_empty()
    }

    /// Number of local nonzero inputs.
    pub fn src_len(&self) -> usize {
        self.src.len()
    }

    /// Local output rows.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Free slots in the activation queue.
    pub fn queue_free(&self) -> usize {
        self.queue_cap - self.queue.len()
    }

    /// The next source activation the network interface would inject.
    pub fn peek_src(&self) -> Option<ActFlit> {
        self.src
            .get(self.src_cursor)
            .map(|&(index, value)| ActFlit {
                index,
                value: value.raw(),
            })
    }

    /// Marks the current source activation as injected.
    pub fn advance_src(&mut self) {
        self.src_cursor += 1;
    }

    /// Rewinds the source LNZD (between phases).
    pub fn rewind_src(&mut self) {
        self.src_cursor = 0;
    }

    /// Accepts a broadcast flit into the activation queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — the machine's sink gating must prevent
    /// that, exactly like the credit-based broadcast in hardware.
    pub fn push_act(&mut self, flit: ActFlit, ev: &mut MachineEvents) {
        assert!(
            self.queue.len() < self.queue_cap,
            "activation queue overflow (PE {})",
            self.id
        );
        self.queue.push_back(flit);
        ev.queue_pushes += 1;
    }

    /// Prepares the V phase over `v_rows` predictor rows.
    pub fn begin_v(&mut self, v_rows: usize) {
        self.v_rows = v_rows;
        self.v_row = if self.src.is_empty() { v_rows } else { 0 };
        self.v_idx = 0;
        self.v_partial = Accumulator::new();
        self.v_emit = None;
    }

    /// A finished V partial sum waiting to enter the reduce tree, if any.
    pub fn pending_v_emit(&self) -> Option<(u32, i64)> {
        self.v_emit
    }

    /// Marks the pending partial as accepted by the network.
    pub fn clear_v_emit(&mut self) {
        self.v_emit = None;
    }

    /// `true` once every local V MAC has been executed and emitted.
    pub fn v_done(&self) -> bool {
        self.v_row >= self.v_rows && self.v_emit.is_none()
    }

    /// `true` when the datapath and queue are fully drained.
    pub fn drained(&self) -> bool {
        self.queue.is_empty() && !self.has_pending_macs()
    }

    /// Advances the datapath one cycle during the combined V/U phase:
    /// local V MACs first (partials stream into the reduce tree), then the
    /// queued V-phase results are consumed against the local U rows.
    pub fn step_vu(
        &mut self,
        v: &FixedMatrix,
        u: &FixedMatrix,
        ev: &mut MachineEvents,
    ) -> StepOutcome {
        // V phase: one MAC per cycle over (row, local nonzero) pairs.
        if self.v_row < self.v_rows {
            if self.v_emit.is_some() {
                // Output register still occupied: pipeline stall.
                return StepOutcome::Stalled;
            }
            let (col, val) = self.src[self.v_idx];
            self.v_partial.mac(v.get(self.v_row, col as usize), val);
            ev.macs += 1;
            ev.v_reads += 1;
            self.v_idx += 1;
            if self.v_idx == self.src.len() {
                self.v_emit = Some((self.v_row as u32, self.v_partial.raw()));
                self.v_partial = Accumulator::new();
                self.v_idx = 0;
                self.v_row += 1;
            }
            return StepOutcome::Busy;
        }
        // U phase: process queued V results against all local U rows.
        self.step_queue_consumer(ev, u, true, false, 0)
    }

    /// Advances the datapath one cycle during the W phase. `cycle` is the
    /// current W-phase cycle number; a MAC issued this cycle stamps its
    /// target row's completion time (reported by
    /// [`writeback`](Self::writeback)).
    ///
    /// `uv_on` selects output-sparsity skipping: the predictor bank's LNZD
    /// yields only the active rows, so bypassed rows cost neither a W-memory
    /// read nor a MAC.
    pub fn step_w(
        &mut self,
        w: &FixedMatrix,
        uv_on: bool,
        cycle: u64,
        ev: &mut MachineEvents,
    ) -> StepOutcome {
        self.step_queue_consumer(ev, w, false, uv_on, cycle)
    }

    /// Shared queue-pop / MAC-issue logic for the U and W phases.
    ///
    /// With `pred_filter` set, the predictor bank's LNZD selects only the
    /// rows whose bit is set (and the scan itself is counted).
    fn step_queue_consumer(
        &mut self,
        ev: &mut MachineEvents,
        matrix: &FixedMatrix,
        is_u: bool,
        pred_filter: bool,
        cycle: u64,
    ) -> StepOutcome {
        if !self.has_pending_macs() {
            let Some(flit) = self.queue.pop_front() else {
                return StepOutcome::Idle;
            };
            ev.queue_pops += 1;
            self.cur = Some(flit);
            self.cur_is_u = is_u;
            match self.scan {
                ScanMode::PerElement => {
                    let list: Vec<usize> = if pred_filter {
                        ev.pred_scans += 1;
                        (0..self.rows.len()).filter(|&i| self.pred[i]).collect()
                    } else {
                        (0..self.rows.len()).collect()
                    };
                    self.mac_list = list.into();
                }
                ScanMode::MaskWord => {
                    self.mac_pos = 0;
                    if pred_filter {
                        ev.pred_scans += 1;
                        self.mac_all = false;
                        self.mac_rem = self.active.len();
                    } else {
                        self.mac_all = true;
                        self.mac_rem = self.rows.len();
                    }
                }
            }
            if !self.has_pending_macs() {
                // Nothing mapped / predicted active for this activation:
                // the pop and LNZD scan consumed the cycle but the datapath
                // did no useful work — idle for utilization purposes.
                return StepOutcome::Idle;
            }
        }
        let local = match self.scan {
            ScanMode::PerElement => self.mac_list.pop_front().expect("nonempty checked"),
            ScanMode::MaskWord => {
                let i = if self.mac_all {
                    self.mac_pos
                } else {
                    self.active[self.mac_pos] as usize
                };
                self.mac_pos += 1;
                self.mac_rem -= 1;
                i
            }
        };
        let flit = self.cur.expect("current activation set");
        let weight = matrix.get(self.rows[local] as usize, flit.index as usize);
        let act = Q6_10::from_raw(flit.value);
        if is_u {
            self.acc_u[local].mac(weight, act);
            ev.u_reads += 1;
        } else {
            self.acc_w[local].mac(weight, act);
            self.last_w_mac[local] = cycle;
            ev.w_reads += 1;
        }
        ev.macs += 1;
        StepOutcome::Busy
    }

    /// Latches the predictor register bank from the U accumulators
    /// (`p_i = 1` iff the predicted pre-activation is positive).
    pub fn latch_predictor(&mut self, ev: &mut MachineEvents) {
        for (i, acc) in self.acc_u.iter().enumerate() {
            self.pred[i] = acc.is_positive();
        }
        ev.pred_writes += self.rows.len() as u64;
        self.rebuild_active();
    }

    /// Forces every predictor bit active (the `uv_off` / EIE mode and
    /// layers without a predictor).
    pub fn force_all_active(&mut self) {
        self.pred.iter_mut().for_each(|p| *p = true);
        self.rebuild_active();
    }

    /// Loads the predictor register bank from an externally computed
    /// per-output-row mask (`mask[row]` = row predicted active), indexed
    /// by global row id. The batched layer core uses this to drive one
    /// W pass with the *union* of a batch's per-sample predictor
    /// verdicts, so each W row is fetched once per batch.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is shorter than the layer's output row count.
    pub fn set_predictor(&mut self, mask: &[bool]) {
        for (i, &row) in self.rows.iter().enumerate() {
            self.pred[i] = mask[row as usize];
        }
        self.rebuild_active();
    }

    /// The predictor bank contents (for mask assembly).
    pub fn predictor_bits(&self) -> &[bool] {
        &self.pred
    }

    /// Quantizes the W accumulators into output activations
    /// `(global row, value, last W-MAC cycle)`, applying ReLU for hidden
    /// layers, and counts the destination register file writes.
    ///
    /// The third element is the W-phase cycle of the last MAC into the
    /// row — the moment its value became final (0 for rows that saw no
    /// W MAC: bypassed by the predictor, or an all-zero input). It is the
    /// raw material of the per-row availability profile
    /// ([`LayerRun::row_ready`](crate::LayerRun::row_ready)) that lets a
    /// downstream consumer (the wavefront multi-chip executor) start on
    /// rows before the whole layer drains.
    pub fn writeback(&self, is_hidden: bool, ev: &mut MachineEvents) -> Vec<(u32, Q6_10, u64)> {
        ev.dst_writes += self.rows.len() as u64;
        self.rows
            .iter()
            .zip(&self.acc_w)
            .zip(self.pred.iter().zip(&self.last_w_mac))
            .map(|((&row, acc), (&active, &last_mac))| {
                let val = if active {
                    let q: Q6_10 = acc.to_fixed();
                    if is_hidden {
                        q.relu()
                    } else {
                        q
                    }
                } else {
                    Q6_10::ZERO
                };
                (row, val, if active { last_mac } else { 0 })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: f32) -> Q6_10 {
        Q6_10::from_f32(v)
    }

    #[test]
    fn src_holds_local_nonzeros_in_order() {
        // Indices 2, 66 belong to PE 2 of 64; index 3 does not; zero dropped.
        let mut input = vec![Q6_10::ZERO; 128];
        input[2] = q(1.0);
        input[66] = q(2.0);
        input[3] = q(3.0);
        let pe = Pe::new(2, 64, 8, &input, 10);
        assert_eq!(pe.src_len(), 2);
        assert_eq!(pe.peek_src().unwrap().index, 2);
        assert!(pe.participates());
    }

    #[test]
    fn rows_are_strided_by_num_pes() {
        let pe = Pe::new(3, 64, 8, &[Q6_10::ZERO; 64], 200);
        assert_eq!(pe.rows(), &[3, 67, 131, 195]);
        let empty = Pe::new(63, 64, 8, &[Q6_10::ZERO; 64], 10);
        assert!(empty.rows().is_empty());
    }

    #[test]
    fn w_step_consumes_one_mac_per_cycle() {
        let w = FixedMatrix::from_float(&sparsenn_linalg::Matrix::from_fn(128, 4, |i, j| {
            (i + j) as f32 * 0.01
        }));
        let mut input = vec![Q6_10::ZERO; 4];
        input[0] = q(1.0);
        let mut pe = Pe::new(0, 64, 8, &input, 128); // rows 0 and 64
        let mut ev = MachineEvents::default();
        pe.push_act(
            ActFlit {
                index: 0,
                value: q(1.0).raw(),
            },
            &mut ev,
        );
        // Cycle 1: pop + first MAC; cycle 2: second MAC; cycle 3: idle.
        assert_eq!(pe.step_w(&w, false, 1, &mut ev), StepOutcome::Busy);
        assert_eq!(pe.step_w(&w, false, 2, &mut ev), StepOutcome::Busy);
        assert_eq!(pe.step_w(&w, false, 3, &mut ev), StepOutcome::Idle);
        assert_eq!(ev.macs, 2);
        assert_eq!(ev.w_reads, 2);
        assert!(pe.drained());
        // Each row's completion time is the cycle of its last MAC.
        let wb = pe.writeback(true, &mut ev);
        assert_eq!(wb[0].2, 1, "row 0 finished on cycle 1");
        assert_eq!(wb[1].2, 2, "row 64 finished on cycle 2");
    }

    #[test]
    fn predicted_inactive_rows_cost_nothing() {
        let w = FixedMatrix::from_float(&sparsenn_linalg::Matrix::from_fn(128, 4, |_, _| 1.0));
        let mut pe = Pe::new(0, 64, 8, &[q(1.0); 4], 128);
        // Force both local rows (0 and 64) inactive.
        pe.set_predictor(&[false; 128]);
        let mut ev = MachineEvents::default();
        pe.push_act(
            ActFlit {
                index: 0,
                value: q(1.0).raw(),
            },
            &mut ev,
        );
        // Pop + scan consume the cycle but do no datapath work.
        assert_eq!(pe.step_w(&w, true, 1, &mut ev), StepOutcome::Idle);
        assert_eq!(ev.macs, 0);
        assert_eq!(ev.w_reads, 0);
        assert_eq!(ev.pred_scans, 1);
        assert!(pe.drained());
        // Bypassed rows report no W-MAC completion cycle.
        assert!(pe.writeback(true, &mut ev).iter().all(|&(_, _, t)| t == 0));
    }

    #[test]
    fn v_phase_emits_one_partial_per_row() {
        let v = FixedMatrix::from_float(&sparsenn_linalg::Matrix::from_fn(3, 64, |t, j| {
            (t as f32 + 1.0) * 0.1 + j as f32 * 0.0
        }));
        let mut input = vec![Q6_10::ZERO; 64];
        input[5] = q(2.0); // PE 5's only nonzero
        let mut pe = Pe::new(5, 64, 8, &input, 64);
        pe.begin_v(3);
        let u = v.clone();
        let mut ev = MachineEvents::default();
        let mut emitted = Vec::new();
        for _ in 0..10 {
            if let Some(e) = pe.pending_v_emit() {
                emitted.push(e);
                pe.clear_v_emit();
            }
            pe.step_vu(&v, &u, &mut ev);
            if pe.v_done() && pe.pending_v_emit().is_none() && pe.drained() {
                if let Some(e) = pe.pending_v_emit() {
                    emitted.push(e);
                }
            }
        }
        if let Some(e) = pe.pending_v_emit() {
            emitted.push(e);
            pe.clear_v_emit();
        }
        assert_eq!(emitted.len(), 3);
        // Partial for row t must equal V[t, 5] · 2.0 at full precision.
        for (t, raw) in emitted {
            let expect = i64::from(v.get(t as usize, 5).wide_mul(q(2.0)));
            assert_eq!(raw, expect, "row {t}");
        }
        assert_eq!(ev.v_reads, 3);
    }

    #[test]
    fn stalls_when_emit_register_is_occupied() {
        let v = FixedMatrix::from_float(&sparsenn_linalg::Matrix::from_fn(2, 64, |_, _| 1.0));
        let mut input = vec![Q6_10::ZERO; 64];
        input[0] = q(1.0);
        let mut pe = Pe::new(0, 64, 8, &input, 64);
        pe.begin_v(2);
        let mut ev = MachineEvents::default();
        assert_eq!(pe.step_vu(&v, &v, &mut ev), StepOutcome::Busy); // row 0 done, emit set
        assert_eq!(pe.step_vu(&v, &v, &mut ev), StepOutcome::Stalled); // blocked
        pe.clear_v_emit();
        assert_eq!(pe.step_vu(&v, &v, &mut ev), StepOutcome::Busy); // row 1
    }

    #[test]
    fn latch_predictor_uses_sign_of_u_accumulators() {
        let mut pe = Pe::new(0, 64, 8, &[q(1.0); 4], 128);
        pe.acc_u[0].mac(q(1.0), q(1.0)); // positive
        pe.acc_u[1].mac(q(-1.0), q(1.0)); // negative
        let mut ev = MachineEvents::default();
        pe.latch_predictor(&mut ev);
        assert_eq!(pe.predictor_bits(), &[true, false]);
        assert_eq!(ev.pred_writes, 2);
    }

    #[test]
    fn set_predictor_installs_the_local_slice_of_a_global_mask() {
        // PE 1 of 64 over 200 rows owns rows 1, 65, 129, 193.
        let mut pe = Pe::new(1, 64, 8, &[q(1.0); 4], 200);
        let mut mask = vec![false; 200];
        mask[65] = true;
        mask[193] = true;
        pe.set_predictor(&mask);
        assert_eq!(pe.predictor_bits(), &[false, true, false, true]);
    }

    #[test]
    fn writeback_applies_relu_and_bypass() {
        let mut pe = Pe::new(0, 64, 8, &[q(1.0); 4], 128);
        pe.acc_w[0].mac(q(-2.0), q(1.0)); // negative pre-activation
        pe.acc_w[1].mac(q(3.0), q(1.0));
        let mut mask = vec![false; 128];
        mask[0] = true; // row 64 bypassed
        pe.set_predictor(&mask);
        let mut ev = MachineEvents::default();
        let out = pe.writeback(true, &mut ev);
        assert_eq!(out[0], (0, Q6_10::ZERO, 0)); // ReLU clamps
        assert_eq!(out[1], (64, Q6_10::ZERO, 0)); // bypassed
        let out_linear = pe.writeback(false, &mut ev);
        assert_eq!(out_linear[0].1, q(-2.0)); // no ReLU on classifier
    }

    #[test]
    fn scan_modes_step_identically() {
        // Same PE, same stimulus, both enumeration strategies: every cycle
        // outcome and every event counter must match exactly.
        let w = FixedMatrix::from_float(&sparsenn_linalg::Matrix::from_fn(256, 8, |i, j| {
            ((i * 8 + j) as f32 * 0.07).sin()
        }));
        for uv_on in [false, true] {
            let mut mask = vec![false; 256];
            for (i, m) in mask.iter_mut().enumerate() {
                *m = i % 3 != 0;
            }
            let mut runs = Vec::new();
            for scan in [ScanMode::MaskWord, ScanMode::PerElement] {
                let mut pe = Pe::with_scan(0, 64, 8, &[q(1.0); 8], 256, scan);
                pe.set_predictor(&mask);
                let mut ev = MachineEvents::default();
                for idx in 0..3u32 {
                    pe.push_act(
                        ActFlit {
                            index: idx,
                            value: q(0.5).raw(),
                        },
                        &mut ev,
                    );
                }
                let mut outcomes = Vec::new();
                for cycle in 1..40 {
                    outcomes.push(pe.step_w(&w, uv_on, cycle, &mut ev));
                }
                assert!(pe.drained());
                runs.push((outcomes, ev, pe.writeback(true, &mut ev)));
            }
            assert_eq!(runs[0].0, runs[1].0, "cycle outcomes (uv_on={uv_on})");
            assert_eq!(runs[0].1, runs[1].1, "events (uv_on={uv_on})");
            assert_eq!(runs[0].2, runs[1].2, "writeback (uv_on={uv_on})");
        }
    }

    #[test]
    #[should_panic(expected = "activation queue overflow")]
    fn queue_overflow_panics() {
        let mut pe = Pe::new(0, 64, 2, &[q(1.0); 4], 4);
        let mut ev = MachineEvents::default();
        for i in 0..3 {
            pe.push_act(ActFlit { index: i, value: 1 }, &mut ev);
        }
    }
}
