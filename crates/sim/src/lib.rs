//! Cycle-level simulator of the 64-PE **SparseNN** accelerator.
//!
//! This crate is the reproduction's stand-in for the paper's Verilog RTL:
//! a deterministic, cycle-by-cycle model of
//!
//! * the [`Pe`](pe::Pe) micro-architecture (paper Fig. 5): activation queue,
//!   leading-nonzero detectors over the source register file and the 1-bit
//!   predictor register bank, W/U/V memories, the MAC datapath and the
//!   ping-pong activation register files;
//! * the three-phase computation schedule (paper §V.D): **V phase**
//!   (column-interleaved partial sums reduced through the H-tree's ACC
//!   routers), **U phase** (row-interleaved consumption of the broadcast
//!   V results into the predictor bank) and **W phase** (row-interleaved
//!   feedforward with *both* input-sparsity skipping — only nonzero
//!   activations are broadcast — and output-sparsity skipping — only rows
//!   whose predictor bit is set touch the W memory);
//! * the EIE baseline: [`UvMode::Off`](sparsenn_model::fixedpoint::UvMode::Off)
//!   skips the V/U phases and computes
//!   every row, which is exactly the paper's "SparseNN with the UV
//!   predictor disabled is the conventional EIE architecture";
//! * analytic models of the SIMD platforms of Table IV ([`simd`]).
//!
//! Outputs are **bit-exact** against the golden fixed-point model of
//! `sparsenn-model` — the integration tests assert equality on random
//! networks — and every simulation returns the [`events::MachineEvents`]
//! activity counters the energy model consumes.
//!
//! # Example
//!
//! ```
//! use sparsenn_sim::{Machine, MachineConfig};
//! use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
//! use sparsenn_model::Mlp;
//! use sparsenn_linalg::init::seeded_rng;
//!
//! let mlp = Mlp::random(&[32, 64, 10], &mut seeded_rng(7));
//! let net = FixedNetwork::from_mlp(&mlp);
//! let machine = Machine::new(MachineConfig::default());
//! let x = net.quantize_input(&vec![0.25f32; 32]);
//! let run = machine.run_network(&net, &x, UvMode::Off);
//! assert_eq!(run.layers.len(), 2);
//! assert!(run.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod events;
mod machine;
pub mod pe;
pub mod simd;

pub use config::{LayerFitError, MachineConfig, ScanMode};
pub use events::MachineEvents;
pub use machine::{
    BatchLayerRun, BatchNetworkRun, BatchTiming, LayerRun, LayerStages, Machine, MachineError,
    NetworkRun, Phase,
};
