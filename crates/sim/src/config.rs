//! Machine configuration (the paper's Table II).

use sparsenn_noc::NocConfig;

/// Why an `rows × cols` layer cannot run on a machine — the typed result
/// of [`MachineConfig::validate_layer`]. The W-memory case carries the
/// exact sizes so capacity planners (the multi-chip partitioner) can
/// report how far over budget a layer is instead of parsing a string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerFitError {
    /// The layer's input width exceeds the activation register files.
    TooManyInputs {
        /// Input activations the layer needs.
        cols: usize,
        /// Register-file entries available ([`MachineConfig::max_activations`]).
        max: usize,
    },
    /// The layer's output width exceeds the activation register files.
    TooManyOutputs {
        /// Output activations the layer produces.
        rows: usize,
        /// Register-file entries available ([`MachineConfig::max_activations`]).
        max: usize,
    },
    /// The layer's weights exceed the per-PE W memory.
    WMemoryOverflow {
        /// Weight words the layer needs per PE.
        words: usize,
        /// Words the W memory holds per PE
        /// ([`MachineConfig::w_capacity_words_per_pe`]).
        capacity: usize,
    },
}

impl std::fmt::Display for LayerFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerFitError::TooManyInputs { cols, max } => {
                write!(
                    f,
                    "{cols} input activations exceed the {max}-entry register files"
                )
            }
            LayerFitError::TooManyOutputs { rows, max } => {
                write!(
                    f,
                    "{rows} output activations exceed the {max}-entry register files"
                )
            }
            LayerFitError::WMemoryOverflow { words, capacity } => {
                write!(
                    f,
                    "layer needs {words} weight words per PE, W memory holds {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for LayerFitError {}

/// How a PE's queue consumer enumerates the rows owed MACs for a popped
/// activation. This is a **host-side simulation strategy**, not a hardware
/// parameter: both modes simulate the same machine, cycle for cycle and
/// bit for bit (property-tested); they differ only in how fast the
/// simulator itself runs. Checkpoints do not record it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ScanMode {
    /// Iterate a precomputed active-row list, rebuilt from the predictor
    /// bank's mask words (trailing-zeros scan) whenever the bank changes —
    /// no per-pop allocation, no per-pop scan over every local row.
    #[default]
    MaskWord,
    /// The original per-element scan: on every queue pop, filter each
    /// local row's predictor bit and materialize a fresh MAC list. Kept as
    /// the reference the measured sim speedup is reported against.
    PerElement,
}

/// Micro-architectural parameters of the simulated accelerator.
///
/// The defaults are the paper's Table II machine:
///
/// | parameter | value |
/// |---|---|
/// | Quantization | 16-bit fixed point |
/// | On-chip W/U/V memory per PE | 128 KB / 8 KB / 8 KB |
/// | Activation registers per PE | 64 |
/// | NoC flow control | packet buffer with credit |
/// | PEs | 64, 3-level H-tree |
/// | Clock | 2 ns (500 MHz) |
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Network topology and flow control.
    pub noc: NocConfig,
    /// Depth of each PE's activation queue, in entries.
    pub act_queue_depth: usize,
    /// W memory per PE, bytes.
    pub w_mem_bytes: usize,
    /// U memory per PE, bytes.
    pub u_mem_bytes: usize,
    /// V memory per PE, bytes.
    pub v_mem_bytes: usize,
    /// Activation registers per PE (each of the two ping-pong files).
    pub act_regs_per_pe: usize,
    /// PE datapath pipeline depth (memory address, memory access,
    /// multiply, add, write back — paper §V.D).
    pub pe_pipeline_depth: u64,
    /// Clock period in nanoseconds (2 ns: the 128 KB SRAM access alone is
    /// more than 1.7 ns).
    pub clock_ns: f64,
    /// Host-side row-enumeration strategy for the PE hot loop (see
    /// [`ScanMode`]). Never affects results, cycles, or events — only how
    /// fast the simulation itself runs — and is not serialized in
    /// checkpoints.
    pub scan: ScanMode,
}

impl MachineConfig {
    /// Number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.noc.num_pes
    }

    /// Maximum supported activations per layer
    /// (`act_regs_per_pe × num_pes`, 4 K for the default machine).
    pub fn max_activations(&self) -> usize {
        self.act_regs_per_pe * self.num_pes()
    }

    /// Peak throughput in GOP/s: each PE performs one multiply and one add
    /// per cycle (64 GOP/s for the default machine — Table IV).
    pub fn peak_gops(&self) -> f64 {
        self.num_pes() as f64 * 2.0 / self.clock_ns
    }

    /// The clock model: wall-clock time for a cycle count, microseconds
    /// (2 ns × cycles for the default machine). This is the latency number
    /// Table IV compares against the SIMD platforms' own clock models.
    pub fn time_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_ns * 1e-3
    }

    /// Total on-chip W memory (8 MB for the default machine).
    pub fn total_w_mem_bytes(&self) -> usize {
        self.w_mem_bytes * self.num_pes()
    }

    /// Largest weight-matrix shape `(rows, cols)` that fits the per-PE W
    /// memory with 16-bit weights.
    pub fn w_capacity_words_per_pe(&self) -> usize {
        self.w_mem_bytes / 2
    }

    /// Checks that an `rows × cols` layer fits this machine.
    ///
    /// # Errors
    ///
    /// The violated limit as a typed [`LayerFitError`] (the W-memory case
    /// carries the exact word counts).
    pub fn validate_layer(&self, rows: usize, cols: usize) -> Result<(), LayerFitError> {
        let n = self.num_pes();
        if cols > self.max_activations() {
            return Err(LayerFitError::TooManyInputs {
                cols,
                max: self.max_activations(),
            });
        }
        if rows > self.max_activations() {
            return Err(LayerFitError::TooManyOutputs {
                rows,
                max: self.max_activations(),
            });
        }
        let rows_per_pe = rows.div_ceil(n);
        let words = rows_per_pe * cols;
        if words > self.w_capacity_words_per_pe() {
            return Err(LayerFitError::WMemoryOverflow {
                words,
                capacity: self.w_capacity_words_per_pe(),
            });
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            noc: NocConfig::default(),
            act_queue_depth: 16,
            w_mem_bytes: 128 * 1024,
            u_mem_bytes: 8 * 1024,
            v_mem_bytes: 8 * 1024,
            act_regs_per_pe: 64,
            pe_pipeline_depth: 5,
            clock_ns: 2.0,
            scan: ScanMode::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = MachineConfig::default();
        assert_eq!(c.num_pes(), 64);
        assert_eq!(c.w_mem_bytes, 128 * 1024);
        assert_eq!(c.u_mem_bytes, 8 * 1024);
        assert_eq!(c.v_mem_bytes, 8 * 1024);
        assert_eq!(c.act_regs_per_pe, 64);
        assert_eq!(c.total_w_mem_bytes(), 8 * 1024 * 1024); // 8 MB
        assert_eq!(c.max_activations(), 4096); // 4 K
        assert_eq!(c.peak_gops(), 64.0); // Table IV
    }

    #[test]
    fn clock_model_converts_cycles_to_microseconds() {
        let c = MachineConfig::default(); // 2 ns clock
        assert_eq!(c.time_us(0), 0.0);
        assert!((c.time_us(500) - 1.0).abs() < 1e-12);
        let fast = MachineConfig {
            clock_ns: 1.0,
            ..MachineConfig::default()
        };
        assert!((fast.time_us(500) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_layers_fit() {
        let c = MachineConfig::default();
        assert!(c.validate_layer(1000, 784).is_ok());
        assert!(c.validate_layer(1000, 1000).is_ok());
        assert!(c.validate_layer(10, 1000).is_ok());
    }

    #[test]
    fn oversized_layers_are_rejected() {
        let c = MachineConfig::default();
        assert_eq!(
            c.validate_layer(5000, 1000),
            Err(LayerFitError::TooManyOutputs {
                rows: 5000,
                max: 4096
            })
        );
        assert_eq!(
            c.validate_layer(1000, 5000),
            Err(LayerFitError::TooManyInputs {
                cols: 5000,
                max: 4096
            })
        );
        // 4K×4K needs 64 rows/PE × 4096 cols = 256K words against 64K.
        assert_eq!(
            c.validate_layer(4096, 4096),
            Err(LayerFitError::WMemoryOverflow {
                words: 64 * 4096,
                capacity: 64 * 1024
            })
        );
    }

    #[test]
    fn w_overflow_error_carries_the_exact_sizes() {
        let tiny = MachineConfig {
            w_mem_bytes: 1024,
            ..MachineConfig::default()
        };
        // 512 words per PE; 64 rows over 64 PEs = 1 row/PE × 784 cols.
        match tiny.validate_layer(64, 784) {
            Err(LayerFitError::WMemoryOverflow { words, capacity }) => {
                assert_eq!(words, 784);
                assert_eq!(capacity, 512);
            }
            other => panic!("expected WMemoryOverflow, got {other:?}"),
        }
        let msg = tiny.validate_layer(64, 784).unwrap_err().to_string();
        assert!(msg.contains("784") && msg.contains("512"), "{msg}");
    }
}
