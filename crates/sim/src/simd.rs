//! Analytic models of the SIMD comparison platforms (paper Table IV).
//!
//! The paper compares SparseNN against two published SIMD accelerators:
//!
//! * **LRADNN** (ASP-DAC 2016): SIMD-32, 65 nm, 3.5 MB unified weight
//!   memory, low-rank output-sparsity predictor, 7.08 GOP/s peak — the
//!   unified memory must feed 32 operands per cycle, capping the clock;
//! * **DNN-Engine** (ISSCC 2017): SIMD-8, 28 nm, 1 MB, input-sparsity
//!   skipping at 1.2 GHz — high clock, low parallelism.
//!
//! Neither is cycle-simulated here (their RTL is not public); following the
//! paper's own methodology, their cycle counts come from the analytic
//! `work / SIMD width` expression and their energy from
//! `published power × modelled time`. The paper's example — DNN-Engine
//! takes `785·1000/8` cycles on BG-RAND's first layer and spends ≈ 5.1 µJ —
//! is reproduced by these models and checked by a unit test.

/// An analytically-modelled SIMD accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimdPlatform {
    /// Display name.
    pub name: &'static str,
    /// MACs per cycle.
    pub simd_width: usize,
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Technology node, nm.
    pub tech_nm: u32,
    /// On-chip weight memory, bytes.
    pub w_mem_bytes: usize,
    /// Published power range, mW.
    pub power_mw: (f64, f64),
    /// Published die area, mm².
    pub area_mm2: f64,
    /// `true` if the platform skips zero *input* activations.
    pub skips_input_zeros: bool,
    /// `Some(r)`: the platform bypasses predicted-zero *outputs* using a
    /// rank-`r` low-rank predictor.
    pub output_predictor_rank: Option<usize>,
}

impl SimdPlatform {
    /// The LRADNN platform of Table IV (rank parameterizes its predictor).
    pub fn lradnn(rank: usize) -> Self {
        Self {
            name: "LRADNN",
            simd_width: 32,
            // Published peak is 7.08 GOPs = 32 lanes × 2 ops × f.
            freq_ghz: 7.08 / 64.0,
            tech_nm: 65,
            w_mem_bytes: 3_500_000,
            power_mw: (439.0, 487.0),
            area_mm2: 51.0,
            skips_input_zeros: false,
            output_predictor_rank: Some(rank),
        }
    }

    /// The DNN-Engine platform of Table IV.
    pub fn dnn_engine() -> Self {
        Self {
            name: "DNN-Engine",
            simd_width: 8,
            freq_ghz: 1.2,
            tech_nm: 28,
            w_mem_bytes: 1_000_000,
            power_mw: (63.5, 63.5),
            area_mm2: 5.76,
            skips_input_zeros: true,
            output_predictor_rank: None,
        }
    }

    /// Peak throughput, GOP/s (1 MAC = 2 ops).
    pub fn peak_gops(&self) -> f64 {
        self.simd_width as f64 * 2.0 * self.freq_ghz
    }

    /// Modelled cycles for an `m × n` layer.
    ///
    /// * `nnz_in` — nonzero input activations (exploited only when
    ///   [`skips_input_zeros`](Self::skips_input_zeros));
    /// * `active_out` — outputs the platform actually computes (for
    ///   platforms with an output predictor; others compute all `m`).
    pub fn layer_cycles(&self, m: usize, n: usize, nnz_in: usize, active_out: usize) -> u64 {
        let n_eff = if self.skips_input_zeros { nnz_in } else { n };
        let (m_eff, predictor_work) = match self.output_predictor_rank {
            Some(r) => (active_out, r * (m + n)),
            None => (m, 0),
        };
        ((predictor_work + m_eff * n_eff) as u64).div_ceil(self.simd_width as u64)
    }

    /// Modelled execution time for a cycle count, microseconds.
    pub fn time_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e3)
    }

    /// Modelled energy for a cycle count, microjoules, using the midpoint
    /// of the published power range (the paper's own methodology for the
    /// 4× energy-efficiency comparison).
    pub fn energy_uj(&self, cycles: u64) -> f64 {
        let power_mw = (self.power_mw.0 + self.power_mw.1) / 2.0;
        power_mw * 1e-3 * self.time_us(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_performance_matches_table_iv() {
        assert!((SimdPlatform::lradnn(15).peak_gops() - 7.08).abs() < 1e-9);
        assert!((SimdPlatform::dnn_engine().peak_gops() - 19.2).abs() < 1e-9);
    }

    #[test]
    fn dnn_engine_reproduces_papers_bg_rand_example() {
        // "DNN-Engine takes 785×1000/8 cycles to finish the 1st hidden
        // layer computation of the dataset BG-RAND … approximately 5.1 µJ".
        let e = SimdPlatform::dnn_engine();
        let cycles = e.layer_cycles(1000, 785, 785, 1000);
        assert_eq!(cycles, 785 * 1000 / 8);
        let energy = e.energy_uj(cycles);
        assert!(
            (energy - 5.1).abs() < 0.3,
            "modelled {energy} µJ, paper says ≈ 5.1 µJ"
        );
    }

    #[test]
    fn input_skipping_helps_only_dnn_engine() {
        let lradnn = SimdPlatform::lradnn(15);
        let engine = SimdPlatform::dnn_engine();
        let dense = engine.layer_cycles(1000, 1000, 1000, 1000);
        let sparse = engine.layer_cycles(1000, 1000, 300, 1000);
        assert!(sparse < dense);
        let l_dense = lradnn.layer_cycles(1000, 1000, 1000, 1000);
        let l_sparse = lradnn.layer_cycles(1000, 1000, 300, 1000);
        assert_eq!(l_dense, l_sparse, "LRADNN ignores input sparsity");
    }

    #[test]
    fn output_predictor_helps_only_lradnn() {
        let lradnn = SimdPlatform::lradnn(15);
        let all = lradnn.layer_cycles(1000, 1000, 1000, 1000);
        let third = lradnn.layer_cycles(1000, 1000, 1000, 333);
        assert!(third < all);
        // But it always pays the r(m+n) prediction overhead.
        let zero_out = lradnn.layer_cycles(1000, 1000, 1000, 0);
        assert_eq!(zero_out, (15u64 * 2000).div_ceil(32));
    }

    #[test]
    fn time_and_energy_scale_linearly() {
        let e = SimdPlatform::dnn_engine();
        assert!((e.time_us(2_400_000) - 2000.0).abs() < 1e-6);
        assert!((e.energy_uj(1200) * 2.0 - e.energy_uj(2400)).abs() < 1e-9);
    }
}
