//! Activity counters — the simulator's equivalent of post-synthesis toggle
//! rates.
//!
//! Every counter is a raw event count over one simulation; the energy model
//! in `sparsenn-energy` turns them into joules and watts. Nothing here is
//! time-normalized, so counters from several layers can simply be added.

use sparsenn_noc::NocStats;

/// Event counters for one layer (or network) simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineEvents {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles spent in the predictor phases (V reduction + U consumption).
    pub vu_cycles: u64,
    /// Cycles spent in the W feedforward phase.
    pub w_cycles: u64,
    /// 16-bit words read from the per-PE W memories.
    pub w_reads: u64,
    /// 16-bit words read from the per-PE U memories.
    pub u_reads: u64,
    /// 16-bit words read from the per-PE V memories.
    pub v_reads: u64,
    /// Multiply-accumulate operations executed by PE datapaths.
    pub macs: u64,
    /// Source activation register file reads (LNZD scans feeding the NoC).
    pub src_reads: u64,
    /// Destination register file writebacks (one per produced activation).
    pub dst_writes: u64,
    /// Activation-queue pushes (one per PE per delivered broadcast).
    pub queue_pushes: u64,
    /// Activation-queue pops.
    pub queue_pops: u64,
    /// Predictor register bank writes (one per output row, U phase).
    pub pred_writes: u64,
    /// Predictor register bank LNZD scans (one per activation processed in
    /// a predicted W phase).
    pub pred_scans: u64,
    /// PE-cycles doing useful datapath work.
    pub pe_busy_cycles: u64,
    /// PE-cycles idle (queue empty / waiting on the network).
    pub pe_idle_cycles: u64,
    /// Combined NoC activity (broadcast tree + reduce tree).
    pub noc: NocStats,
    /// Flit-hops on the chip-level interconnect of a multi-chip
    /// (model-parallel) run: one flit traversing one chip-to-chip link.
    /// Always 0 for a single-chip simulation; priced far above an on-chip
    /// router hop by the energy model (off-chip SerDes).
    pub interchip_flit_hops: u64,
    /// Row-availability profile: a histogram of output rows by *when*
    /// their value became final, in eighths of the producing layer's
    /// total cycle count (`row_ready_hist[0]` counts rows ready within
    /// the first eighth, …, `[7]` the last). Rows finishing early are
    /// what wavefront pipelining overlaps with inter-chip transfers;
    /// a mass concentrated in low buckets means most of a layer's output
    /// can be in flight long before the layer drains. Merging sums
    /// counts, so a network (or multi-chip) total reads as "how many
    /// rows, across all layers, were ready in each relative eighth".
    pub row_ready_hist: [u64; 8],
}

impl MachineEvents {
    /// Element-wise accumulation (peaks take the max via [`NocStats::merge`]).
    pub fn merge(&mut self, other: &MachineEvents) {
        self.cycles += other.cycles;
        self.vu_cycles += other.vu_cycles;
        self.w_cycles += other.w_cycles;
        self.w_reads += other.w_reads;
        self.u_reads += other.u_reads;
        self.v_reads += other.v_reads;
        self.macs += other.macs;
        self.src_reads += other.src_reads;
        self.dst_writes += other.dst_writes;
        self.queue_pushes += other.queue_pushes;
        self.queue_pops += other.queue_pops;
        self.pred_writes += other.pred_writes;
        self.pred_scans += other.pred_scans;
        self.pe_busy_cycles += other.pe_busy_cycles;
        self.pe_idle_cycles += other.pe_idle_cycles;
        self.noc.merge(&other.noc);
        self.interchip_flit_hops += other.interchip_flit_hops;
        for (h, o) in self.row_ready_hist.iter_mut().zip(&other.row_ready_hist) {
            *h += o;
        }
    }

    /// Mean PE datapath utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.pe_busy_cycles + self.pe_idle_cycles;
        if total == 0 {
            return 0.0;
        }
        self.pe_busy_cycles as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = MachineEvents {
            cycles: 10,
            macs: 100,
            ..MachineEvents::default()
        };
        let b = MachineEvents {
            cycles: 5,
            macs: 50,
            ..MachineEvents::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.macs, 150);
    }

    #[test]
    fn merge_adds_availability_histograms() {
        let mut a = MachineEvents {
            row_ready_hist: [1, 0, 0, 0, 0, 0, 0, 2],
            ..MachineEvents::default()
        };
        let b = MachineEvents {
            row_ready_hist: [0, 3, 0, 0, 0, 0, 0, 1],
            ..MachineEvents::default()
        };
        a.merge(&b);
        assert_eq!(a.row_ready_hist, [1, 3, 0, 0, 0, 0, 0, 3]);
    }

    #[test]
    fn utilization_bounds() {
        let e = MachineEvents {
            pe_busy_cycles: 3,
            pe_idle_cycles: 1,
            ..MachineEvents::default()
        };
        assert!((e.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(MachineEvents::default().utilization(), 0.0);
    }
}
