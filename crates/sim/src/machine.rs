//! The whole-machine simulator: 64 PEs + H-tree, phase sequencing.

use crate::config::MachineConfig;
use crate::events::MachineEvents;
use crate::pe::{Pe, StepOutcome};
use sparsenn_model::fixedpoint::{FixedMatrix, FixedNetwork, FixedPredictor, UvMode};
use sparsenn_noc::{ActFlit, BroadcastTree, ReduceTree};
use sparsenn_numeric::{Accumulator, Q6_10};
use std::collections::VecDeque;

/// Why a simulation request could not run (the fallible counterpart of the
/// panics documented on [`Machine::run_layer`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The layer's shape exceeds a machine limit
    /// ([`MachineConfig::validate_layer`]).
    LayerDoesNotFit {
        /// Index of the offending layer within the network (0 for a
        /// stand-alone layer run).
        layer: usize,
        /// Human-readable description of the violated limit.
        reason: String,
    },
    /// The layer's weights exceed the per-PE W memory — the typed variant
    /// of the capacity rejection, carrying the exact sizes so planners
    /// (the multi-chip partitioner) can reason about the overflow.
    WMemoryOverflow {
        /// Index of the offending layer within the network (0 for a
        /// stand-alone layer run).
        layer: usize,
        /// Weight words the layer needs per PE.
        words: usize,
        /// Words the W memory holds per PE.
        capacity: usize,
    },
    /// The activation vector's width does not match the layer's columns.
    InputWidthMismatch {
        /// Columns the layer expects.
        expected: usize,
        /// Activations supplied.
        got: usize,
    },
    /// The network has no layers.
    EmptyNetwork,
    /// A batched run was asked to execute zero samples.
    EmptyBatch,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::LayerDoesNotFit { layer, reason } => {
                write!(f, "layer {layer} does not fit the machine: {reason}")
            }
            MachineError::WMemoryOverflow {
                layer,
                words,
                capacity,
            } => {
                write!(
                    f,
                    "layer {layer} overflows W memory: needs {words} weight words per PE, \
                     memory holds {capacity}"
                )
            }
            MachineError::InputWidthMismatch { expected, got } => {
                write!(
                    f,
                    "input width mismatch: layer expects {expected} activations, got {got}"
                )
            }
            MachineError::EmptyNetwork => f.write_str("network has no layers"),
            MachineError::EmptyBatch => f.write_str("batch has no samples"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Which phase a cycle belonged to (reporting granularity of Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Predictor phases: V reduction and U consumption (overlapped).
    Vu,
    /// Feedforward W phase.
    W,
}

/// Result of simulating one layer.
#[derive(Clone, Debug)]
pub struct LayerRun {
    /// The produced output activations (bit-exact vs. the golden model).
    pub output: Vec<Q6_10>,
    /// Predictor mask (`true` = computed), when the predictor ran.
    pub mask: Option<Vec<bool>>,
    /// Total cycles for the layer (`vu_cycles + w_cycles`).
    pub cycles: u64,
    /// Cycles in the V/U predictor phases (0 in `uv_off` mode).
    pub vu_cycles: u64,
    /// Cycles in the W feedforward phase.
    pub w_cycles: u64,
    /// Activity counters for the energy model.
    pub events: MachineEvents,
    /// Busy datapath cycles per PE — the per-PE work distribution. The
    /// paper points out that "the number of nonzero output activations
    /// predicted by the sparsity predictor also varies from PE to PE";
    /// this vector quantifies it.
    pub pe_busy: Vec<u64>,
    /// The row-availability profile: for each output row, the cycle
    /// (counted from the start of the layer) at which its value became
    /// final — the row's last W-phase MAC plus the PE pipeline depth,
    /// offset past the VU phase. Rows the W phase never touched
    /// (predictor-bypassed, or an all-zero input) are final as soon as
    /// the predictor verdict clears the pipeline. Always bounded by
    /// [`cycles`](Self::cycles); the gap between a row's readiness and
    /// the layer total is drain time a downstream consumer need not wait
    /// for — the slack wavefront pipelining converts into comm/compute
    /// overlap.
    pub row_ready: Vec<u64>,
}

impl LayerRun {
    /// Cycle the earliest output row was final (0 for a zero-row layer).
    pub fn first_ready(&self) -> u64 {
        self.row_ready.iter().copied().min().unwrap_or(0)
    }

    /// Cycle the last output row was final — the earliest moment the
    /// *whole* output could leave the chip (≤ [`cycles`](Self::cycles)).
    pub fn last_ready(&self) -> u64 {
        self.row_ready.iter().copied().max().unwrap_or(0)
    }
    /// Work imbalance: busiest PE's cycles over the mean. 1.0 = perfectly
    /// balanced; the whole layer's duration is paced by the max, so this is
    /// the factor by which imbalance stretches the W phase (and where the
    /// idle-cycle power savings of `uv_on` come from).
    pub fn work_imbalance(&self) -> f64 {
        let max = self.pe_busy.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.pe_busy.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.pe_busy.len() as f64 / sum as f64
    }
}

/// Result of simulating a whole network.
#[derive(Clone, Debug)]
pub struct NetworkRun {
    /// Per-layer results, input side first.
    pub layers: Vec<LayerRun>,
}

impl NetworkRun {
    /// Output activations of the final layer.
    pub fn output(&self) -> &[Q6_10] {
        &self.layers.last().expect("at least one layer").output
    }

    /// Argmax classification of the final layer.
    pub fn classify(&self) -> usize {
        sparsenn_numeric::argmax(self.output())
    }

    /// Sum of per-layer cycle counts.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Merged activity counters.
    pub fn total_events(&self) -> MachineEvents {
        let mut ev = MachineEvents::default();
        for l in &self.layers {
            ev.merge(&l.events);
        }
        ev
    }
}

/// Batch-amortized timing of one layer pass over B samples.
///
/// The batched core keeps **two books**. The exact book is the per-sample
/// [`LayerRun`]s (bit-identical to serial runs by construction — they *are*
/// serial runs). This struct is the amortized book: what the layer pass
/// costs when the machine keeps each W row resident while B lanes consume
/// it, so every W-memory word is fetched once per *batch* instead of once
/// per *sample*. Predictor (V/U) work stays per-sample — each sample's
/// verdict is its own — but the W phase runs once over the **union** of
/// the batch's nonzero-input pattern and predicted-active rows.
#[derive(Clone, Debug)]
pub struct BatchTiming {
    /// Samples in the batch.
    pub batch_size: usize,
    /// Batch clock: `vu_cycles + w_cycles`.
    pub cycles: u64,
    /// Summed per-sample predictor cycles (the V/U phases do not amortize).
    pub vu_cycles: u64,
    /// W-phase cycles of the single union pass (or the serial sum when
    /// amortization would lose — see [`amortized`](Self::amortized)).
    pub w_cycles: u64,
    /// The batch's activity book for the energy model: per-sample counters
    /// summed exactly, with `w_reads` (and the cycle totals) replaced by
    /// the amortized values.
    pub events: MachineEvents,
    /// W-memory reads the B serial runs would have made.
    pub w_reads_serial: u64,
    /// W-memory reads the batch actually makes (≤ serial).
    pub w_reads_amortized: u64,
    /// Whether the union pass won. When the samples' sparsity patterns are
    /// so disjoint that one union pass costs more than B serial passes,
    /// the machine simply does not batch the layer and this is `false`
    /// (serial accounting) — batch timing is never worse than serial.
    pub amortized: bool,
}

impl BatchTiming {
    /// W-read amortization factor: serial reads over batch reads (≥ 1).
    pub fn w_read_amortization(&self) -> f64 {
        if self.w_reads_amortized == 0 {
            return 1.0;
        }
        self.w_reads_serial as f64 / self.w_reads_amortized as f64
    }
}

/// One layer of a batched network run: the exact per-sample results plus
/// the amortized batch timing.
#[derive(Clone, Debug)]
pub struct BatchLayerRun {
    /// Exact per-sample results, bit-identical to serial execution.
    pub per_sample: Vec<LayerRun>,
    /// The amortized clock/energy book for the whole batch.
    pub batch: BatchTiming,
}

/// Result of simulating a whole network over a batch of inputs.
#[derive(Clone, Debug)]
pub struct BatchNetworkRun {
    /// Per-layer results, input side first.
    pub layers: Vec<BatchLayerRun>,
}

impl BatchNetworkRun {
    /// Samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.per_sample.len())
    }

    /// Output activations of the final layer for one sample.
    pub fn output(&self, sample: usize) -> &[Q6_10] {
        &self.layers.last().expect("at least one layer").per_sample[sample].output
    }

    /// Argmax classification of the final layer for one sample.
    pub fn classify(&self, sample: usize) -> usize {
        sparsenn_numeric::argmax(self.output(sample))
    }

    /// Batch clock: summed per-layer amortized cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.batch.cycles).sum()
    }

    /// What the B samples would cost run back to back (the serial
    /// baseline the amortization is measured against).
    pub fn serial_cycles(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.per_sample.iter().map(|r| r.cycles))
            .sum()
    }

    /// Merged amortized activity counters.
    pub fn total_events(&self) -> MachineEvents {
        let mut ev = MachineEvents::default();
        for l in &self.layers {
            ev.merge(&l.batch.events);
        }
        ev
    }

    /// Total W reads of the serial baseline / the amortized batch.
    pub fn w_read_totals(&self) -> (u64, u64) {
        self.layers.iter().fold((0, 0), |(s, a), l| {
            (s + l.batch.w_reads_serial, a + l.batch.w_reads_amortized)
        })
    }

    /// Reassembles the exact per-sample [`NetworkRun`]s — each is
    /// bit-identical to running that sample alone.
    pub fn sample_runs(&self) -> Vec<NetworkRun> {
        (0..self.batch_size())
            .map(|s| NetworkRun {
                layers: self
                    .layers
                    .iter()
                    .map(|l| l.per_sample[s].clone())
                    .collect(),
            })
            .collect()
    }
}

/// Re-labels a per-layer error with its position in the network chain.
/// Past layer 0 a width mismatch is a malformed layer chain, not a bad
/// caller input — reported as such (and identically to the functional
/// backends).
fn relabel_layer_error(e: MachineError, l: usize) -> MachineError {
    match e {
        MachineError::LayerDoesNotFit { reason, .. } => {
            MachineError::LayerDoesNotFit { layer: l, reason }
        }
        MachineError::WMemoryOverflow {
            words, capacity, ..
        } => MachineError::WMemoryOverflow {
            layer: l,
            words,
            capacity,
        },
        MachineError::InputWidthMismatch { expected, got } if l > 0 => {
            MachineError::LayerDoesNotFit {
                layer: l,
                reason: format!(
                    "layer expects {expected} inputs but the previous layer produces {got}"
                ),
            }
        }
        other => other,
    }
}

/// The cycle-level SparseNN machine.
///
/// Stateless between runs: every [`run_layer`](Machine::run_layer) builds
/// fresh PEs and NoC state, so runs are independent and deterministic.
#[derive(Clone, Debug, Default)]
pub struct Machine {
    cfg: MachineConfig,
}

/// Upper bound on simulated cycles per phase — a deadlock tripwire, far
/// above any legitimate layer (the largest supported layer needs fewer
/// than 4 K × 4 K / 64 ≈ 256 K W-phase cycles).
const CYCLE_GUARD: u64 = 50_000_000;

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Self { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Simulates one layer.
    ///
    /// `predictor` is used only when `mode == UvMode::On` and
    /// `is_hidden` — exactly the layers the paper equips with predictors.
    ///
    /// # Panics
    ///
    /// Panics if the layer does not fit the machine
    /// ([`MachineConfig::validate_layer`]) or `input` width mismatches `w`.
    pub fn run_layer(
        &self,
        w: &FixedMatrix,
        predictor: Option<&FixedPredictor>,
        input: &[Q6_10],
        is_hidden: bool,
        mode: UvMode,
    ) -> LayerRun {
        self.try_run_layer(w, predictor, input, is_hidden, mode)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`run_layer`](Machine::run_layer): shape
    /// violations surface as [`MachineError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`MachineError::LayerDoesNotFit`] if the layer exceeds a machine
    /// limit, [`MachineError::InputWidthMismatch`] if `input.len()` differs
    /// from the layer's column count.
    pub fn try_run_layer(
        &self,
        w: &FixedMatrix,
        predictor: Option<&FixedPredictor>,
        input: &[Q6_10],
        is_hidden: bool,
        mode: UvMode,
    ) -> Result<LayerRun, MachineError> {
        let mut stages = LayerStages::begin(&self.cfg, w, predictor, input, is_hidden, mode)?;
        stages.run_vu();
        stages.run_w();
        Ok(stages.writeback())
    }

    /// Simulates the whole network, feeding each layer's (already
    /// quantized) outputs to the next — the ping-pong register files.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`try_run_network`](Machine::try_run_network)
    /// reports as errors.
    pub fn run_network(&self, net: &FixedNetwork, input: &[Q6_10], mode: UvMode) -> NetworkRun {
        self.try_run_network(net, input, mode)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`run_network`](Machine::run_network).
    ///
    /// # Errors
    ///
    /// [`MachineError::EmptyNetwork`] for a zero-layer network, otherwise
    /// the first per-layer error with its layer index filled in.
    pub fn try_run_network(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<NetworkRun, MachineError> {
        if net.num_layers() == 0 {
            return Err(MachineError::EmptyNetwork);
        }
        let mut acts = input.to_vec();
        let mut layers = Vec::with_capacity(net.num_layers());
        for l in 0..net.num_layers() {
            let is_hidden = l + 1 < net.num_layers();
            let predictor = if is_hidden {
                net.predictors().get(l)
            } else {
                None
            };
            let run = self
                .try_run_layer(&net.layers()[l], predictor, &acts, is_hidden, mode)
                .map_err(|e| relabel_layer_error(e, l))?;
            acts = run.output.clone();
            layers.push(run);
        }
        Ok(NetworkRun { layers })
    }

    /// Simulates the whole network over a batch of inputs with the
    /// weight-stationary batched core.
    ///
    /// # Panics
    ///
    /// Panics on the conditions
    /// [`try_run_network_batch`](Machine::try_run_network_batch) reports
    /// as errors.
    pub fn run_network_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> BatchNetworkRun {
        self.try_run_network_batch(net, inputs, mode)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`run_network_batch`](Machine::run_network_batch):
    /// runs B samples per layer pass, reading each W row once per *batch*.
    ///
    /// Each sample's functional result (outputs, masks, per-sample events)
    /// is produced by the exact serial core, so batched execution is
    /// bit-identical to per-request execution by construction; the
    /// amortized clock/energy book rides alongside in
    /// [`BatchLayerRun::batch`]. See [`BatchTiming`] for the model.
    ///
    /// # Errors
    ///
    /// [`MachineError::EmptyBatch`] for zero samples,
    /// [`MachineError::EmptyNetwork`] for a zero-layer network, otherwise
    /// the first per-layer error with its layer index filled in.
    pub fn try_run_network_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> Result<BatchNetworkRun, MachineError> {
        if inputs.is_empty() {
            return Err(MachineError::EmptyBatch);
        }
        if net.num_layers() == 0 {
            return Err(MachineError::EmptyNetwork);
        }
        let mut acts: Vec<Vec<Q6_10>> = inputs.to_vec();
        let mut layers = Vec::with_capacity(net.num_layers());
        for l in 0..net.num_layers() {
            let is_hidden = l + 1 < net.num_layers();
            let predictor = if is_hidden {
                net.predictors().get(l)
            } else {
                None
            };
            let w = &net.layers()[l];
            // The exact book: every sample runs the real serial core.
            let mut per_sample = Vec::with_capacity(acts.len());
            for sample in &acts {
                let run = self
                    .try_run_layer(w, predictor, sample, is_hidden, mode)
                    .map_err(|e| relabel_layer_error(e, l))?;
                per_sample.push(run);
            }
            let batch = self.batch_timing(w, &per_sample, &acts, is_hidden, l)?;
            for (sample, run) in acts.iter_mut().zip(&per_sample) {
                sample.clone_from(&run.output);
            }
            layers.push(BatchLayerRun { per_sample, batch });
        }
        Ok(BatchNetworkRun { layers })
    }

    /// The amortized book of one batched layer pass: a single W pass over
    /// the union nonzero-input pattern, gated by the union predictor
    /// verdict, with serial fallback when the union pass would lose.
    fn batch_timing(
        &self,
        w: &FixedMatrix,
        per_sample: &[LayerRun],
        inputs: &[Vec<Q6_10>],
        is_hidden: bool,
        layer: usize,
    ) -> Result<BatchTiming, MachineError> {
        // Union pseudo-input: position j carries the first nonzero value
        // any sample supplies there, so the union pass broadcasts exactly
        // the batch's union nonzero pattern (values are irrelevant to
        // timing; only the pattern drives the clock).
        let mut union_input = vec![Q6_10::ZERO; w.cols()];
        for sample in inputs {
            for (u, &v) in union_input.iter_mut().zip(sample) {
                if u.is_zero() && !v.is_zero() {
                    *u = v;
                }
            }
        }
        // Union predictor verdict: a W row is fetched if any sample
        // computes it.
        let union_mask: Option<Vec<bool>> = per_sample[0].mask.as_ref().map(|m0| {
            let mut mask = vec![false; m0.len()];
            for run in per_sample {
                let m = run.mask.as_ref().expect("mode is uniform across a batch");
                for (u, &b) in mask.iter_mut().zip(m) {
                    *u |= b;
                }
            }
            mask
        });
        let mut stages =
            LayerStages::begin(&self.cfg, w, None, &union_input, is_hidden, UvMode::Off)
                .map_err(|e| relabel_layer_error(e, layer))?;
        match &union_mask {
            Some(mask) => stages.force_predictor(mask),
            None => {
                stages.run_vu();
            }
        }
        stages.run_w();
        let union_run = stages.writeback();

        let vu_cycles: u64 = per_sample.iter().map(|r| r.vu_cycles).sum();
        let serial_w_cycles: u64 = per_sample.iter().map(|r| r.w_cycles).sum();
        let serial_w_reads: u64 = per_sample.iter().map(|r| r.events.w_reads).sum();
        let amortized =
            union_run.w_cycles <= serial_w_cycles && union_run.events.w_reads <= serial_w_reads;
        let (w_cycles, w_reads) = if amortized {
            (union_run.w_cycles, union_run.events.w_reads)
        } else {
            (serial_w_cycles, serial_w_reads)
        };
        let mut events = MachineEvents::default();
        for run in per_sample {
            events.merge(&run.events);
        }
        events.w_reads = w_reads;
        events.vu_cycles = vu_cycles;
        events.w_cycles = w_cycles;
        events.cycles = vu_cycles + w_cycles;
        Ok(BatchTiming {
            batch_size: per_sample.len(),
            cycles: vu_cycles + w_cycles,
            vu_cycles,
            w_cycles,
            events,
            w_reads_serial: serial_w_reads,
            w_reads_amortized: w_reads,
            amortized,
        })
    }

    /// Stages the layer without running it — the entry point of the
    /// explicit staged core ([`LayerStages`]).
    ///
    /// # Errors
    ///
    /// As for [`try_run_layer`](Machine::try_run_layer).
    pub fn stage_layer<'a>(
        &'a self,
        w: &'a FixedMatrix,
        predictor: Option<&'a FixedPredictor>,
        input: &[Q6_10],
        is_hidden: bool,
        mode: UvMode,
    ) -> Result<LayerStages<'a>, MachineError> {
        LayerStages::begin(&self.cfg, w, predictor, input, is_hidden, mode)
    }
}

/// The staged core of one layer simulation: the machine's three-phase
/// schedule made explicit, so callers that reason about *time* — not
/// just totals — can observe each stage boundary.
///
/// [`begin`](Self::begin) validates the shapes and loads the PEs;
/// [`run_vu`](Self::run_vu) executes the overlapped V/U predictor phases
/// (a no-op outside predicted layers); [`run_w`](Self::run_w) executes
/// the feedforward W phase, stamping every row's last MAC cycle; and
/// [`writeback`](Self::writeback) quantizes the accumulators into the
/// [`LayerRun`], including the per-row availability profile
/// ([`LayerRun::row_ready`]) the wavefront multi-chip executor schedules
/// transfers from. [`Machine::try_run_layer`] is exactly
/// `begin → run_vu → run_w → writeback`.
pub struct LayerStages<'a> {
    cfg: &'a MachineConfig,
    w: &'a FixedMatrix,
    predictor: Option<&'a FixedPredictor>,
    is_hidden: bool,
    predicted: bool,
    pes: Vec<Pe>,
    ev: MachineEvents,
    pe_busy: Vec<u64>,
    vu_cycles: Option<u64>,
    w_cycles: Option<u64>,
}

impl<'a> LayerStages<'a> {
    /// Validates the layer against the machine limits and loads the PEs'
    /// source register files — everything up to (but not including) the
    /// first simulated cycle.
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_run_layer`].
    pub fn begin(
        cfg: &'a MachineConfig,
        w: &'a FixedMatrix,
        predictor: Option<&'a FixedPredictor>,
        input: &[Q6_10],
        is_hidden: bool,
        mode: UvMode,
    ) -> Result<Self, MachineError> {
        cfg.validate_layer(w.rows(), w.cols())
            .map_err(|e| match e {
                crate::LayerFitError::WMemoryOverflow { words, capacity } => {
                    MachineError::WMemoryOverflow {
                        layer: 0,
                        words,
                        capacity,
                    }
                }
                other => MachineError::LayerDoesNotFit {
                    layer: 0,
                    reason: other.to_string(),
                },
            })?;
        if input.len() != w.cols() {
            return Err(MachineError::InputWidthMismatch {
                expected: w.cols(),
                got: input.len(),
            });
        }
        let n_pes = cfg.num_pes();
        let pes: Vec<Pe> = (0..n_pes)
            .map(|id| Pe::with_scan(id, n_pes, cfg.act_queue_depth, input, w.rows(), cfg.scan))
            .collect();
        let predicted = mode == UvMode::On && is_hidden && predictor.is_some();
        Ok(Self {
            cfg,
            w,
            predictor,
            is_hidden,
            predicted,
            pes,
            ev: MachineEvents::default(),
            pe_busy: vec![0u64; n_pes],
            vu_cycles: None,
            w_cycles: None,
        })
    }

    /// `true` when the layer runs the predictor phases (uv_on, hidden,
    /// predictor present).
    pub fn predicted(&self) -> bool {
        self.predicted
    }

    /// Runs the overlapped V/U predictor phases and returns their cycle
    /// count (0 for unpredicted layers, which instead force every
    /// predictor bit active).
    pub fn run_vu(&mut self) -> u64 {
        assert!(self.vu_cycles.is_none(), "run_vu called twice");
        let cycles = if self.predicted {
            self.vu_phase()
        } else {
            self.pes.iter_mut().for_each(Pe::force_all_active);
            0
        };
        self.vu_cycles = Some(cycles);
        cycles
    }

    /// Skips the V/U phases and loads an externally computed predictor
    /// verdict instead: `mask[row]` = row active. The W phase then runs
    /// with output-sparsity skipping against that mask, at zero predictor
    /// cost — the batched core uses this to drive one W pass with the
    /// *union* of a batch's per-sample verdicts.
    ///
    /// Stands in for [`run_vu`](Self::run_vu) (the phase slot is consumed
    /// with a cycle count of 0).
    ///
    /// # Panics
    ///
    /// Panics if [`run_vu`](Self::run_vu) already ran, or `mask` is
    /// shorter than the layer's output row count.
    pub fn force_predictor(&mut self, mask: &[bool]) {
        assert!(
            self.vu_cycles.is_none(),
            "force_predictor after run_vu (the verdict is already latched)"
        );
        assert!(
            mask.len() >= self.w.rows(),
            "predictor mask covers every output row"
        );
        for pe in &mut self.pes {
            pe.set_predictor(mask);
        }
        self.predicted = true;
        self.vu_cycles = Some(0);
    }

    /// Runs the feedforward W phase and returns its cycle count.
    ///
    /// # Panics
    ///
    /// Panics if [`run_vu`](Self::run_vu) has not run first — the phases
    /// are a hardware schedule, not independent kernels.
    pub fn run_w(&mut self) -> u64 {
        assert!(
            self.vu_cycles.is_some(),
            "run_w before run_vu (the W phase consumes the predictor verdict)"
        );
        assert!(self.w_cycles.is_none(), "run_w called twice");
        let cycles = self.w_phase();
        self.w_cycles = Some(cycles);
        cycles
    }

    /// Quantizes the accumulators into the [`LayerRun`]: outputs, mask,
    /// cycle totals, events — and the per-row availability profile
    /// ([`LayerRun::row_ready`] plus the
    /// [`row_ready_hist`](MachineEvents::row_ready_hist) summary).
    ///
    /// # Panics
    ///
    /// Panics unless both [`run_vu`](Self::run_vu) and
    /// [`run_w`](Self::run_w) have run.
    pub fn writeback(mut self) -> LayerRun {
        let vu_cycles = self.vu_cycles.expect("run_vu before writeback");
        let w_cycles = self.w_cycles.expect("run_w before writeback");
        let total = vu_cycles + w_cycles;
        let pipe = self.cfg.pe_pipeline_depth;
        let rows = self.w.rows();
        let mut output = vec![Q6_10::ZERO; rows];
        let mut row_ready = vec![0u64; rows];
        for pe in &self.pes {
            for (row, val, last_mac) in pe.writeback(self.is_hidden, &mut self.ev) {
                output[row as usize] = val;
                // A row is final once its last MAC clears the PE
                // pipeline; rows the W phase never touched are final as
                // soon as the predictor verdict does.
                row_ready[row as usize] = vu_cycles + last_mac + pipe;
            }
        }
        debug_assert!(
            row_ready.iter().all(|&t| t <= total),
            "row availability must be bounded by the layer total"
        );
        let span = total.max(1);
        for &t in &row_ready {
            let bucket = (t.saturating_mul(8) / span).min(7) as usize;
            self.ev.row_ready_hist[bucket] += 1;
        }
        let mask = self.predicted.then(|| {
            let mut mask = vec![false; rows];
            for pe in &self.pes {
                for (&row, &bit) in pe.rows().iter().zip(pe.predictor_bits()) {
                    mask[row as usize] = bit;
                }
            }
            mask
        });
        self.ev.vu_cycles = vu_cycles;
        self.ev.w_cycles = w_cycles;
        self.ev.cycles = total;
        LayerRun {
            output,
            mask,
            cycles: total,
            vu_cycles,
            w_cycles,
            events: self.ev,
            pe_busy: self.pe_busy,
            row_ready,
        }
    }

    /// The overlapped V/U predictor phases. Returns the cycle count.
    fn vu_phase(&mut self) -> u64 {
        let p = self.predictor.expect("predicted layers carry a predictor");
        let pes = &mut self.pes;
        let ev = &mut self.ev;
        let pe_busy = &mut self.pe_busy;
        let r = p.v.rows();
        let participants: Vec<bool> = pes.iter().map(Pe::participates).collect();
        for pe in pes.iter_mut() {
            pe.begin_v(r);
        }
        let mut reduce = ReduceTree::new(&self.cfg.noc, r, &participants);
        // Root output buffer and the downward broadcast pipeline for the
        // quantized V results.
        let mut pending: VecDeque<ActFlit> = VecDeque::new();
        let mut down: VecDeque<(u64, ActFlit)> = VecDeque::new();
        let bcast_latency = self.cfg.noc.broadcast_latency();

        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            assert!(cycle < CYCLE_GUARD, "V/U phase deadlock");

            // Network interfaces push finished partials into the reduce tree.
            for pe in pes.iter_mut() {
                if let Some((row, val)) = pe.pending_v_emit() {
                    if reduce.try_inject(pe.id(), row, val) {
                        pe.clear_v_emit();
                    }
                }
            }

            // Root finishes at most one row per cycle; zero results are not
            // broadcast (the U phase skips them exactly).
            if let Some((row, total)) = reduce.tick() {
                let q: Q6_10 = Accumulator::from_raw(total).to_fixed();
                if !q.is_zero() {
                    pending.push_back(ActFlit {
                        index: row,
                        value: q.raw(),
                    });
                }
            }

            // Enter the broadcast pipeline only with guaranteed queue space.
            let sink_ready = pes.iter().all(|pe| pe.queue_free() > down.len());
            if sink_ready {
                if let Some(f) = pending.pop_front() {
                    down.push_back((cycle + bcast_latency, f));
                }
            }
            if let Some(&(ready, f)) = down.front() {
                if ready <= cycle {
                    down.pop_front();
                    for pe in pes.iter_mut() {
                        pe.push_act(f, ev);
                    }
                }
            }

            // Datapaths.
            for (pe, busy) in pes.iter_mut().zip(pe_busy.iter_mut()) {
                match pe.step_vu(&p.v, &p.u, ev) {
                    StepOutcome::Busy => {
                        ev.pe_busy_cycles += 1;
                        *busy += 1;
                    }
                    _ => ev.pe_idle_cycles += 1,
                }
            }

            let done = reduce.is_done()
                && pending.is_empty()
                && down.is_empty()
                && pes.iter().all(|pe| pe.v_done() && pe.drained());
            if done {
                break;
            }
        }
        ev.noc.merge(reduce.stats());
        for pe in pes.iter_mut() {
            pe.latch_predictor(ev);
        }
        cycle + self.cfg.pe_pipeline_depth
    }

    /// The W feedforward phase. Returns the cycle count.
    fn w_phase(&mut self) -> u64 {
        let w = self.w;
        let uv_on = self.predicted;
        let pes = &mut self.pes;
        let ev = &mut self.ev;
        let pe_busy = &mut self.pe_busy;
        for pe in pes.iter_mut() {
            pe.rewind_src();
        }
        let mut tree: BroadcastTree<ActFlit> = BroadcastTree::new(&self.cfg.noc);
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            assert!(cycle < CYCLE_GUARD, "W phase deadlock");

            // Network interfaces: LNZD scan + inject one activation/cycle.
            for pe in pes.iter_mut() {
                if let Some(f) = pe.peek_src() {
                    if tree.try_inject(pe.id(), f) {
                        pe.advance_src();
                        ev.src_reads += 1;
                    }
                }
            }

            let sink_ready = pes.iter().all(|pe| pe.queue_free() > tree.down_in_flight());
            if let Some(f) = tree.tick(sink_ready) {
                for pe in pes.iter_mut() {
                    pe.push_act(f, ev);
                }
            }

            for (pe, busy) in pes.iter_mut().zip(pe_busy.iter_mut()) {
                match pe.step_w(w, uv_on, cycle, ev) {
                    StepOutcome::Busy => {
                        ev.pe_busy_cycles += 1;
                        *busy += 1;
                    }
                    _ => ev.pe_idle_cycles += 1,
                }
            }

            let done =
                tree.is_idle() && pes.iter().all(|pe| pe.peek_src().is_none() && pe.drained());
            if done {
                break;
            }
        }
        ev.noc.merge(tree.stats());
        cycle + self.cfg.pe_pipeline_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn build(seed: u64, dims: &[usize], rank: usize) -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(dims, &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..dims[0])
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.41).sin().abs()
                }
            })
            .collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn machine_matches_golden_uv_off() {
        let (net, x) = build(1, &[40, 96, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, UvMode::Off);
        let golden = net.forward(&x, UvMode::Off);
        for (l, (run_l, gold_l)) in run.layers.iter().zip(&golden).enumerate() {
            assert_eq!(run_l.output, gold_l.output, "layer {l} mismatch (uv_off)");
        }
    }

    #[test]
    fn machine_matches_golden_uv_on() {
        let (net, x) = build(2, &[40, 96, 72, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, UvMode::On);
        let golden = net.forward(&x, UvMode::On);
        for (l, (run_l, gold_l)) in run.layers.iter().zip(&golden).enumerate() {
            assert_eq!(
                run_l.output, gold_l.output,
                "layer {l} output mismatch (uv_on)"
            );
            assert_eq!(run_l.mask, gold_l.mask, "layer {l} mask mismatch");
        }
    }

    #[test]
    fn uv_off_w_reads_count_nnz_times_rows() {
        let (net, x) = build(3, &[32, 128, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_layer(&net.layers()[0], None, &x, true, UvMode::Off);
        let nnz = x.iter().filter(|v| !v.is_zero()).count() as u64;
        assert_eq!(run.events.w_reads, nnz * 128);
        assert_eq!(run.events.macs, nnz * 128);
        assert_eq!(run.events.src_reads, nnz);
        assert_eq!(run.events.queue_pushes, nnz * 64);
    }

    #[test]
    fn predicted_layer_reads_less_w_memory() {
        let (net, x) = build(4, &[48, 256, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let off = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &x,
            true,
            UvMode::Off,
        );
        let on = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &x,
            true,
            UvMode::On,
        );
        // A random predictor predicts ~half inactive, so W traffic drops.
        assert!(
            on.events.w_reads < off.events.w_reads,
            "uv_on w_reads {} should be below uv_off {}",
            on.events.w_reads,
            off.events.w_reads
        );
        // But it pays U/V reads instead.
        assert!(on.events.u_reads > 0 && on.events.v_reads > 0);
        assert_eq!(off.events.u_reads, 0);
    }

    #[test]
    fn zero_input_finishes_immediately_with_zero_output() {
        let (net, _) = build(5, &[32, 64, 10], 4);
        let x = vec![Q6_10::ZERO; 32];
        let machine = Machine::new(MachineConfig::default());
        for mode in [UvMode::Off, UvMode::On] {
            let run = machine.run_network(&net, &x, mode);
            assert!(run.output().iter().all(|v| v.is_zero()));
            let golden = net.forward(&x, mode);
            assert_eq!(run.output(), &golden.last().unwrap().output[..]);
            assert!(run.total_cycles() < 100, "near-instant for empty input");
        }
    }

    #[test]
    fn tiny_act_queue_still_exact_just_slower() {
        let (net, x) = build(6, &[40, 128, 10], 4);
        let fast = Machine::new(MachineConfig::default());
        let tiny = Machine::new(MachineConfig {
            act_queue_depth: 4,
            ..MachineConfig::default()
        });
        let a = fast.run_network(&net, &x, UvMode::Off);
        let b = tiny.run_network(&net, &x, UvMode::Off);
        assert_eq!(
            a.output(),
            b.output(),
            "queue depth must not change results"
        );
        assert!(
            b.total_cycles() >= a.total_cycles(),
            "backpressure can only slow things"
        );
    }

    #[test]
    fn classify_matches_golden() {
        let (net, x) = build(7, &[36, 80, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, UvMode::On);
        assert_eq!(run.classify(), net.classify(&x, UvMode::On));
    }

    #[test]
    fn pe_work_distribution_is_recorded() {
        let (net, x) = build(9, &[48, 256, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let off = machine.run_layer(&net.layers()[0], None, &x, true, UvMode::Off);
        assert_eq!(off.pe_busy.len(), 64);
        // uv_off: every PE has 4 rows and does identical work per
        // activation — perfectly balanced.
        assert!(
            (off.work_imbalance() - 1.0).abs() < 0.05,
            "{}",
            off.work_imbalance()
        );
        let on = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &x,
            true,
            UvMode::On,
        );
        // uv_on: the random predictor spreads active rows unevenly.
        assert!(on.work_imbalance() > 1.05, "{}", on.work_imbalance());
        // Busy cycles recorded per PE must sum to the global counter.
        let sum: u64 = on.pe_busy.iter().sum();
        assert_eq!(sum, on.events.pe_busy_cycles);
    }

    #[test]
    fn staged_core_equals_the_monolithic_run() {
        let (net, x) = build(12, &[40, 96, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        for mode in [UvMode::Off, UvMode::On] {
            let whole =
                machine.run_layer(&net.layers()[0], net.predictors().first(), &x, true, mode);
            let mut stages = machine
                .stage_layer(&net.layers()[0], net.predictors().first(), &x, true, mode)
                .unwrap();
            let vu = stages.run_vu();
            let w = stages.run_w();
            let staged = stages.writeback();
            assert_eq!(vu, whole.vu_cycles, "{mode:?}");
            assert_eq!(w, whole.w_cycles, "{mode:?}");
            assert_eq!(staged.output, whole.output, "{mode:?}");
            assert_eq!(staged.mask, whole.mask, "{mode:?}");
            assert_eq!(staged.events, whole.events, "{mode:?}");
            assert_eq!(staged.row_ready, whole.row_ready, "{mode:?}");
        }
    }

    #[test]
    fn row_availability_is_bounded_and_spread() {
        let (net, x) = build(13, &[48, 256, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        for mode in [UvMode::Off, UvMode::On] {
            let run = machine.run_layer(&net.layers()[0], net.predictors().first(), &x, true, mode);
            assert_eq!(run.row_ready.len(), 256);
            assert!(run.row_ready.iter().all(|&t| t > 0 && t <= run.cycles));
            assert_eq!(run.last_ready(), *run.row_ready.iter().max().unwrap());
            // Rows finish over a genuine interval, not all at the drain:
            // that early slack is what wavefront pipelining overlaps.
            assert!(
                run.first_ready() < run.last_ready(),
                "{mode:?}: rows must not all complete at once"
            );
            assert!(run.last_ready() <= run.cycles);
            // The histogram is over exactly the layer's rows.
            assert_eq!(run.events.row_ready_hist.iter().sum::<u64>(), 256);
        }
    }

    #[test]
    #[should_panic(expected = "run_w before run_vu")]
    fn stage_order_is_enforced() {
        let (net, x) = build(14, &[32, 64, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let mut stages = machine
            .stage_layer(&net.layers()[0], None, &x, true, UvMode::Off)
            .unwrap();
        stages.run_w();
    }

    fn batch_inputs(net: &FixedNetwork, dims0: usize, b: usize) -> Vec<Vec<Q6_10>> {
        (0..b)
            .map(|s| {
                let x: Vec<f32> = (0..dims0)
                    .map(|i| {
                        if (i + s) % 3 == 0 {
                            0.0
                        } else {
                            ((i as f32 + s as f32 * 0.7) * 0.41).sin().abs()
                        }
                    })
                    .collect();
                net.quantize_input(&x)
            })
            .collect()
    }

    #[test]
    fn batched_run_is_bit_identical_to_serial() {
        let (net, _) = build(21, &[40, 96, 72, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let inputs = batch_inputs(&net, 40, 4);
        for mode in [UvMode::Off, UvMode::On] {
            let batch = machine.run_network_batch(&net, &inputs, mode);
            assert_eq!(batch.batch_size(), 4);
            for (s, x) in inputs.iter().enumerate() {
                let serial = machine.run_network(&net, x, mode);
                assert_eq!(batch.output(s), serial.output(), "{mode:?} sample {s}");
                assert_eq!(batch.classify(s), serial.classify(), "{mode:?} sample {s}");
                for (l, (bl, sl)) in batch.layers.iter().zip(&serial.layers).enumerate() {
                    assert_eq!(bl.per_sample[s].output, sl.output, "{mode:?} L{l}");
                    assert_eq!(bl.per_sample[s].mask, sl.mask, "{mode:?} L{l}");
                    assert_eq!(bl.per_sample[s].events, sl.events, "{mode:?} L{l}");
                }
            }
            // The amortized book never loses to serial.
            assert!(batch.total_cycles() <= batch.serial_cycles(), "{mode:?}");
            let (serial_reads, batch_reads) = batch.w_read_totals();
            assert!(batch_reads <= serial_reads, "{mode:?}");
            assert!(batch_reads > 0, "{mode:?}");
        }
    }

    #[test]
    fn batch_of_one_degenerates_to_the_serial_run() {
        let (net, x) = build(22, &[40, 96, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        for mode in [UvMode::Off, UvMode::On] {
            let serial = machine.run_network(&net, &x, mode);
            let batch = machine.run_network_batch(&net, std::slice::from_ref(&x), mode);
            assert_eq!(batch.total_cycles(), serial.total_cycles(), "{mode:?}");
            let (serial_reads, batch_reads) = batch.w_read_totals();
            assert_eq!(serial_reads, batch_reads, "{mode:?}: B=1 amortizes nothing");
            for l in &batch.layers {
                assert!(l.batch.amortized, "{mode:?}: the union pass ties serial");
                assert!((l.batch.w_read_amortization() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn overlapping_samples_amortize_w_reads_and_cycles() {
        // Identical inputs: the union pass is exactly one serial pass, so
        // the W book shrinks by the full batch factor.
        let (net, x) = build(23, &[48, 128, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let inputs = vec![x.clone(); 6];
        let batch = machine.run_network_batch(&net, &inputs, UvMode::On);
        let (serial_reads, batch_reads) = batch.w_read_totals();
        assert_eq!(serial_reads, 6 * batch_reads);
        assert!(batch.total_cycles() < batch.serial_cycles());
        for l in &batch.layers {
            assert!(l.batch.amortized);
            assert!((l.batch.w_read_amortization() - 6.0).abs() < 1e-12);
        }
        // Per-sample VU work is not amortized: the predictor runs per
        // sample, so the batch clock still carries all six VU phases.
        let vu: u64 = batch.layers.iter().map(|l| l.batch.vu_cycles).sum();
        let serial_vu: u64 = batch
            .layers
            .iter()
            .flat_map(|l| l.per_sample.iter().map(|r| r.vu_cycles))
            .sum();
        assert_eq!(vu, serial_vu);
    }

    #[test]
    fn batch_events_book_sums_samples_with_amortized_w_reads() {
        let (net, _) = build(24, &[36, 80, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let inputs = batch_inputs(&net, 36, 3);
        let batch = machine.run_network_batch(&net, &inputs, UvMode::On);
        for l in &batch.layers {
            let mut summed = MachineEvents::default();
            for r in &l.per_sample {
                summed.merge(&r.events);
            }
            let ev = &l.batch.events;
            assert_eq!(ev.macs, summed.macs);
            assert_eq!(ev.src_reads, summed.src_reads);
            assert_eq!(ev.u_reads, summed.u_reads);
            assert_eq!(ev.v_reads, summed.v_reads);
            assert_eq!(ev.dst_writes, summed.dst_writes);
            assert_eq!(ev.w_reads, l.batch.w_reads_amortized);
            assert_eq!(ev.cycles, l.batch.cycles);
        }
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (net, _) = build(25, &[32, 64, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        assert_eq!(
            machine
                .try_run_network_batch(&net, &[], UvMode::Off)
                .unwrap_err(),
            MachineError::EmptyBatch
        );
    }

    #[test]
    fn scan_mode_never_changes_results_cycles_or_events() {
        use crate::config::ScanMode;
        let (net, x) = build(31, &[48, 160, 96, 10], 4);
        let mask_word = Machine::new(MachineConfig::default());
        let per_element = Machine::new(MachineConfig {
            scan: ScanMode::PerElement,
            ..MachineConfig::default()
        });
        for mode in [UvMode::Off, UvMode::On] {
            let a = mask_word.run_network(&net, &x, mode);
            let b = per_element.run_network(&net, &x, mode);
            for (l, (la, lb)) in a.layers.iter().zip(&b.layers).enumerate() {
                assert_eq!(la.output, lb.output, "{mode:?} L{l} output");
                assert_eq!(la.mask, lb.mask, "{mode:?} L{l} mask");
                assert_eq!(la.cycles, lb.cycles, "{mode:?} L{l} cycles");
                assert_eq!(la.events, lb.events, "{mode:?} L{l} events");
                assert_eq!(la.pe_busy, lb.pe_busy, "{mode:?} L{l} pe_busy");
                assert_eq!(la.row_ready, lb.row_ready, "{mode:?} L{l} row_ready");
            }
        }
    }

    #[test]
    fn network_run_accounting_adds_up() {
        let (net, x) = build(8, &[36, 80, 10], 4);
        let machine = Machine::new(MachineConfig::default());
        let run = machine.run_network(&net, &x, UvMode::On);
        let per_layer: u64 = run.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(run.total_cycles(), per_layer);
        for l in &run.layers {
            assert_eq!(l.cycles, l.vu_cycles + l.w_cycles);
        }
        // Classifier layer never runs the predictor phases.
        assert_eq!(run.layers.last().unwrap().vu_cycles, 0);
        assert!(run.layers[0].vu_cycles > 0);
    }
}
