//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! the linear-algebra kernels the training loop lives in, the SVD used by
//! the baseline predictor, dataset synthesis, both NoC traffic patterns,
//! and the cycle-level machine in both UV modes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sparsenn_core::datasets::{DatasetKind, DatasetSpec};
use sparsenn_core::linalg::init;
use sparsenn_core::linalg::init::seeded_rng;
use sparsenn_core::linalg::truncated::truncated_svd;
use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_core::model::{Mlp, PredictedNetwork};
use sparsenn_core::noc::{ActFlit, BroadcastTree, NocConfig, ReduceTree};
use sparsenn_core::numeric::quantize::quantize_slice;
use sparsenn_core::sim::{Machine, MachineConfig};
use sparsenn_core::train::end_to_end::{sgd_step, PredictorActivation};

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    let mut rng = seeded_rng(1);
    let a = init::he_normal(1000, 784, &mut rng);
    let x: Vec<f32> = (0..784).map(|i| (i as f32 * 0.1).sin()).collect();
    g.bench_function("matvec_1000x784", |b| {
        b.iter(|| black_box(a.matvec(black_box(&x))))
    });
    let y: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.2).cos()).collect();
    g.bench_function("matvec_t_1000x784", |b| {
        b.iter(|| black_box(a.matvec_t(black_box(&y))))
    });
    let small = init::he_normal(256, 256, &mut rng);
    g.sample_size(10);
    g.bench_function("truncated_svd_rank15_256x256", |b| {
        b.iter(|| black_box(truncated_svd(black_box(&small), 15, 7)))
    });
    g.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let xs: Vec<f32> = (0..784).map(|i| (i as f32 * 0.37).sin()).collect();
    c.bench_function("quantize_784_to_q6_10", |b| {
        b.iter(|| black_box(quantize_slice::<10>(black_box(&xs))))
    });
}

fn bench_datasets(c: &mut Criterion) {
    let mut g = c.benchmark_group("datasets");
    g.sample_size(20);
    for kind in DatasetKind::ALL {
        g.bench_function(format!("generate_32_{kind}"), |b| {
            b.iter(|| {
                let spec = DatasetSpec {
                    kind,
                    train: 32,
                    test: 0,
                    seed: 9,
                };
                black_box(spec.generate())
            })
        });
    }
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.bench_function("broadcast_256_flits", |b| {
        b.iter_batched(
            || {
                let mut pending: Vec<(usize, ActFlit)> = Vec::new();
                for pe in 0..64usize {
                    for k in 0..4u32 {
                        pending.push((
                            pe,
                            ActFlit {
                                index: pe as u32 * 4 + k,
                                value: 1,
                            },
                        ));
                    }
                }
                (BroadcastTree::new(&NocConfig::default()), pending)
            },
            |(mut tree, mut pending)| {
                let mut delivered = 0usize;
                while delivered < 256 {
                    pending.retain(|&(pe, f)| !tree.try_inject(pe, f));
                    if tree.tick(true).is_some() {
                        delivered += 1;
                    }
                }
                black_box(delivered)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("reduce_16_rows_64_pes", |b| {
        b.iter_batched(
            || {
                let participants = vec![true; 64];
                let tree = ReduceTree::new(&NocConfig::default(), 16, &participants);
                let pending: Vec<(usize, u32, i64)> = (0..64)
                    .flat_map(|pe| (0..16u32).map(move |r| (pe, r, pe as i64 + 1)))
                    .collect();
                (tree, pending)
            },
            |(mut tree, mut pending)| {
                let mut done = 0usize;
                while done < 16 {
                    pending.retain(|&(pe, row, v)| !tree.try_inject(pe, row, v));
                    if tree.tick().is_some() {
                        done += 1;
                    }
                }
                black_box(done)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn machine_fixture() -> (Machine, FixedNetwork, Vec<sparsenn_core::numeric::Q6_10>) {
    let mut rng = seeded_rng(3);
    let mlp = Mlp::random(&[256, 512, 10], &mut rng);
    let net = PredictedNetwork::with_random_predictors(mlp, 15, &mut rng);
    let fixed = FixedNetwork::from_float(&net);
    let x: Vec<f32> = (0..256)
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else {
                (i as f32 * 0.11).sin().abs()
            }
        })
        .collect();
    let xq = fixed.quantize_input(&x);
    (Machine::new(MachineConfig::default()), fixed, xq)
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    let (machine, fixed, xq) = machine_fixture();
    g.bench_function("layer_512x256_uv_off", |b| {
        b.iter(|| {
            black_box(machine.run_layer(
                black_box(&fixed.layers()[0]),
                None,
                black_box(&xq),
                true,
                UvMode::Off,
            ))
        })
    });
    g.bench_function("layer_512x256_uv_on", |b| {
        b.iter(|| {
            black_box(machine.run_layer(
                black_box(&fixed.layers()[0]),
                fixed.predictors().first(),
                black_box(&xq),
                true,
                UvMode::On,
            ))
        })
    });
    g.bench_function("golden_layer_512x256", |b| {
        b.iter(|| black_box(fixed.forward_layer(0, black_box(&xq), UvMode::On)))
    });
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    use sparsenn_core::kernel::{SparseKernel, Strategy, DEFAULT_BLOCK};
    let mut g = c.benchmark_group("kernel");
    let (_, fixed, xq) = machine_fixture();
    let kernel = SparseKernel::pack(&fixed, DEFAULT_BLOCK);
    let mut s = kernel.scratch();
    g.bench_function("prescan_512x256_uv_on", |b| {
        b.iter(|| black_box(kernel.run(black_box(&xq), UvMode::On, Strategy::Prescan, &mut s)))
    });
    g.bench_function("dense_512x256_uv_on", |b| {
        b.iter(|| black_box(kernel.run(black_box(&xq), UvMode::On, Strategy::Dense, &mut s)))
    });
    let batch: Vec<Vec<sparsenn_core::numeric::Q6_10>> = (0..4).map(|_| xq.clone()).collect();
    g.bench_function("run_batch_B4_prescan_uv_on", |b| {
        b.iter(|| {
            black_box(kernel.run_batch(black_box(&batch), UvMode::On, Strategy::Prescan, &mut s))
        })
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(30);
    let mut rng = seeded_rng(4);
    let mlp = Mlp::random(&[784, 256, 10], &mut rng);
    let net = PredictedNetwork::with_random_predictors(mlp, 15, &mut rng);
    let x: Vec<f32> = (0..784).map(|i| (i as f32 * 0.21).sin().abs()).collect();
    g.bench_function("end_to_end_sgd_step_784_256_10", |b| {
        b.iter_batched(
            || net.clone(),
            |mut n| {
                black_box(sgd_step(
                    &mut n,
                    &x,
                    3,
                    0.02,
                    2e-4,
                    PredictorActivation::Sign,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_quantize,
    bench_datasets,
    bench_noc,
    bench_machine,
    bench_kernel,
    bench_training
);
criterion_main!(benches);
