//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a function returning a
//! markdown report (paper-reported values alongside measured ones); the
//! `src/bin/*` binaries are thin wrappers. Scale is controlled by
//! `SPARSENN_PROFILE` (`fast` default / `full` paper scale) — see
//! [`sparsenn_core::Profile`].
//!
//! | target | regenerates |
//! |---|---|
//! | `cargo run --release -p sparsenn-bench --bin fig6` | Fig. 6 (TER & sparsity vs rank) |
//! | `… --bin table1` | Table I (5-layer TER & ρ per layer) |
//! | `… --bin table2` | Table II (machine parameters) |
//! | `… --bin table3` | Table III (area breakdown) |
//! | `… --bin fig7` | Fig. 7 (cycles & power per layer, uv_on/off) |
//! | `… --bin table4` | Table IV (platform comparison) |
//! | `… --bin ablation_noc` | §V.B buffered-flow-control ablation |
//! | `… --bin ablation_sched` | §V.C column- vs row-based V scheduling |
//! | `… --bin ablation_lambda` | Eq. (4) λ sweep |
//! | `… --bin fleet` | fleet serving: latency & wall time vs shard count |
//! | `… --bin serve` | virtual-time serving: latency vs offered load per scheduler |
//! | `… --bin kernel` | native CPU kernel: measured dense-vs-prescan wall-clock, bit-exactness & speedup oracles |
//! | `… --bin frontend` | production front end: admission, hedging, autoscaling, SLO sweep |
//! | `… --bin partition` | model parallelism: oversized MLP on 2/4/8 chips, comm overhead |
//! | `… --bin obs` | observability: Perfetto trace export, telemetry registry, overhead oracles |
//! | `… --bin analyze` | trace analytics: critical-path attribution, tail exemplars, burn-rate oracles |
//! | `… --bin trace_report` | text analytics report from a fresh run or a recorded trace (`--input FILE`) |
//! | `… --bin run_all` | everything above, in order |
//! | `… --bin bench_diff` | compare two `BENCH_results.json` files (`--json` for machine output) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

use std::fmt::Write as _;

/// Renders a markdown table from a header and rows.
///
/// # Example
///
/// ```
/// let t = sparsenn_bench::markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("| a | b |"));
/// ```
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Percentage change `(from → to)`, negative = reduction.
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        return 0.0;
    }
    100.0 * (to - from) / from
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn pct_change_signs() {
        assert_eq!(pct_change(100.0, 50.0), -50.0);
        assert_eq!(pct_change(0.0, 50.0), 0.0);
        assert_eq!(pct_change(50.0, 100.0), 100.0);
    }
}
