//! Virtual-time serving study: latency vs offered load per scheduler
//! over homogeneous and heterogeneous fleets (beyond the paper).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::serve::run(p));
}
