//! Regenerates the paper's Fig. 7 (cycles & power per layer, uv_on/off).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::fig7::run(p));
}
