//! Standalone runner for the observability study: end-to-end trace
//! export, the unified telemetry registry, and the tracing-overhead
//! oracles.

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("{}", sparsenn_bench::experiments::obs::run(p));
}
