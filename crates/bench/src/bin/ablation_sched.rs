//! Ablation: column- vs row-based V scheduling (paper §V.C).

fn main() {
    print!("{}", sparsenn_bench::experiments::ablations::sched());
}
