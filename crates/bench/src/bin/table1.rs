//! Regenerates the paper's Table I (5-layer TER & per-layer sparsity).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::table1::run(p));
}
