//! Prints the trace-analytics report — latency breakdown with critical
//! paths, tail exemplars, burn-rate alerts — for a recorded run or the
//! seeded scenario.
//!
//! ```text
//! trace_report                   # re-run the seeded overload scenario
//! trace_report --input FILE     # analyze a recorded Chrome-trace JSON
//! trace_report --top N --k N    # slowest requests to print / keep
//! ```
//!
//! Output is byte-deterministic for a given input (or for the fixed
//! scenario seed) — CI diffs two invocations.

use sparsenn_bench::experiments::analyze::{capture, render_report};
use sparsenn_bench::report::parse_chrome_trace;
use sparsenn_obs::{analyze, offline_top_k};

fn main() {
    let mut input: Option<String> = None;
    let mut top = 8usize;
    let mut k = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut usize_value = |flag: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--input" => input = Some(args.next().unwrap_or_else(|| die("--input needs a path"))),
            "--top" => top = usize_value("--top"),
            "--k" => k = usize_value("--k"),
            "--help" | "-h" => {
                println!("usage: trace_report [--input FILE] [--top N] [--k N]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let report = match input {
        Some(path) => {
            // A recorded trace carries no live monitor state: exemplars
            // come from the offline oracle, burn alerts are absent.
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|err| die(&format!("cannot read {path}: {err}")));
            let spans = parse_chrome_trace(&src)
                .unwrap_or_else(|err| die(&format!("cannot parse {path}: {err}")));
            render_report(&analyze(&spans), &offline_top_k(&spans, k), &[], top)
        }
        None => {
            let (summary, spans, live) = capture(true);
            let kept: Vec<_> = live.into_iter().take(k).collect();
            render_report(&analyze(&spans), &kept, &summary.burn_alerts, top)
        }
    };
    print!("{report}");
}

fn die(msg: &str) -> ! {
    eprintln!("trace_report: {msg}");
    std::process::exit(2);
}
