//! Standalone runner for the trace-analytics study: critical-path
//! attribution, tail exemplars, and burn-rate oracles on the seeded
//! 4-shard overload scenario.

fn main() {
    println!("{}", sparsenn_bench::experiments::analyze::run());
}
