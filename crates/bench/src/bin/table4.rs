//! Regenerates the paper's Table IV (SIMD platform comparison).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::table4::run(p));
}
