//! Standalone runner for the cross-request batching study.

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("{}", sparsenn_bench::experiments::batching::run(p));
}
