//! Ablation: ℓ1 regularization factor λ (paper Eq. (4)).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::ablations::lambda(p));
}
