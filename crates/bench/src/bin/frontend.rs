//! Production front end study: admission under overload, hedging against
//! injected faults, autoscaling, and the SLO policy sweep (beyond the
//! paper).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::frontend::run(p));
}
