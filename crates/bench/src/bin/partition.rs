//! Model-parallelism study: an MLP too big for one chip's W memory,
//! served on 2/4/8 NoC-connected chips.

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("{}", sparsenn_bench::experiments::partition::run(p));
}
