//! Regenerates the paper's Table III (area breakdown).

fn main() {
    print!("{}", sparsenn_bench::experiments::table3::run());
}
