//! Standalone runner for the native-kernel wall-clock study.

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("{}", sparsenn_bench::experiments::kernel::run(p));
}
