//! Regenerates the paper's Table II (machine parameters).

fn main() {
    print!("{}", sparsenn_bench::experiments::table2::run());
}
