//! Ablation: buffered NoC flow control (paper §V.B).

fn main() {
    print!("{}", sparsenn_bench::experiments::ablations::noc());
}
