//! Runs every experiment in paper order (tables II & III first because
//! they are instantaneous, then the training-heavy figures), printing the
//! markdown reports to stdout and recording per-experiment wall time in
//! `BENCH_results.json` (override the path with `SPARSENN_BENCH_JSON`).

use sparsenn_bench::experiments as e;
use sparsenn_bench::report::BenchResults;

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("# SparseNN reproduction — experiment suite (profile: {p})\n");
    let mut results = BenchResults::new(p.to_string());
    type Experiment<'a> = (&'a str, Box<dyn FnOnce() -> String>);
    let experiments: Vec<Experiment> = vec![
        ("table2", Box::new(e::table2::run)),
        ("table3", Box::new(e::table3::run)),
        ("fig6", Box::new(move || e::fig6::run(p))),
        ("table1", Box::new(move || e::table1::run(p))),
        ("fig7", Box::new(move || e::fig7::run(p))),
        ("table4", Box::new(move || e::table4::run(p))),
        ("ablation_noc", Box::new(e::ablations::noc)),
        ("ablation_sched", Box::new(e::ablations::sched)),
        ("ablation_lambda", Box::new(move || e::ablations::lambda(p))),
    ];
    for (name, experiment) in experiments {
        let report = results.run(name, experiment);
        println!("{report}");
    }

    // The serving studies (fleet scaling + virtual-time simulation) share
    // one trained system — training is the expensive part, so it is built
    // once and recorded as its own line. Both also yield modelled metrics
    // (per-sample latency, latency-vs-load percentiles) for the JSON
    // trajectory.
    let mut study = None;
    results.run("serving_train", || {
        study = Some(e::fleet::study_system(p));
        String::new()
    });
    let study = study.expect("the serving_train experiment builds the system");

    let mut fleet_metrics = Vec::new();
    let report = results.run("fleet", || {
        let r = e::fleet::measure_with(p, &study);
        fleet_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in fleet_metrics {
        results.add_metric(name, value);
    }

    let mut serve_metrics = Vec::new();
    let report = results.run("serve", || {
        let r = e::serve::measure_with(p, &study);
        serve_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in serve_metrics {
        results.add_metric(name, value);
    }

    let mut frontend_metrics = Vec::new();
    let report = results.run("frontend", || {
        let r = e::frontend::measure_with(p, &study);
        frontend_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in frontend_metrics {
        results.add_metric(name, value);
    }

    let mut batching_metrics = Vec::new();
    let report = results.run("batching", || {
        let r = e::batching::measure_with(p, &study);
        batching_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in batching_metrics {
        results.add_metric(name, value);
    }

    let mut kernel_metrics = Vec::new();
    let report = results.run("kernel", || {
        let r = e::kernel::measure_with(p, &study);
        kernel_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in kernel_metrics {
        results.add_metric(name, value);
    }

    let mut obs_metrics = Vec::new();
    let report = results.run("obs", || {
        let r = e::obs::measure_with(p, &study);
        obs_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in obs_metrics {
        results.add_metric(name, value);
    }

    // Trace analytics is self-contained (synthetic shards, no trained
    // system): critical-path attribution, tail exemplars, burn rates.
    let mut analyze_metrics = Vec::new();
    let report = results.run("analyze", || {
        let r = e::analyze::measure();
        analyze_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in analyze_metrics {
        results.add_metric(name, value);
    }

    // Model parallelism trains its own system: its study network must
    // *overflow* its (shrunken) chip, unlike the serving studies'.
    let mut partition_metrics = Vec::new();
    let report = results.run("partition", || {
        let r = e::partition::measure(p);
        partition_metrics = r.metrics;
        r.markdown
    });
    println!("{report}");
    for (name, value) in partition_metrics {
        results.add_metric(name, value);
    }

    let path =
        std::env::var("SPARSENN_BENCH_JSON").unwrap_or_else(|_| "BENCH_results.json".to_string());
    match results.write_json(&path) {
        Ok(()) => eprintln!(
            "wrote {path} ({} experiments, {:.1}s total)",
            results.experiments.len(),
            results.total_seconds()
        ),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}
