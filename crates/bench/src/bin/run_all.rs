//! Runs every experiment in paper order (tables II & III first because
//! they are instantaneous, then the training-heavy figures).

use sparsenn_bench::experiments as e;

fn main() {
    let p = sparsenn_core::Profile::from_env();
    println!("# SparseNN reproduction — experiment suite (profile: {p})\n");
    print!("{}\n", e::table2::run());
    print!("{}\n", e::table3::run());
    print!("{}\n", e::fig6::run(p));
    print!("{}\n", e::table1::run(p));
    print!("{}\n", e::fig7::run(p));
    print!("{}\n", e::table4::run(p));
    print!("{}\n", e::ablations::noc());
    print!("{}\n", e::ablations::sched());
    print!("{}\n", e::ablations::lambda(p));
}
