//! Regenerates the paper's Fig. 6 (TER & sparsity vs rank).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::fig6::run(p));
}
