//! Compares two `BENCH_results.json` files: per-experiment wall-time
//! delta, modelled-metric delta, and regression flags — wall times that
//! grew, plus metrics that moved in their bad direction (goodput and
//! friends falling, latencies and shed rates growing).
//!
//! ```sh
//! cargo run --release -p sparsenn-bench --bin bench_diff -- \
//!     old/BENCH_results.json new/BENCH_results.json --threshold 25
//! ```
//!
//! `--json PATH` additionally writes the diff as a machine-readable
//! document (regression lists plus the rendered markdown) for
//! dashboards that track the perf trajectory without parsing tables.
//!
//! Exits non-zero when any experiment's wall time grew past the threshold
//! (default 25%); directional metric moves are flagged `WORSE` in the
//! table but do not affect the exit code (modelled metrics shift
//! legitimately when the study network changes). Wire it into CI as a
//! non-blocking step to make perf trends visible without gating merges
//! on noisy runners.

use sparsenn_bench::report::{diff_snapshots, BenchSnapshot};
use std::process::ExitCode;

const USAGE: &str = "usage: bench_diff OLD.json NEW.json [--threshold PCT] [--json PATH]";

fn load(path: &str) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 25.0f64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a percentage")?;
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).ok_or("--json needs a path")?.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };
    let diff = diff_snapshots(&load(old_path)?, &load(new_path)?, threshold);
    println!("{}", diff.markdown);
    if let Some(path) = json_path {
        std::fs::write(&path, diff.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(diff.regressions.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
