//! Fleet serving scaling study: throughput/latency across simulated
//! accelerator shards (beyond the paper — the "heavy traffic" north star).

fn main() {
    let p = sparsenn_core::Profile::from_env();
    print!("{}", sparsenn_bench::experiments::fleet::run(p));
}
