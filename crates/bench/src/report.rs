//! Machine-readable benchmark results.
//!
//! `run_all` writes a `BENCH_results.json` next to its markdown output so
//! the perf trajectory (wall time per experiment, profile, parallelism)
//! can be tracked across PRs without parsing markdown. The JSON is
//! hand-emitted — the workspace has no serde — and deliberately flat:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "profile": "fast",
//!   "workers": 8,
//!   "total_seconds": 123.4,
//!   "experiments": [
//!     { "name": "table2", "seconds": 0.001, "report_chars": 512 }
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

/// Timing record for one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Experiment name (the bin name: `table2`, `fig6`, …).
    pub name: String,
    /// Wall-clock seconds the experiment took.
    pub seconds: f64,
    /// Size of the produced markdown report, in characters.
    pub report_chars: usize,
}

/// Collector for a whole `run_all` sweep.
#[derive(Clone, Debug, Default)]
pub struct BenchResults {
    /// Active profile name (`fast` / `full`).
    pub profile: String,
    /// Per-experiment timings, in execution order.
    pub experiments: Vec<ExperimentResult>,
}

impl BenchResults {
    /// Starts a collector for the given profile.
    pub fn new(profile: impl Into<String>) -> Self {
        Self {
            profile: profile.into(),
            experiments: Vec::new(),
        }
    }

    /// Runs one experiment, printing its markdown report and recording its
    /// wall time. Returns the report so callers can post-process it.
    pub fn run(&mut self, name: &str, experiment: impl FnOnce() -> String) -> String {
        let t = Instant::now();
        let report = experiment();
        self.experiments.push(ExperimentResult {
            name: name.to_string(),
            seconds: t.elapsed().as_secs_f64(),
            report_chars: report.chars().count(),
        });
        report
    }

    /// Total wall-clock seconds across all recorded experiments.
    pub fn total_seconds(&self) -> f64 {
        self.experiments.iter().map(|e| e.seconds).sum()
    }

    /// Renders the results as a JSON document.
    pub fn to_json(&self) -> String {
        // The engine's own resolution, so the recorded value matches the
        // pool the experiments actually ran on.
        let workers = sparsenn_core::engine::default_worker_count();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape(&self.profile));
        let _ = writeln!(out, "  \"workers\": {workers},");
        let _ = writeln!(out, "  \"total_seconds\": {:.3},", self.total_seconds());
        let _ = writeln!(out, "  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"report_chars\": {} }}{comma}",
                escape(&e.name),
                e.seconds,
                e.report_chars,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_renders_json() {
        let mut r = BenchResults::new("fast");
        let report = r.run("table2", || "## Table II\n".to_string());
        assert!(report.starts_with("## Table II"));
        r.run("fig6", || "x".repeat(100));
        let json = r.to_json();
        assert!(json.contains("\"profile\": \"fast\""));
        assert!(json.contains("\"name\": \"table2\""));
        assert!(json.contains("\"report_chars\": 100"));
        assert!(json.contains("\"schema\": 1"));
        // Exactly one trailing comma structure: the list parses crudely.
        assert_eq!(json.matches("{ \"name\"").count(), 2);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn total_sums_experiments() {
        let mut r = BenchResults::new("fast");
        r.experiments.push(ExperimentResult {
            name: "a".into(),
            seconds: 1.5,
            report_chars: 0,
        });
        r.experiments.push(ExperimentResult {
            name: "b".into(),
            seconds: 0.5,
            report_chars: 0,
        });
        assert!((r.total_seconds() - 2.0).abs() < 1e-12);
    }
}
