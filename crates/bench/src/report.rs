//! Machine-readable benchmark results.
//!
//! `run_all` writes a `BENCH_results.json` next to its markdown output so
//! the perf trajectory (wall time per experiment, profile, parallelism,
//! modelled serving metrics) can be tracked across PRs without parsing
//! markdown. The JSON is hand-emitted and re-parsed by [`BenchSnapshot`]
//! (the workspace has no serde) and deliberately flat:
//!
//! ```json
//! {
//!   "schema": 5,
//!   "profile": "fast",
//!   "workers": 8,
//!   "total_seconds": 123.4,
//!   "experiments": [
//!     { "name": "table2", "seconds": 0.001, "report_chars": 512 }
//!   ],
//!   "metrics": [
//!     { "name": "serve.hetero.p95_us.first-idle@75pct", "value": 12.5 }
//!   ]
//! }
//! ```
//!
//! Schema 2 added `metrics` — named modelled quantities alongside host
//! wall times. Schema 3 replaces the fleet study's degenerate
//! `shards / latency` throughput metrics with the `serve` experiment's
//! virtual-time serving metrics (capacity, latency percentiles per
//! scheduler and offered load, closed-loop validation). Schema 4 adds
//! the `partition` experiment's model-parallel metrics
//! (`partition.latency_us.*` / `partition.energy_uj.*` /
//! `partition.comm_overhead_pct.*` per chip count, plus the
//! `partition.bit_identical` and `partition.single_chip_rejected`
//! oracle flags). Schema 5 adds the wavefront-pipelining metrics
//! (`partition.pipeline.wavefront_latency_us.*` /
//! `partition.pipeline.free_latency_us.*` /
//! `partition.pipeline.speedup.*` /
//! `partition.pipeline.comm_hidden_pct.*` per chip count, plus the
//! `partition.pipeline.overlap_sound` flag), so `bench-trend` tracks
//! the comm/compute-overlap win of the wavefront schedule. Schema 6
//! adds the production front end's `frontend.*` metrics (overload
//! goodput/shed-rate/high-p99 per admission policy, hedged-vs-unhedged
//! fault goodput, autoscaler activity, and the policy-sweep winner,
//! plus the `frontend.high_p99_within_slo`,
//! `frontend.low_absorbs_overload` and `frontend.hedged_beats_unhedged`
//! oracle flags). Schema 7 adds the cross-request batching study's
//! `batching.*` metrics (per-sample time and W-read amortization per
//! batch size from the real batched machine, saturated throughput and
//! light-load p99 per batch cap from the queue-aware simulator, plus
//! the `batching.bit_identical`, `batching.throughput_monotone` and
//! `batching.latency_cost_visible` oracle flags). Schema 8 adds the
//! observability plane's `obs.*` metrics (trace span/byte counts, the
//! `obs.trace_deterministic` / `obs.nesting_ok` / `obs.spans_covered`
//! oracle flags, and the tracing-overhead percentages with their
//! `obs.overhead_disabled_ok` / `obs.overhead_enabled_ok` oracles).
//! Schema 9 adds the trace-analytics `analyze.*` metrics
//! (critical-path attribution shares, tail-exemplar gaps, burn rates
//! and their oracle flags). Schema 10 adds the native-kernel study's
//! `kernel.*` metrics — **measured wall-clock**, not modelled time:
//! dense-vs-prescan per-sample latency and speedup per block size and
//! input sparsity, native-batch per-sample latency and W-word
//! amortization per batch size, the modelled-vs-measured cross-check,
//! the simulator hot-loop speedup, and the `kernel.bit_exact` /
//! `kernel.sim_hotloop_bit_identical` oracle flags — plus `profile.*`
//! wall-time phases from the `WallProfiler`.
//! The `bench_diff` bin
//! compares two such files (any schema — metrics diff generically by
//! name, and metrics present only in the old file get explicit
//! `removed` rows), flags wall-time regressions past a threshold, and
//! flags *directional* metric regressions: quantities named like
//! goodput/throughput/attainment/speedup must not fall, and latencies
//! (`*_us`), shed rates and error rates must not grow, each past the
//! same threshold. `bench_diff --json PATH` additionally writes the
//! diff itself as a machine-readable document ([`BenchDiff::to_json`]).

use sparsenn_obs::Span;
use std::fmt::Write as _;
use std::time::Instant;

/// Timing record for one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Experiment name (the bin name: `table2`, `fig6`, …).
    pub name: String,
    /// Wall-clock seconds the experiment took.
    pub seconds: f64,
    /// Size of the produced markdown report, in characters.
    pub report_chars: usize,
}

/// Collector for a whole `run_all` sweep.
#[derive(Clone, Debug, Default)]
pub struct BenchResults {
    /// Active profile name (`fast` / `full`).
    pub profile: String,
    /// Per-experiment timings, in execution order.
    pub experiments: Vec<ExperimentResult>,
    /// Named modelled metrics (e.g. fleet latency/throughput), flat.
    pub metrics: Vec<(String, f64)>,
}

impl BenchResults {
    /// Starts a collector for the given profile.
    pub fn new(profile: impl Into<String>) -> Self {
        Self {
            profile: profile.into(),
            experiments: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a named modelled metric for the JSON output.
    pub fn add_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Runs one experiment, printing its markdown report and recording its
    /// wall time. Returns the report so callers can post-process it.
    pub fn run(&mut self, name: &str, experiment: impl FnOnce() -> String) -> String {
        let t = Instant::now();
        let report = experiment();
        self.experiments.push(ExperimentResult {
            name: name.to_string(),
            seconds: t.elapsed().as_secs_f64(),
            report_chars: report.chars().count(),
        });
        report
    }

    /// Total wall-clock seconds across all recorded experiments.
    pub fn total_seconds(&self) -> f64 {
        self.experiments.iter().map(|e| e.seconds).sum()
    }

    /// Renders the results as a JSON document.
    pub fn to_json(&self) -> String {
        // The engine's own resolution, so the recorded value matches the
        // pool the experiments actually ran on.
        let workers = sparsenn_core::engine::default_worker_count();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 10,");
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape(&self.profile));
        let _ = writeln!(out, "  \"workers\": {workers},");
        let _ = writeln!(out, "  \"total_seconds\": {:.3},", self.total_seconds());
        let _ = writeln!(out, "  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"report_chars\": {} }}{comma}",
                escape(&e.name),
                e.seconds,
                e.report_chars,
            );
        }
        out.push_str("  ],\n  \"metrics\": [\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"value\": {value:.6} }}{comma}",
                escape(name),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A parsed `BENCH_results.json` — the read side of [`BenchResults`],
/// consumed by the `bench_diff` bin to compare two runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchSnapshot {
    /// Profile the run used.
    pub profile: String,
    /// Worker-pool size recorded by the run.
    pub workers: f64,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// `(name, seconds)` per experiment, in file order.
    pub experiments: Vec<(String, f64)>,
    /// `(name, value)` modelled metrics (empty for schema-1 files).
    pub metrics: Vec<(String, f64)>,
}

impl BenchSnapshot {
    /// Parses a `BENCH_results.json` document (schema 1 through 10).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax or shape problem.
    pub fn parse(json: &str) -> Result<Self, String> {
        let value = json::parse(json)?;
        let root = value.as_object().ok_or("top level must be an object")?;
        let get = |key: &str| json::lookup(root, key);
        let mut snap = BenchSnapshot {
            profile: get("profile")
                .and_then(json::JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            workers: get("workers")
                .and_then(json::JsonValue::as_f64)
                .unwrap_or(0.0),
            total_seconds: get("total_seconds")
                .and_then(json::JsonValue::as_f64)
                .unwrap_or(0.0),
            ..BenchSnapshot::default()
        };
        let named = |entry: &json::JsonValue, value_key: &str| -> Option<(String, f64)> {
            let obj = entry.as_object()?;
            Some((
                json::lookup(obj, "name")?.as_str()?.to_string(),
                json::lookup(obj, value_key)?.as_f64()?,
            ))
        };
        if let Some(json::JsonValue::Arr(entries)) = get("experiments") {
            snap.experiments = entries.iter().filter_map(|e| named(e, "seconds")).collect();
        }
        if let Some(json::JsonValue::Arr(entries)) = get("metrics") {
            snap.metrics = entries.iter().filter_map(|e| named(e, "value")).collect();
        }
        if snap.experiments.is_empty() {
            return Err("no experiments in file".into());
        }
        Ok(snap)
    }
}

/// Result of diffing two benchmark snapshots.
#[derive(Clone, Debug)]
pub struct BenchDiff {
    /// Rendered markdown comparison.
    pub markdown: String,
    /// Experiments whose wall time grew past the threshold.
    pub regressions: Vec<String>,
    /// Metrics that moved in their bad direction past the threshold.
    pub metric_regressions: Vec<String>,
}

impl BenchDiff {
    /// Renders the diff as a JSON document: the regression lists plus
    /// the rendered markdown, for dashboards that post-process
    /// `bench_diff --json` output.
    pub fn to_json(&self) -> String {
        let list = |items: &[String]| {
            items
                .iter()
                .map(|name| format!("\"{}\"", escape(name)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"regressions\": [{}],", list(&self.regressions));
        let _ = writeln!(
            out,
            "  \"metric_regressions\": [{}],",
            list(&self.metric_regressions)
        );
        let _ = writeln!(out, "  \"markdown\": \"{}\"", escape(&self.markdown));
        out.push_str("}\n");
        out
    }
}

/// Which way a modelled metric is allowed to move, inferred from its
/// name. Oracle flags (0/1) and counts with no inherent direction return
/// `None` and are reported without a regression check.
fn metric_direction(name: &str) -> Option<MetricDirection> {
    // Higher-better first: "goodput_rps" etc. would otherwise match the
    // lower-better "rate" family on nothing, but keep the precedence
    // explicit anyway.
    const HIGHER: [&str; 6] = [
        "goodput",
        "throughput",
        "attainment",
        "capacity",
        "speedup",
        "comm_hidden",
    ];
    const LOWER: [&str; 5] = ["_us", "shed_rate", "error", "overhead", "latency"];
    if HIGHER.iter().any(|k| name.contains(k)) {
        Some(MetricDirection::HigherBetter)
    } else if LOWER.iter().any(|k| name.contains(k)) {
        Some(MetricDirection::LowerBetter)
    } else {
        None
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricDirection {
    HigherBetter,
    LowerBetter,
}

/// Compares two snapshots: per-experiment wall-time delta plus metric
/// deltas, flagging experiments slower than `threshold_pct` percent and
/// metrics that moved in their bad direction past the same threshold.
/// Sub-50 ms wall-time baselines are never flagged (pure timer noise).
pub fn diff_snapshots(old: &BenchSnapshot, new: &BenchSnapshot, threshold_pct: f64) -> BenchDiff {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## bench-diff — old: profile {}, {:.1}s | new: profile {}, {:.1}s\n",
        old.profile, old.total_seconds, new.profile, new.total_seconds
    );
    if old.profile != new.profile {
        let _ = writeln!(
            out,
            "**Warning:** profiles differ; wall-time deltas are not comparable.\n"
        );
    }
    let mut regressions = Vec::new();
    let mut rows = Vec::new();
    for (name, new_s) in &new.experiments {
        let old_s = old
            .experiments
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s);
        let (old_col, delta_col, flag) = match old_s {
            Some(o) => {
                let delta = crate::pct_change(o, *new_s);
                let regressed = o >= 0.05 && delta > threshold_pct;
                if regressed {
                    regressions.push(name.clone());
                }
                (
                    crate::fmt_f(o, 3),
                    format!("{delta:+.1}%"),
                    if regressed { "REGRESSED" } else { "" }.to_string(),
                )
            }
            None => ("-".into(), "new".into(), String::new()),
        };
        rows.push(vec![
            name.clone(),
            old_col,
            crate::fmt_f(*new_s, 3),
            delta_col,
            flag,
        ]);
    }
    for (name, _) in &old.experiments {
        if !new.experiments.iter().any(|(n, _)| n == name) {
            rows.push(vec![
                name.clone(),
                "-".into(),
                "-".into(),
                "removed".into(),
                String::new(),
            ]);
        }
    }
    out.push_str(&crate::markdown_table(
        &["experiment", "old (s)", "new (s)", "delta", ""],
        &rows,
    ));
    let mut metric_regressions = Vec::new();
    if !new.metrics.is_empty() || !old.metrics.is_empty() {
        let _ = writeln!(out, "\n### Modelled metrics\n");
        let mut rows = Vec::new();
        for (name, new_v) in &new.metrics {
            let old_v = old.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
            let flag = match old_v {
                Some(o) => {
                    let delta = crate::pct_change(o, *new_v);
                    let worse = match metric_direction(name) {
                        Some(MetricDirection::HigherBetter) => -delta > threshold_pct,
                        Some(MetricDirection::LowerBetter) => delta > threshold_pct,
                        None => false,
                    };
                    if worse {
                        metric_regressions.push(name.clone());
                        "WORSE"
                    } else {
                        ""
                    }
                }
                None => "",
            };
            rows.push(vec![
                name.clone(),
                old_v.map_or("-".into(), |v| crate::fmt_f(v, 3)),
                crate::fmt_f(*new_v, 3),
                old_v.map_or("new".into(), |v| {
                    format!("{:+.1}%", crate::pct_change(v, *new_v))
                }),
                flag.to_string(),
            ]);
        }
        // Metrics only the old run had: a renamed or dropped metric must
        // show up as "removed", not silently vanish from the diff (the
        // same courtesy the experiments table pays above).
        for (name, old_v) in &old.metrics {
            if !new.metrics.iter().any(|(n, _)| n == name) {
                rows.push(vec![
                    name.clone(),
                    crate::fmt_f(*old_v, 3),
                    "-".into(),
                    "removed".into(),
                    String::new(),
                ]);
            }
        }
        out.push_str(&crate::markdown_table(
            &["metric", "old", "new", "delta", ""],
            &rows,
        ));
    }
    let _ = writeln!(
        out,
        "\n{} regression(s) past the {threshold_pct:.0}% wall-time threshold; \
         {} metric(s) moved the wrong way past the same threshold.",
        regressions.len(),
        metric_regressions.len()
    );
    BenchDiff {
        markdown: out,
        regressions,
        metric_regressions,
    }
}

/// A minimal JSON reader — just enough to re-read the documents this
/// workspace emits (objects, arrays, strings, numbers, booleans, null;
/// no serde in the offline workspace). Public so the trace-export tests
/// can validate the Chrome-trace JSON the obs exporter writes.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (always read as `f64`).
        Num(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<JsonValue>),
        /// An object, in source order.
        Obj(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// The object's fields, when this is an object.
        pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
            match self {
                JsonValue::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The string payload, when this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, when this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// First value for `key` in an object's fields.
    pub fn lookup<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b.get(*pos..*pos + len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos += len;
                }
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

/// Parses a Chrome trace-event JSON document (the
/// [`chrome_trace`](sparsenn_obs::chrome_trace) exporter's output) back
/// into a span list, so `trace_report` can analyze a recorded run from
/// disk. Inverse up to representation: complete `"X"` events and async
/// `"b"`/`"e"` pairs (matched FIFO on name/id/pid/tid) rebuild their
/// spans in event order; `"M"` metadata is skipped; attribute values
/// re-type by the closed [`AttrKey`](sparsenn_obs::AttrKey) vocabulary
/// (unknown keys, and string values outside the emitters' vocabulary,
/// are dropped rather than failing the parse).
pub fn parse_chrome_trace(src: &str) -> Result<Vec<Span>, String> {
    use sparsenn_obs::{AttrKey, AttrValue, SpanKind};
    use std::collections::HashMap;

    let root = json::parse(src)?;
    let fields = root.as_object().ok_or("top level must be an object")?;
    let events = match json::lookup(fields, "traceEvents") {
        Some(json::JsonValue::Arr(events)) => events,
        _ => return Err("missing traceEvents array".into()),
    };

    let kind_of = |name: &str| -> Option<SpanKind> {
        Some(match name {
            "request" => SpanKind::Request,
            "admit" => SpanKind::Admit,
            "degrade" => SpanKind::Degrade,
            "shed" => SpanKind::Shed,
            "queued" => SpanKind::Queued,
            "degrade_batch" => SpanKind::DegradeBatch,
            "hedge" => SpanKind::Hedge,
            "cancel" => SpanKind::Cancel,
            "retry" => SpanKind::Retry,
            "attempt" => SpanKind::Attempt,
            "batch_assembly" => SpanKind::BatchAssembly,
            "service" => SpanKind::Service,
            "broadcast" => SpanKind::Broadcast,
            "gather" => SpanKind::Gather,
            "vu" => SpanKind::Vu,
            "w" => SpanKind::W,
            _ => return None,
        })
    };
    let key_of = |name: &str| -> Option<AttrKey> {
        Some(match name {
            "attempt" => AttrKey::Attempt,
            "batch" => AttrKey::Batch,
            "batch_size" => AttrKey::BatchSize,
            "chip" => AttrKey::Chip,
            "class" => AttrKey::Class,
            "degraded" => AttrKey::Degraded,
            "factor" => AttrKey::Factor,
            "layer" => AttrKey::Layer,
            "macs" => AttrKey::Macs,
            "nnz_in" => AttrKey::NnzIn,
            "nnz_out" => AttrKey::NnzOut,
            "origin" => AttrKey::Origin,
            "outcome" => AttrKey::Outcome,
            "shard" => AttrKey::Shard,
            "size" => AttrKey::Size,
            "vu_cycles" => AttrKey::VuCycles,
            "w_cycles" => AttrKey::WCycles,
            "w_reads" => AttrKey::WReads,
            _ => return None,
        })
    };
    // Attribute values are stored as `&'static str`; symbolic values in
    // a trace come from the emitters' closed vocabularies.
    let intern = |s: &str| -> Option<&'static str> {
        const VOCAB: [&str; 10] = [
            "high",
            "low",
            "completed",
            "failed",
            "cancelled",
            "shed",
            "primary",
            "hedge",
            "retry",
            "?",
        ];
        VOCAB.iter().copied().find(|v| *v == s)
    };
    let attr_value = |key: AttrKey, v: &json::JsonValue| -> Option<AttrValue> {
        match v {
            json::JsonValue::Str(s) => intern(s).map(AttrValue::Str),
            json::JsonValue::Num(n) => {
                Some(if key != AttrKey::Factor && n.fract() == 0.0 && *n >= 0.0 {
                    AttrValue::U64(*n as u64)
                } else {
                    AttrValue::F64(*n)
                })
            }
            _ => None,
        }
    };

    let mut spans: Vec<Span> = Vec::new();
    // Open async begins awaiting their end, FIFO per (name, id, pid,
    // tid): the index of the provisional span pushed at 'b' time.
    let mut open: HashMap<(String, u64, u64, u64), Vec<usize>> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let ev = event
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let str_field = |key: &str| json::lookup(ev, key).and_then(json::JsonValue::as_str);
        let num_field = |key: &str| json::lookup(ev, key).and_then(json::JsonValue::as_f64);
        let ph = str_field("ph").ok_or_else(|| format!("event {i} has no ph"))?;
        if ph == "M" {
            continue;
        }
        let name = str_field("name").ok_or_else(|| format!("event {i} has no name"))?;
        let Some(kind) = kind_of(name) else { continue };
        let ts = num_field("ts").ok_or_else(|| format!("event {i} has no ts"))?;
        let pid = num_field("pid").unwrap_or(0.0) as u32;
        let tid = num_field("tid").unwrap_or(0.0) as u32;
        if ph == "e" {
            let id = num_field("id").unwrap_or(0.0) as u64;
            let slot = open
                .get_mut(&(name.to_string(), id, pid as u64, tid as u64))
                .and_then(|v| (!v.is_empty()).then(|| v.remove(0)))
                .ok_or_else(|| format!("unmatched async end at event {i}"))?;
            spans[slot].end_us = ts;
            continue;
        }
        let trace_id = json::lookup(ev, "args")
            .and_then(json::JsonValue::as_object)
            .and_then(|args| json::lookup(args, "trace_id"))
            .and_then(json::JsonValue::as_f64)
            .map(|v| v as u64)
            .or_else(|| num_field("id").map(|v| v as u64))
            .ok_or_else(|| format!("event {i} has no trace_id"))?;
        let end = match ph {
            "X" => ts + num_field("dur").unwrap_or(0.0),
            "b" => ts, // patched when the matching 'e' arrives
            other => return Err(format!("unsupported phase {other:?} at event {i}")),
        };
        let mut span = Span::new(trace_id, kind, pid, tid, ts, end);
        if let Some(args) = json::lookup(ev, "args").and_then(json::JsonValue::as_object) {
            for (key, value) in args {
                if key == "trace_id" || span.attrs.len() >= sparsenn_obs::MAX_ATTRS {
                    continue;
                }
                if let Some(k) = key_of(key) {
                    if let Some(v) = attr_value(k, value) {
                        span = span.attr(k, v);
                    }
                }
            }
        }
        if ph == "b" {
            open.entry((name.to_string(), trace_id, pid as u64, tid as u64))
                .or_default()
                .push(spans.len());
        }
        spans.push(span);
    }
    for indices in open.values() {
        if let Some(&i) = indices.first() {
            return Err(format!(
                "unclosed async span {:?} trace {}",
                spans[i].kind, spans[i].trace_id
            ));
        }
    }
    Ok(spans)
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_renders_json() {
        let mut r = BenchResults::new("fast");
        let report = r.run("table2", || "## Table II\n".to_string());
        assert!(report.starts_with("## Table II"));
        r.run("fig6", || "x".repeat(100));
        r.add_metric("fleet.latency_us_per_sample", 12.5);
        let json = r.to_json();
        assert!(json.contains("\"profile\": \"fast\""));
        assert!(json.contains("\"name\": \"table2\""));
        assert!(json.contains("\"report_chars\": 100"));
        assert!(json.contains("\"schema\": 10"));
        assert!(json.contains("\"value\": 12.500000"));
        assert_eq!(json.matches("{ \"name\"").count(), 3);
    }

    #[test]
    fn chrome_trace_roundtrips_through_the_parser() {
        use sparsenn_obs::{chrome_trace, track, AttrKey, SpanKind};
        let spans = vec![
            Span::new(
                3,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                0.0,
                30.0,
            )
            .attr(AttrKey::Class, "high")
            .attr(AttrKey::Outcome, "completed"),
            Span::new(
                3,
                SpanKind::Queued,
                track::FRONTEND,
                track::CONTROL,
                0.0,
                4.0,
            )
            .attr(AttrKey::Attempt, 0u64)
            .attr(AttrKey::Shard, 1u64),
            Span::new(3, SpanKind::Attempt, track::FLEET, 2, 4.0, 30.0)
                .attr(AttrKey::Attempt, 0u64)
                .attr(AttrKey::Outcome, "completed")
                .attr(AttrKey::Shard, 1u64),
            Span::new(3, SpanKind::Vu, track::MACHINE, 1, 4.0, 10.5)
                .attr(AttrKey::Layer, 1u64)
                .attr(AttrKey::Chip, 0u64),
        ];
        let parsed = parse_chrome_trace(&chrome_trace(&spans)).unwrap();
        // Async spans re-emerge first (their 'b' event's position), sync
        // spans in order; compare as sets keyed by (kind, start).
        assert_eq!(parsed.len(), spans.len());
        for s in &spans {
            assert!(
                parsed.iter().any(|p| p == s),
                "span {s:?} lost in the round trip\n{parsed:#?}"
            );
        }
        assert!(parse_chrome_trace("{}").is_err(), "no traceEvents");
        assert!(parse_chrome_trace("not json").is_err());
    }

    #[test]
    fn snapshot_roundtrips_the_emitted_json() {
        let mut r = BenchResults::new("fast");
        r.experiments.push(ExperimentResult {
            name: "table2".into(),
            seconds: 0.25,
            report_chars: 10,
        });
        r.experiments.push(ExperimentResult {
            name: "fig\"6\\".into(), // escaping survives the round trip
            seconds: 1.5,
            report_chars: 20,
        });
        r.add_metric("fleet.throughput_sps_4shards", 1234.5);
        let snap = BenchSnapshot::parse(&r.to_json()).unwrap();
        assert_eq!(snap.profile, "fast");
        assert_eq!(snap.experiments.len(), 2);
        assert_eq!(snap.experiments[0], ("table2".to_string(), 0.25));
        assert_eq!(snap.experiments[1].0, "fig\"6\\");
        assert_eq!(snap.metrics.len(), 1);
        assert!((snap.metrics[0].1 - 1234.5).abs() < 1e-9);
        assert!((snap.total_seconds - 1.75).abs() < 1e-9);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(BenchSnapshot::parse("not json").is_err());
        assert!(BenchSnapshot::parse("[1, 2]").is_err());
        assert!(
            BenchSnapshot::parse("{\"schema\": 2}").is_err(),
            "no experiments"
        );
        assert!(BenchSnapshot::parse("{} trailing").is_err());
    }

    fn snap(pairs: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            profile: "fast".into(),
            experiments: pairs.iter().map(|&(n, s)| (n.to_string(), s)).collect(),
            total_seconds: pairs.iter().map(|&(_, s)| s).sum(),
            ..BenchSnapshot::default()
        }
    }

    #[test]
    fn diff_flags_only_real_regressions() {
        let old = snap(&[("fig6", 1.0), ("table2", 0.001), ("gone", 1.0)]);
        let new = snap(&[("fig6", 1.5), ("table2", 0.01), ("fresh", 2.0)]);
        let diff = diff_snapshots(&old, &new, 20.0);
        // fig6 +50% regressed; table2 is 10× slower but under the 50 ms
        // noise floor; "fresh" and "gone" are informational.
        assert_eq!(diff.regressions, vec!["fig6".to_string()]);
        assert!(diff.markdown.contains("REGRESSED"));
        assert!(diff.markdown.contains("new"));
        assert!(diff.markdown.contains("removed"));
        // Within threshold: no flags.
        let calm = diff_snapshots(&old, &old, 20.0);
        assert!(calm.regressions.is_empty());
        assert!(calm.metric_regressions.is_empty());
    }

    #[test]
    fn diff_flags_directional_metric_regressions() {
        let mut old = snap(&[("frontend", 1.0)]);
        old.metrics = vec![
            ("frontend.overload.goodput_rps.bounded".into(), 1000.0),
            ("frontend.overload.high_p99_us.bounded".into(), 100.0),
            ("serve.hetero.p95_us.first-idle@75pct".into(), 50.0),
            ("frontend.hedged_beats_unhedged".into(), 1.0),
        ];
        let mut new = old.clone();
        new.metrics = vec![
            // Goodput fell 50%: higher-better, regressed.
            ("frontend.overload.goodput_rps.bounded".into(), 500.0),
            // p99 grew 50%: lower-better, regressed.
            ("frontend.overload.high_p99_us.bounded".into(), 150.0),
            // p95 *improved*: no flag.
            ("serve.hetero.p95_us.first-idle@75pct".into(), 25.0),
            // Oracle flag has no direction keyword: never flagged here.
            ("frontend.hedged_beats_unhedged".into(), 0.0),
        ];
        let diff = diff_snapshots(&old, &new, 20.0);
        assert_eq!(
            diff.metric_regressions,
            vec![
                "frontend.overload.goodput_rps.bounded".to_string(),
                "frontend.overload.high_p99_us.bounded".to_string(),
            ]
        );
        assert!(diff.markdown.contains("WORSE"));
        assert!(diff.regressions.is_empty(), "wall time was unchanged");
    }

    #[test]
    fn diff_reports_removed_metrics() {
        let mut old = snap(&[("bench", 1.0)]);
        old.metrics = vec![
            ("batching.throughput_rps.B4@sat".into(), 200_000.0),
            ("frontend.legacy_metric".into(), 7.0),
        ];
        let mut new = old.clone();
        new.metrics = vec![("batching.throughput_rps.B4@sat".into(), 210_000.0)];
        let diff = diff_snapshots(&old, &new, 20.0);
        // The dropped metric gets an explicit row instead of vanishing.
        assert!(diff.markdown.contains("frontend.legacy_metric"));
        assert!(diff.markdown.contains("removed"));
        // A removed metric is informational, never a regression.
        assert!(diff.metric_regressions.is_empty());

        // And a metrics-only-in-old file still renders the section.
        new.metrics.clear();
        let diff = diff_snapshots(&old, &new, 20.0);
        assert!(diff.markdown.contains("### Modelled metrics"));
        assert!(diff.markdown.contains("batching.throughput_rps.B4@sat"));
    }

    #[test]
    fn metric_direction_classifies_by_name() {
        assert_eq!(
            metric_direction("frontend.sweep.best_goodput_rps"),
            Some(MetricDirection::HigherBetter)
        );
        assert_eq!(
            metric_direction("partition.pipeline.speedup.4chips"),
            Some(MetricDirection::HigherBetter)
        );
        assert_eq!(
            metric_direction("serve.bursty.p99_us.least-queued"),
            Some(MetricDirection::LowerBetter)
        );
        assert_eq!(
            metric_direction("frontend.overload.shed_rate.bounded"),
            Some(MetricDirection::LowerBetter)
        );
        assert_eq!(metric_direction("frontend.autoscale.scale_outs"), None);
        assert_eq!(metric_direction("serve.closed_loop_matches_model"), None);
        // Schema 10: the kernel's measured wall-clock metrics diff
        // directionally too — latencies must not grow, speedups not fall.
        assert_eq!(
            metric_direction("kernel.prescan_us.bs16"),
            Some(MetricDirection::LowerBetter)
        );
        assert_eq!(
            metric_direction("kernel.batch_per_sample_us.B4"),
            Some(MetricDirection::LowerBetter)
        );
        assert_eq!(
            metric_direction("kernel.speedup_at_paper_sparsity"),
            Some(MetricDirection::HigherBetter)
        );
        assert_eq!(metric_direction("kernel.bit_exact"), None);
    }

    #[test]
    fn diff_json_roundtrips_through_the_parser() {
        let old = snap(&[("fig6", 1.0)]);
        let new = snap(&[("fig6", 2.0)]);
        let diff = diff_snapshots(&old, &new, 20.0);
        let value = json::parse(&diff.to_json()).expect("diff JSON parses");
        let root = value.as_object().expect("object");
        let regs = match json::lookup(root, "regressions") {
            Some(json::JsonValue::Arr(items)) => items.clone(),
            other => panic!("regressions must be an array, got {other:?}"),
        };
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].as_str(), Some("fig6"));
        assert!(json::lookup(root, "markdown")
            .and_then(json::JsonValue::as_str)
            .expect("markdown string")
            .contains("REGRESSED"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn total_sums_experiments() {
        let mut r = BenchResults::new("fast");
        r.experiments.push(ExperimentResult {
            name: "a".into(),
            seconds: 1.5,
            report_chars: 0,
        });
        r.experiments.push(ExperimentResult {
            name: "b".into(),
            seconds: 0.5,
            report_chars: 0,
        });
        assert!((r.total_seconds() - 2.0).abs() < 1e-12);
    }
}
