//! Cross-request batching study (beyond the paper — ROADMAP serving
//! north star): what the batch-native execution path buys and costs.
//!
//! Two measurements, both anchored in the real cycle-accurate machine:
//!
//! 1. **Amortization** — `CycleAccurateBackend::run_batch` on real test
//!    images for B = 1..=8: per-sample time and the W-read amortization
//!    factor (union-pass W reads vs B serial passes), plus the
//!    bit-identity oracle (every per-sample record in every batch must
//!    equal its serial run exactly — batching is purely a timing/energy
//!    decision, never a numerics one).
//! 2. **The serving knee** — the measured per-batch-size service table
//!    feeds [`simulate_batched`]: at a saturating offered load, shard
//!    throughput rises with the batch cap (the amortization win); at a
//!    light load, tail latency rises with it (requests wait for fills or
//!    deadlines). The pair is the throughput/latency trade an operator
//!    tunes `BatchPolicy` against.

use crate::{fmt_f, markdown_table};
use sparsenn_core::engine::{BatchPolicy, CycleAccurateBackend, FirstIdle, InferenceBackend};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::numeric::Q6_10;
use sparsenn_core::Profile;
use sparsenn_serve::{simulate_batched, BatchShardSpec, MetricsMode, Workload};
use std::fmt::Write as _;

/// Largest batch the study measures.
const MAX_BATCH: usize = 8;

/// Measured batching results plus named metrics for `BENCH_results.json`.
pub struct BatchingReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Runs the batching study, training its own
/// [`study_system`](super::fleet::study_system).
pub fn measure(p: Profile) -> BatchingReport {
    measure_with(p, &super::fleet::study_system(p))
}

/// Runs the batching study on an already-trained system (shared with the
/// other serving studies by `run_all`).
pub fn measure_with(p: Profile, sys: &sparsenn_core::TrainedSystem) -> BatchingReport {
    let backend = CycleAccurateBackend::new(sys.machine().clone());
    let net = sys.fixed();
    let test = &sys.split().test;
    let inputs: Vec<Vec<Q6_10>> = (0..MAX_BATCH)
        .map(|i| net.quantize_input(test.image(i % test.len())))
        .collect();

    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(out, "## Cross-request batching (profile: {p})\n");

    // — Amortization on the real machine, plus the bit-identity oracle —
    let serial: Vec<_> = inputs
        .iter()
        .map(|x| {
            backend
                .run(net, x, UvMode::On)
                .expect("the study network fits the machine")
        })
        .collect();
    let serial_us = serial[0].time_us();
    let mut batch_service_us = Vec::with_capacity(MAX_BATCH);
    let mut bit_identical = true;
    let mut rows = Vec::new();
    for b in 1..=MAX_BATCH {
        let rec = backend
            .run_batch(net, &inputs[..b], UvMode::On)
            .expect("the study network fits the machine");
        bit_identical &= rec
            .records
            .iter()
            .zip(&serial[..b])
            .all(|(batched, serial)| batched == serial);
        batch_service_us.push(rec.batch_time_us);
        rows.push(vec![
            b.to_string(),
            fmt_f(rec.batch_time_us, 2),
            fmt_f(rec.mean_time_us(), 2),
            fmt_f(rec.serial_time_us() / rec.batch_time_us.max(1e-12), 2),
            fmt_f(rec.w_read_amortization(), 2),
        ]);
        metrics.push((format!("batching.per_sample_us.B{b}"), rec.mean_time_us()));
        metrics.push((
            format!("batching.w_read_amortization.B{b}"),
            rec.w_read_amortization(),
        ));
    }
    let _ = writeln!(
        out,
        "### Machine-level amortization: `run_batch` on real test images\n"
    );
    out.push_str(&markdown_table(
        &[
            "B",
            "batch (µs)",
            "µs/sample",
            "speedup vs serial",
            "W-read amortization",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nbatched execution bit-identical to the serial oracle across \
         B=1..={MAX_BATCH}: {}\n",
        if bit_identical { "yes" } else { "NO — BUG" },
    );
    metrics.push((
        "batching.bit_identical".into(),
        if bit_identical { 1.0 } else { 0.0 },
    ));

    // — The serving knee on the measured batch-service table —
    let spec = BatchShardSpec::with_table("machine", batch_service_us.clone());
    let serial_capacity = 1e6 / batch_service_us[0].max(1e-12);
    let requests = 3000;
    let deadline_us = 40.0 * serial_us;
    let caps = [1usize, 2, 4, 8];
    let run = |cap: usize, rate: f64, seed: u64| {
        simulate_batched(
            std::slice::from_ref(&spec),
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: cap,
                deadline_us,
            },
            &Workload::Poisson {
                rate_rps: rate,
                requests,
                seed,
            },
            MetricsMode::Streaming,
        )
        .expect("valid batching simulation")
    };
    // Saturating load: 2.5x the serial capacity, so every cap's queue
    // stays backed up and throughput measures *capacity*, not arrivals.
    let mut sat = Vec::new();
    // Light load: 40% of serial capacity — batching buys nothing here
    // and its hold windows show up as tail latency.
    let mut light = Vec::new();
    let mut rows = Vec::new();
    for &cap in &caps {
        let s = run(cap, serial_capacity * 2.5, 4242);
        let l = run(cap, serial_capacity * 0.4, 4242);
        rows.push(vec![
            cap.to_string(),
            fmt_f(s.throughput_rps, 0),
            fmt_f(s.mean_batch, 2),
            fmt_f(l.latency.p99_us, 1),
            fmt_f(l.mean_batch, 2),
        ]);
        metrics.push((
            format!("batching.throughput_rps.B{cap}@sat"),
            s.throughput_rps,
        ));
        metrics.push((format!("batching.p99_us.B{cap}@light"), l.latency.p99_us));
        sat.push(s);
        light.push(l);
    }
    let monotone = sat
        .windows(2)
        .all(|w| w[1].throughput_rps > w[0].throughput_rps);
    let latency_cost = light.last().expect("caps non-empty").latency.p99_us
        > light.first().expect("caps non-empty").latency.p99_us;
    let _ = writeln!(
        out,
        "### The serving knee: one shard, SizeOrDeadline(B, {:.0} µs), \
         measured batch-service table\n",
        deadline_us,
    );
    out.push_str(&markdown_table(
        &[
            "batch cap",
            "throughput @2.5x load (rps)",
            "mean batch @2.5x",
            "p99 @0.4x load (µs)",
            "mean batch @0.4x",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nThroughput per shard strictly improves with the batch cap under \
         saturation — {}; the hold window costs light-load tail latency \
         (p99 {:.1} µs at B=8 vs {:.1} µs at B=1) — {}.",
        if monotone {
            "yes"
        } else {
            "NO — investigate"
        },
        light.last().expect("caps non-empty").latency.p99_us,
        light.first().expect("caps non-empty").latency.p99_us,
        if latency_cost {
            "visible"
        } else {
            "NOT VISIBLE — investigate"
        },
    );
    metrics.push((
        "batching.throughput_monotone".into(),
        if monotone { 1.0 } else { 0.0 },
    ));
    metrics.push((
        "batching.latency_cost_visible".into(),
        if latency_cost { 1.0 } else { 0.0 },
    ));

    BatchingReport {
        markdown: out,
        metrics,
    }
}

/// Renders the batching report (markdown only — the `batching` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
