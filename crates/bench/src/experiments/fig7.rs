//! Fig. 7: execution cycles and power per hidden layer on the three
//! datasets, 5-layer DNN, with the predictor enabled (`uv_on`) and
//! disabled (`uv_off` = EIE baseline).

use crate::{fmt_f, markdown_table, pct_change};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::{Profile, SystemBuilder, TrainedSystem, TrainingAlgorithm};
use std::fmt::Write as _;

/// Measured numbers for one hidden layer in one mode.
#[derive(Clone, Copy, Debug)]
pub struct LayerPoint {
    /// Mean execution cycles per sample.
    pub cycles: f64,
    /// Estimated power, mW.
    pub power_mw: f64,
    /// Estimated energy per sample, µJ.
    pub energy_uj: f64,
}

/// Measured Fig. 7 data for one dataset.
#[derive(Clone, Debug)]
pub struct Fig7Series {
    /// Dataset variant.
    pub kind: DatasetKind,
    /// Per hidden layer: `(uv_off, uv_on)`.
    pub layers: Vec<(LayerPoint, LayerPoint)>,
}

/// Trains the 5-layer end-to-end network for one dataset (shared with
/// Table IV so the measurement base matches the paper's).
pub fn trained_system(kind: DatasetKind, p: Profile) -> TrainedSystem {
    // Dense BG-RAND inputs roughly double the per-sample gradient norm of
    // the sparse variants; a gentler step keeps all hidden layers alive.
    let cfg = sparsenn_core::train::TrainConfig {
        epochs: p.hw_epochs(),
        lr: 0.01,
        ..Default::default()
    };
    SystemBuilder::new(kind)
        .dims(&p.hw_dims_5layer())
        .rank(p.table_rank())
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(p.hw_train_samples())
        .test_samples(p.test_samples())
        .train_config(cfg)
        .build()
}

/// Simulates both modes and collects per-hidden-layer cycles and power.
pub fn measure(sys: &TrainedSystem, p: Profile) -> Fig7Series {
    let hidden = sys.network().predictors().len();
    let off = sys
        .simulate_batch(p.sim_samples(), UvMode::Off)
        .expect("the paper-shaped network fits the default machine");
    let on = sys
        .simulate_batch(p.sim_samples(), UvMode::On)
        .expect("the paper-shaped network fits the default machine");
    // `LayerSummary` reports per-sample means directly (`energy_uj` is
    // already `power.energy_uj / samples`).
    let point = |s: &sparsenn_core::LayerSummary| LayerPoint {
        cycles: s.cycles,
        power_mw: s.power.total_mw,
        energy_uj: s.energy_uj,
    };
    Fig7Series {
        kind: sys.kind(),
        layers: (0..hidden)
            .map(|l| (point(&off.layers[l]), point(&on.layers[l])))
            .collect(),
    }
}

/// Renders the Fig. 7 report for all three datasets.
pub fn run(p: Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fig. 7 — execution cycles & power per hidden layer (profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "Paper shape to reproduce: BG-RAND's 1st hidden layer is the most expensive \
         (dense inputs); uv_on cuts cycles 10–31% on the 1st hidden layer and up to \
         70% on the deeper layers (predictor-induced input sparsity compounds); \
         power drops roughly in half; energy per inference drops even more.\n"
    );
    let mut rows = Vec::new();
    for kind in [DatasetKind::Basic, DatasetKind::BgRand, DatasetKind::Rot] {
        let sys = trained_system(kind, p);
        let series = measure(&sys, p);
        for (l, (off, on)) in series.layers.iter().enumerate() {
            rows.push(vec![
                format!("{kind}"),
                format!("hidden {}", l + 1),
                fmt_f(off.cycles, 0),
                fmt_f(on.cycles, 0),
                format!("{:+.1}%", pct_change(off.cycles, on.cycles)),
                fmt_f(off.power_mw, 0),
                fmt_f(on.power_mw, 0),
                format!("{:+.1}%", pct_change(off.power_mw, on.power_mw)),
                fmt_f(off.energy_uj, 2),
                fmt_f(on.energy_uj, 2),
                format!("{:+.1}%", pct_change(off.energy_uj, on.energy_uj)),
            ]);
        }
    }
    out.push_str(&markdown_table(
        &[
            "dataset",
            "layer",
            "cycles uv_off",
            "cycles uv_on",
            "delta-cycles",
            "power uv_off (mW)",
            "power uv_on (mW)",
            "delta-power",
            "energy uv_off (uJ)",
            "energy uv_on (uJ)",
            "delta-energy",
        ],
        &rows,
    ));
    out
}
