//! Model parallelism: serving an MLP too big for one chip's W memory
//! (beyond the paper — the ROADMAP's weight-sharding gap).
//!
//! The study shrinks the per-chip W memory until the 3-layer study
//! network's first layer overflows a single chip (`Machine` rejects it
//! with the typed `WMemoryOverflow`), then serves the same network
//! through [`PartitionedMachine`](sparsenn_core::engine::PartitionedMachine)
//! on 2/4/8 chips under all three schedules — serialized, wavefront
//! pipelined, and the
//! [`InterChipConfig::free`](sparsenn_core::partition::InterChipConfig::free)
//! no-comm ablation — reporting comm-inclusive latency/energy, the
//! comm overhead, and the pipeline speedup (how much of that overhead
//! the wavefront schedule hides). The bit-identity oracle — partitioned
//! outputs/masks equal the single big chip's — is re-checked on a
//! full-size chip and reported as a metric CI asserts on, as is the
//! overlap soundness flag (wavefront strictly faster, never below the
//! free bound, energy untouched).

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::engine::{CycleAccurateBackend, InferenceBackend, PartitionedMachine};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::partition::{InterChipConfig, PipelineMode};
use sparsenn_core::sim::MachineConfig;
use sparsenn_core::{Profile, SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};
use std::fmt::Write as _;

/// Measured multi-chip scaling plus named metrics for
/// `BENCH_results.json` (schema 5).
pub struct PartitionReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// A chip whose W memory holds exactly the 2-chip tile of a
/// `hidden × 784` first layer — so one chip rejects the network and two
/// carry it with no slack.
fn undersized_chip(hidden: usize) -> MachineConfig {
    let cfg = MachineConfig::default();
    let two_chip_tile_words = hidden.div_ceil(2).div_ceil(cfg.num_pes()) * 784;
    MachineConfig {
        w_mem_bytes: two_chip_tile_words * 2,
        ..cfg
    }
}

/// Trains the study system on the undersized chip.
pub fn study_system(p: Profile) -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, p.hidden(), 10])
        .rank(p.table_rank().min(8))
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(p.hw_train_samples() / 2)
        .test_samples(p.test_samples())
        .epochs(2)
        .machine(undersized_chip(p.hidden()))
        .build()
}

/// Runs the partition study, training its own [`study_system`].
pub fn measure(p: Profile) -> PartitionReport {
    measure_with(p, &study_system(p))
}

/// Runs the partition study on an already-trained (oversized) system.
pub fn measure_with(p: Profile, sys: &TrainedSystem) -> PartitionReport {
    let chip = *sys.machine().config();
    let dims = sys.network().mlp().dims();
    let batch = p.sim_samples().min(sys.split().test.len());
    let mut metrics = Vec::new();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Model parallelism — an MLP bigger than one chip's W memory (profile: {p})\n"
    );

    // 1. One chip must reject the network with the typed overflow.
    let rejected = matches!(
        sys.session().simulate_batch(batch, UvMode::On),
        Err(SparseNnError::WMemoryOverflow { layer: 0, .. })
    );
    let cap = chip.w_capacity_words_per_pe();
    let need = dims[1].div_ceil(chip.num_pes()) * dims[0];
    let _ = writeln!(
        out,
        "[{}, {}, {}] network on a chip with {} W words per PE (layer 0 needs {need}): \
         single-chip serving rejected with `WMemoryOverflow`: {}.\n",
        dims[0],
        dims[1],
        dims[2],
        cap,
        if rejected { "yes" } else { "NO — BUG" }
    );
    metrics.push((
        "partition.single_chip_rejected".to_string(),
        f64::from(u8::from(rejected)),
    ));

    // 2. The 2/4/8-chip sweep under all three schedules: serialized
    //    (broadcast + slowest chip + gather, end to end), wavefront
    //    (slice-granular overlap of comm with compute), and the
    //    free-link wavefront ablation (identical bits, zero transfer
    //    cost — the no-comm lower bound).
    let mut rows = Vec::new();
    let mut pipe_rows = Vec::new();
    let mut overlap_sound = true;
    for chips in [2usize, 4, 8] {
        let serve = |icc: InterChipConfig, pipeline: PipelineMode| {
            let backend =
                PartitionedMachine::with_pipeline(sys.fixed(), chip, chips, icc, pipeline)
                    .expect("the sweep sizes are plannable");
            sys.session_with(Box::new(backend))
                .simulate_batch(batch, UvMode::On)
                .expect("partitioned serving must complete")
        };
        let costed = serve(InterChipConfig::default(), PipelineMode::Serialized);
        let wavefront = serve(InterChipConfig::default(), PipelineMode::Wavefront);
        let free = serve(InterChipConfig::free(), PipelineMode::Wavefront);
        // The schema-4 comm metrics keep their PR-4 meaning: both terms
        // on the *serialized* schedule, so the difference is purely the
        // interconnect (the wavefront free run also harvests per-layer
        // drain slack, which is not communication).
        let free_serialized = serve(InterChipConfig::free(), PipelineMode::Serialized);
        let comm_us = costed.time_us() - free_serialized.time_us();
        let comm_pct = if costed.time_us() > 0.0 {
            100.0 * comm_us / costed.time_us()
        } else {
            0.0
        };
        rows.push(vec![
            chips.to_string(),
            fmt_f(costed.time_us(), 2),
            fmt_f(costed.energy_uj(), 2),
            fmt_f(comm_us, 2),
            fmt_f(comm_pct, 1),
        ]);
        metrics.push((
            format!("partition.latency_us.{chips}chips"),
            costed.time_us(),
        ));
        metrics.push((
            format!("partition.energy_uj.{chips}chips"),
            costed.energy_uj(),
        ));
        metrics.push((
            format!("partition.comm_overhead_pct.{chips}chips"),
            comm_pct,
        ));

        // Wavefront pipelining: how much of the comm overhead the
        // overlapped schedule hides. hidden% = share of the
        // serialized−free gap recovered by pipelining.
        let speedup = if wavefront.time_us() > 0.0 {
            costed.time_us() / wavefront.time_us()
        } else {
            1.0
        };
        let hidden_pct = if comm_us > 0.0 {
            100.0 * (costed.time_us() - wavefront.time_us()) / comm_us
        } else {
            0.0
        };
        overlap_sound &= wavefront.time_us() < costed.time_us()
            && wavefront.time_us() >= free.time_us() - 1e-9
            && wavefront.energy_uj() == costed.energy_uj();
        pipe_rows.push(vec![
            chips.to_string(),
            fmt_f(costed.time_us(), 2),
            fmt_f(wavefront.time_us(), 2),
            fmt_f(free.time_us(), 2),
            fmt_f(speedup, 3),
            fmt_f(hidden_pct, 1),
        ]);
        metrics.push((
            format!("partition.pipeline.wavefront_latency_us.{chips}chips"),
            wavefront.time_us(),
        ));
        metrics.push((
            format!("partition.pipeline.free_latency_us.{chips}chips"),
            free.time_us(),
        ));
        metrics.push((format!("partition.pipeline.speedup.{chips}chips"), speedup));
        metrics.push((
            format!("partition.pipeline.comm_hidden_pct.{chips}chips"),
            hidden_pct,
        ));
    }
    let _ = writeln!(
        out,
        "{batch} samples, uv_on; latency/energy are comm-inclusive per-sample means \
         (serialized critical path = broadcast + slowest chip + gather; energy sums every \
         chip's events plus inter-chip flit-hops).\n"
    );
    out.push_str(&markdown_table(
        &[
            "chips",
            "latency/sample (us)",
            "energy/sample (uJ)",
            "comm (us)",
            "comm overhead (%)",
        ],
        &rows,
    ));

    let _ = writeln!(
        out,
        "\n### Wavefront pipelining\n\nPer-sample latency under the three schedules — \
         serialized, wavefront (slices cross the fabric as rows become final, layers start \
         on arrival), and the free-link lower bound. Outputs, masks and energy are \
         bit-identical across schedules; only time moves.\n"
    );
    out.push_str(&markdown_table(
        &[
            "chips",
            "serialized (us)",
            "wavefront (us)",
            "free-link (us)",
            "speedup",
            "comm hidden (%)",
        ],
        &pipe_rows,
    ));
    let _ = writeln!(
        out,
        "\nwavefront strictly below serialized, never below free-link, energy identical: {}",
        if overlap_sound { "yes" } else { "NO — BUG" }
    );
    metrics.push((
        "partition.pipeline.overlap_sound".to_string(),
        f64::from(u8::from(overlap_sound)),
    ));

    // 3. Bit-identity oracle on a full-size chip (where a single machine
    //    can also hold the network).
    let big = MachineConfig::default();
    let single = CycleAccurateBackend::with_config(big);
    let partitioned = PartitionedMachine::new(sys.fixed(), big, 4, InterChipConfig::default())
        .expect("the default chip holds the study network");
    let mut identical = true;
    for i in 0..batch {
        let x = sys.fixed().quantize_input(sys.split().test.image(i));
        let a = single.run(sys.fixed(), &x, UvMode::On).expect("fits");
        let b = partitioned.run(sys.fixed(), &x, UvMode::On).expect("fits");
        identical &= a
            .layers
            .iter()
            .zip(&b.layers)
            .all(|(l, r)| l.output == r.output && l.mask == r.mask);
    }
    let _ = writeln!(
        out,
        "\nOn a full-size chip, 4-chip partitioned outputs and masks bit-identical to the \
         single machine over {batch} samples: {}",
        if identical { "yes" } else { "NO — BUG" }
    );
    metrics.push((
        "partition.bit_identical".to_string(),
        f64::from(u8::from(identical)),
    ));

    PartitionReport {
        markdown: out,
        metrics,
    }
}

/// Renders the partition report (markdown only — the `partition` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
