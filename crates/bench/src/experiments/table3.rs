//! Table III: area breakdown by component and by module.

use crate::{fmt_f, markdown_table};
use sparsenn_core::energy::area::area_report;
use sparsenn_core::sim::MachineConfig;
use std::fmt::Write as _;

/// Paper-reported Table III values, µm² (converted to mm² below).
const PAPER_TOTAL_MM2: f64 = 78.443_365;
const PAPER_COMB_MM2: f64 = 1.716_373;
const PAPER_BUFINV_MM2: f64 = 0.199_038;
const PAPER_NONCOMB_MM2: f64 = 2.068_996;
const PAPER_MACRO_MM2: f64 = 74.426_310;
const PAPER_PE_MM2: f64 = 1.216_457;
const PAPER_ROUTING_MM2: f64 = 0.590_062;

/// Renders the measured area breakdown next to the paper's.
pub fn run() -> String {
    let r = area_report(&MachineConfig::default());
    let row = |name: &str, paper: f64, ours: f64| {
        vec![
            name.to_string(),
            fmt_f(paper, 3),
            fmt_f(ours, 3),
            format!("{:+.1}%", crate::pct_change(paper, ours)),
        ]
    };
    let rows = vec![
        row("Total", PAPER_TOTAL_MM2, r.total_mm2),
        row("Combinational", PAPER_COMB_MM2, r.combinational_mm2),
        row("Buf/Inv", PAPER_BUFINV_MM2, r.buf_inv_mm2),
        row(
            "Non-combinational",
            PAPER_NONCOMB_MM2,
            r.non_combinational_mm2,
        ),
        row("Macro (Memory)", PAPER_MACRO_MM2, r.macro_mm2),
        row("Processing element (each)", PAPER_PE_MM2, r.pe_mm2),
        row("Routing logics", PAPER_ROUTING_MM2, r.routing_mm2),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "## Table III — area breakdown (mm²)\n");
    out.push_str(&markdown_table(
        &["module", "paper", "measured", "delta"],
        &rows,
    ));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Memory macros take {:.1}% of the die (paper: 94.8%); routing takes {:.2}% \
         (paper: <1%) — the paper's headline claims hold.",
        100.0 * r.macro_fraction(),
        100.0 * r.routing_fraction(),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn measured_area_is_close_to_paper() {
        let s = super::run();
        assert!(s.contains("Macro (Memory)"));
        // The headline claims must hold in the rendered report.
        assert!(s.contains("paper's headline claims hold"));
    }
}
