//! The native-kernel study (beyond the paper — ROADMAP item 3): measured
//! wall-clock for the two-stage prescan + block-skip CPU kernel.
//!
//! Every other experiment reports *modelled* time (cycles × clock). This
//! one reports what the host CPU actually does, and gates two oracles on
//! it:
//!
//! 1. **Bit-exactness** — kernel outputs (dense, prescan, batched) equal
//!    the golden fixed-point model bit for bit in both UV modes.
//! 2. **Speedup at paper-level sparsity** — on the study system's real
//!    test images (input sparsity from the glyphs, output sparsity from
//!    the trained UV predictor), the prescan strategy beats the dense
//!    baseline — same packed layout, same accumulator — by ≥ 2×
//!    measured wall-clock per sample.
//!
//! Around the oracles: a block-size sweep, a synthetic input-sparsity
//! sweep (speedup vs zeros), native `run_batch` per-sample latency for
//! B = 1..=8, the SimdBackend modelled-vs-measured cross-check, a
//! measured [`ShardSpec`] service table, and the cycle-accurate
//! simulator's own hot-loop before/after (mask-word vs per-element
//! scanning — same bits, same cycles, less host time). All wall time is
//! charged to a [`WallProfiler`] and exported as `profile.*` metrics.

use crate::{fmt_f, markdown_table};
use sparsenn_core::engine::{InferenceBackend, KernelBackend, SimdBackend};
use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_core::numeric::Q6_10;
use sparsenn_core::sim::simd::SimdPlatform;
use sparsenn_core::sim::{Machine, MachineConfig, ScanMode};
use sparsenn_core::Profile;
use sparsenn_kernel::{SparseKernel, Strategy, DEFAULT_BLOCK};
use sparsenn_obs::WallProfiler;
use sparsenn_serve::ShardSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Largest batch the study measures.
const MAX_BATCH: usize = 8;

/// Measured kernel results plus named metrics for `BENCH_results.json`.
pub struct KernelReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Timing reps per measurement (min-of-reps kills scheduler noise).
fn reps(p: Profile) -> usize {
    match p {
        Profile::Fast => 5,
        Profile::Full => 10,
    }
}

/// Min-of-`reps` wall time of `f`, microseconds.
fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Per-sample wall time of running `inputs` through `kernel` with the
/// given strategy, microseconds (min over `r` passes of the whole set).
fn per_sample_us(
    kernel: &SparseKernel,
    inputs: &[Vec<Q6_10>],
    mode: UvMode,
    strategy: Strategy,
    r: usize,
) -> f64 {
    let mut s = kernel.scratch();
    // Warm the scratch (first run grows the arenas).
    let _ = kernel.run(&inputs[0], mode, strategy, &mut s);
    time_us(r, || {
        for x in inputs {
            std::hint::black_box(kernel.run(x, mode, strategy, &mut s));
        }
    }) / inputs.len() as f64
}

/// Runs the kernel study, training its own
/// [`study_system`](super::fleet::study_system).
pub fn measure(p: Profile) -> KernelReport {
    measure_with(p, &super::fleet::study_system(p))
}

/// Runs the kernel study on an already-trained system (shared with the
/// serving studies by `run_all`).
pub fn measure_with(p: Profile, sys: &sparsenn_core::TrainedSystem) -> KernelReport {
    let r = reps(p);
    let net = sys.fixed();
    let test = &sys.split().test;
    let n_inputs = 16.min(test.len()).max(1);
    let inputs: Vec<Vec<Q6_10>> = (0..n_inputs)
        .map(|i| net.quantize_input(test.image(i)))
        .collect();

    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut prof = WallProfiler::new();
    let _ = writeln!(
        out,
        "## Native CPU kernel: measured wall-clock (profile: {p})\n"
    );

    // — Bit-exactness oracle first: the speed numbers mean nothing if the
    //   bits are wrong —
    let bit_exact = prof.time("kernel.oracle", || bit_exact_vs_golden(net, &inputs));
    let _ = writeln!(
        out,
        "kernel outputs bit-exact vs the golden fixed-point model \
         (both UV modes, dense/prescan/batch): {}\n",
        if bit_exact { "yes" } else { "NO — BUG" },
    );
    metrics.push(("kernel.bit_exact".into(), if bit_exact { 1.0 } else { 0.0 }));

    // — Dense vs prescan on the study system, across block sizes —
    let kernel_def = prof.time("kernel.pack", || SparseKernel::pack(net, DEFAULT_BLOCK));
    let dense_us = prof.time("kernel.dense", || {
        per_sample_us(&kernel_def, &inputs, UvMode::On, Strategy::Dense, r)
    });
    metrics.push(("kernel.dense_us".into(), dense_us));
    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for block in [8usize, 16, 32] {
        let k = if block == DEFAULT_BLOCK {
            kernel_def.clone()
        } else {
            prof.time("kernel.pack", || SparseKernel::pack(net, block))
        };
        let pre_us = prof.time("kernel.prescan", || {
            per_sample_us(&k, &inputs, UvMode::On, Strategy::Prescan, r)
        });
        if pre_us < best.1 {
            best = (block, pre_us);
        }
        rows.push(vec![
            block.to_string(),
            fmt_f(pre_us, 2),
            fmt_f(dense_us / pre_us.max(1e-12), 2),
        ]);
        metrics.push((format!("kernel.prescan_us.bs{block}"), pre_us));
        metrics.push((
            format!("kernel.speedup.bs{block}"),
            dense_us / pre_us.max(1e-12),
        ));
    }
    let default_speedup = dense_us
        / metrics
            .iter()
            .find(|(n, _)| n == &format!("kernel.prescan_us.bs{DEFAULT_BLOCK}"))
            .map(|(_, v)| *v)
            .unwrap_or(f64::INFINITY)
            .max(1e-12);
    let best_speedup = dense_us / best.1.max(1e-12);
    let _ = writeln!(
        out,
        "### Dense vs prescan on the study system (real test images, uv_on)\n\n\
         dense baseline (same packed layout, same accumulator): {} µs/sample\n",
        fmt_f(dense_us, 2),
    );
    out.push_str(&markdown_table(
        &["block size", "prescan (µs/sample)", "speedup vs dense"],
        &rows,
    ));
    // The oracle gates on the best measured block: block size is a tuning
    // knob (the default is itself set from this measurement), and the claim
    // under test is that the kernel *delivers* ≥ 2× at paper-level input
    // sparsity with a well-chosen block, on whatever host runs the bench.
    let _ = writeln!(
        out,
        "\nmeasured prescan speedup at paper-level sparsity ≥ 2×: {} \
         (best {}× at block {}, {}× at the default block size {DEFAULT_BLOCK})\n",
        if best_speedup >= 2.0 {
            "yes"
        } else {
            "NO — investigate"
        },
        fmt_f(best_speedup, 2),
        best.0,
        fmt_f(default_speedup, 2),
    );
    metrics.push(("kernel.speedup_at_paper_sparsity".into(), best_speedup));
    metrics.push(("kernel.speedup_at_default_block".into(), default_speedup));

    // — Synthetic input-sparsity sweep: where the win comes from —
    let _ = writeln!(
        out,
        "### Speedup vs input sparsity (synthetic inputs, default block)\n"
    );
    let mut rows = Vec::new();
    for sparsity in [0usize, 50, 90, 99] {
        let synth: Vec<Vec<Q6_10>> = (0..n_inputs)
            .map(|s| {
                let x: Vec<f32> = (0..net.layers()[0].cols())
                    .map(|i| {
                        // Deterministic scatter: keep ~(100-sparsity)% nonzero.
                        if (i * 7919 + s * 104729) % 100 < sparsity {
                            0.0
                        } else {
                            (((i + s) as f32) * 0.37).sin().abs() + 0.05
                        }
                    })
                    .collect();
                net.quantize_input(&x)
            })
            .collect();
        let d = prof.time("kernel.dense", || {
            per_sample_us(&kernel_def, &synth, UvMode::On, Strategy::Dense, r)
        });
        let pre = prof.time("kernel.prescan", || {
            per_sample_us(&kernel_def, &synth, UvMode::On, Strategy::Prescan, r)
        });
        rows.push(vec![
            format!("{sparsity}%"),
            fmt_f(d, 2),
            fmt_f(pre, 2),
            fmt_f(d / pre.max(1e-12), 2),
        ]);
        metrics.push((format!("kernel.speedup.s{sparsity}"), d / pre.max(1e-12)));
    }
    out.push_str(&markdown_table(
        &["input zeros", "dense (µs)", "prescan (µs)", "speedup"],
        &rows,
    ));

    // — Native batching: per-sample latency and W-word amortization —
    let _ = writeln!(out, "\n### Native `run_batch` (prescan, uv_on)\n");
    let mut scratch = kernel_def.scratch();
    let mut rows = Vec::new();
    for b in 1..=MAX_BATCH {
        let batch: Vec<Vec<Q6_10>> = (0..b).map(|i| inputs[i % inputs.len()].clone()).collect();
        let _ = kernel_def.run_batch(&batch, UvMode::On, Strategy::Prescan, &mut scratch);
        let batch_us = prof.time("kernel.batch", || {
            time_us(r, || {
                std::hint::black_box(kernel_def.run_batch(
                    &batch,
                    UvMode::On,
                    Strategy::Prescan,
                    &mut scratch,
                ));
            })
        });
        let rec = kernel_def.run_batch(&batch, UvMode::On, Strategy::Prescan, &mut scratch);
        rows.push(vec![
            b.to_string(),
            fmt_f(batch_us, 2),
            fmt_f(batch_us / b as f64, 2),
            fmt_f(rec.w_amortization(), 2),
        ]);
        metrics.push((
            format!("kernel.batch_per_sample_us.B{b}"),
            batch_us / b as f64,
        ));
        metrics.push((format!("kernel.w_amortization.B{b}"), rec.w_amortization()));
    }
    out.push_str(&markdown_table(
        &["B", "batch (µs)", "µs/sample", "W-word amortization"],
        &rows,
    ));

    // — Modelled vs measured: the SimdBackend's analytic clock against
    //   real host wall-clock on the same samples (informational — the
    //   platforms model *other* silicon, the ratio is a sanity scale) —
    let simd = SimdBackend::new(SimdPlatform::dnn_engine());
    let modelled_us: f64 = inputs
        .iter()
        .map(|x| {
            simd.run(net, x, UvMode::On)
                .expect("study network fits the platform model")
                .time_us()
        })
        .sum::<f64>()
        / inputs.len() as f64;
    let measured_backend = KernelBackend::new();
    let measured_us = {
        let _ = measured_backend.run(net, &inputs[0], UvMode::On); // pack
        prof.time("kernel.backend", || {
            time_us(r, || {
                for x in &inputs {
                    std::hint::black_box(measured_backend.run(net, x, UvMode::On).expect("fits"));
                }
            })
        }) / inputs.len() as f64
    };
    let ratio = modelled_us / measured_us.max(1e-12);
    let _ = writeln!(
        out,
        "\n### Modelled vs measured\n\n\
         `dnn-engine` modelled: {} µs/sample; `{}` measured: {} µs/sample \
         (model/measured = {} — informational; the analytic platforms \
         model different silicon)\n",
        fmt_f(modelled_us, 2),
        measured_backend.name(),
        fmt_f(measured_us, 2),
        fmt_f(ratio, 2),
    );
    metrics.push(("kernel.model_vs_measured".into(), ratio));
    metrics.push(("kernel.backend_us".into(), measured_us));

    // — A measured service table for the serving simulators —
    let spec = ShardSpec::from_measured(
        measured_backend.name(),
        &measured_backend,
        net,
        &inputs[..4.min(inputs.len())],
        UvMode::On,
        r,
    )
    .expect("study network fits the kernel backend");
    let _ = writeln!(
        out,
        "measured `ShardSpec` service table (feeds the virtual-time \
         serving simulator): mean {} µs over {} samples\n",
        fmt_f(spec.mean_service_us(), 2),
        spec.service_us.len(),
    );
    metrics.push((
        "kernel.measured_service_us_mean".into(),
        spec.mean_service_us(),
    ));

    // — The cycle-accurate simulator's own hot loop: mask-word scanning
    //   vs the per-element reference — same bits, same cycles, less host
    //   time —
    let sim_inputs = &inputs[..4.min(inputs.len())];
    let mask_word = Machine::new(MachineConfig::default());
    let per_element = Machine::new(MachineConfig {
        scan: ScanMode::PerElement,
        ..MachineConfig::default()
    });
    let mut identical = true;
    for x in sim_inputs {
        let a = mask_word.try_run_network(net, x, UvMode::On).expect("fits");
        let b = per_element
            .try_run_network(net, x, UvMode::On)
            .expect("fits");
        identical &= a.output() == b.output()
            && a.total_cycles() == b.total_cycles()
            && a.total_events() == b.total_events();
    }
    let t_mask = prof.time("sim.mask_word", || {
        time_us(r, || {
            for x in sim_inputs {
                std::hint::black_box(mask_word.try_run_network(net, x, UvMode::On).expect("fits"));
            }
        })
    });
    let t_elem = prof.time("sim.per_element", || {
        time_us(r, || {
            for x in sim_inputs {
                std::hint::black_box(
                    per_element
                        .try_run_network(net, x, UvMode::On)
                        .expect("fits"),
                );
            }
        })
    });
    let sim_speedup = t_elem / t_mask.max(1e-12);
    let _ = writeln!(
        out,
        "### Simulator hot loop: mask-word vs per-element scanning\n\n\
         per-element {} µs vs mask-word {} µs over {} samples \
         ({}× host speedup), results/cycles/events bit-identical: {}\n",
        fmt_f(t_elem, 1),
        fmt_f(t_mask, 1),
        sim_inputs.len(),
        fmt_f(sim_speedup, 2),
        if identical { "yes" } else { "NO — BUG" },
    );
    metrics.push(("kernel.sim_hotloop_speedup".into(), sim_speedup));
    metrics.push((
        "kernel.sim_hotloop_bit_identical".into(),
        if identical { 1.0 } else { 0.0 },
    ));

    // — Where the host time went —
    let _ = writeln!(out, "### Wall-clock profile\n");
    let mut rows = Vec::new();
    for (name, stat) in prof.phases() {
        rows.push(vec![
            (*name).to_string(),
            stat.calls.to_string(),
            fmt_f(stat.total_us, 0),
            fmt_f(stat.max_us, 0),
        ]);
        metrics.push((format!("profile.{name}.total_us"), stat.total_us));
    }
    out.push_str(&markdown_table(
        &["phase", "calls", "total (µs)", "max (µs)"],
        &rows,
    ));

    KernelReport {
        markdown: out,
        metrics,
    }
}

/// The oracle: dense, prescan and batched kernel runs all equal the
/// golden model bit for bit, in both UV modes.
fn bit_exact_vs_golden(net: &FixedNetwork, inputs: &[Vec<Q6_10>]) -> bool {
    let kernel = SparseKernel::pack(net, DEFAULT_BLOCK);
    let mut s = kernel.scratch();
    for mode in [UvMode::Off, UvMode::On] {
        for x in inputs {
            let golden = net.forward(x, mode);
            for strategy in [Strategy::Prescan, Strategy::Dense] {
                let run = kernel.run(x, mode, strategy, &mut s);
                let agree = run
                    .layers
                    .iter()
                    .zip(&golden)
                    .all(|(k, g)| k.output == g.output && k.mask == g.mask);
                if !agree {
                    return false;
                }
            }
        }
        let batch = kernel.run_batch(inputs, mode, Strategy::Prescan, &mut s);
        for (x, run) in inputs.iter().zip(&batch.runs) {
            let golden = net.forward(x, mode);
            let agree = run
                .layers
                .iter()
                .zip(&golden)
                .all(|(k, g)| k.output == g.output && k.mask == g.mask);
            if !agree {
                return false;
            }
        }
    }
    true
}

/// Renders the kernel report (markdown only — the `kernel` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
