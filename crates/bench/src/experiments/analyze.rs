//! Trace analytics study (beyond the paper — ROADMAP analytics layer):
//! critical-path attribution, tail exemplars, and SLO burn-rate
//! monitoring over a seeded 4-shard overload scenario.
//!
//! The scenario is self-contained (uniform synthetic shards — no
//! trained system), so it is fast and trivially byte-deterministic: a
//! bursty workload alternates an injected overload window (3× fleet
//! capacity) with a quiet phase, against a nominal Poisson control at
//! half capacity. Both runs trace into a [`RingRecorder`] teed with a
//! live [`TailExemplars`] reservoir, and the front end carries a
//! per-class [`BurnRateMonitor`](sparsenn_obs::BurnRateMonitor).
//!
//! Four oracles, asserted as `analyze.*` metrics and grep-able report
//! lines:
//!
//! 1. **Attribution is exact** — every request's per-phase breakdown
//!    (hold/queue/service/other) sums to its request-span latency
//!    within float rounding.
//! 2. **The critical path is a path** — per request, its length is ≤
//!    the request span and ≥ the longest single attributed phase.
//! 3. **The reservoir is exact** — the live top-K exemplar set equals
//!    [`offline_top_k`] over the full recording, span for span.
//! 4. **Burn-rate alerting discriminates** — the monitor fires at
//!    least once inside the injected overload and raises zero alerts
//!    on the nominal control.
//!
//! Plus the report oracle: [`render_report`] output is byte-identical
//! across two fresh captures of the same seed (the `trace_report` bin
//! prints the same report).

use crate::markdown_table;
use sparsenn_core::engine::LeastQueued;
use sparsenn_frontend::{
    simulate_frontend_traced, AlertKind, BoundedQueues, BurnConfig, ClassBurnAlert,
    DegradeBatching, FrontendConfig, FrontendSummary, HedgeConfig, SloPolicy,
};
use sparsenn_obs::{
    analyze, breakdown_report, offline_top_k, Exemplar, RingRecorder, Span, TailExemplars, Tee,
    TraceAnalysis,
};
use sparsenn_serve::{ShardSpec, Workload};
use std::fmt::Write as _;

/// Uniform per-request service time of the synthetic shards, µs.
const SERVICE_US: f64 = 10.0;
/// Shards in the fleet (capacity = `SHARDS / SERVICE_US` rps · 1e6).
const SHARDS: usize = 4;
/// Slowest requests the exemplar reservoir keeps.
const TOP_K: usize = 10;
/// Slowest requests the report prints.
const TOP_N: usize = 8;

/// The seeded scenario: the overload run when `overload`, else the
/// nominal control. Identical fleet, SLOs, hedging, degrade batching
/// and burn configuration — only the workload differs.
pub fn scenario(overload: bool) -> (Vec<ShardSpec>, BoundedQueues, FrontendConfig) {
    let fleet: Vec<ShardSpec> = (0..SHARDS)
        .map(|i| ShardSpec::uniform(format!("shard-{i}"), SERVICE_US))
        .collect();
    let capacity = SHARDS as f64 * 1e6 / SERVICE_US;
    let slo = SloPolicy {
        high_us: 12.0 * SERVICE_US,
        low_us: 48.0 * SERVICE_US,
    };
    let workload = if overload {
        // Injected overload: 3× capacity for 30% of every 4 ms period,
        // half capacity in between.
        Workload::Bursty {
            low_rps: 0.5 * capacity,
            high_rps: 3.0 * capacity,
            period_us: 400.0 * SERVICE_US,
            duty: 0.3,
            requests: 2400,
            seed: 23,
        }
    } else {
        // Nominal control: steady half capacity, same request count.
        Workload::Poisson {
            rate_rps: 0.5 * capacity,
            requests: 2400,
            seed: 23,
        }
    };
    let cfg = FrontendConfig::new(workload, slo)
        .low_fraction(0.4)
        .hedge(HedgeConfig::hedged(6.0 * SERVICE_US))
        .degrade_batching(DegradeBatching::new(4, 8.0 * SERVICE_US, 0.3))
        .burn_monitor(
            BurnConfig::new(0.9, 100.0 * SERVICE_US, 500.0 * SERVICE_US)
                .threshold(2.0)
                .min_events(20),
        );
    let gate = BoundedQueues::new(16, 6).degrade_low_beyond(2);
    (fleet, gate, cfg)
}

/// One traced capture of a scenario: the summary, the full recording,
/// and the live exemplar reservoir's kept set. Pure function of
/// `overload`, so two calls must agree byte for byte.
pub fn capture(overload: bool) -> (FrontendSummary, Vec<Span>, Vec<Exemplar>) {
    let (fleet, gate, cfg) = scenario(overload);
    let recorder = RingRecorder::new(1 << 17);
    let exemplars = TailExemplars::new(TOP_K);
    let sink = Tee::new(&recorder, &exemplars);
    let summary = simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &sink)
        .expect("the analyze scenario is valid");
    (summary, recorder.spans(), exemplars.exemplars())
}

/// Renders the full trace-analytics report: the latency breakdown (see
/// [`breakdown_report`]), the tail-exemplar table, and any burn-rate
/// alert edges. Deterministic — fixed-precision floats, stable orders.
pub fn render_report(
    analysis: &TraceAnalysis,
    exemplars: &[Exemplar],
    alerts: &[ClassBurnAlert],
    top_n: usize,
) -> String {
    let mut out = breakdown_report(analysis, top_n);
    out.push_str(&format!(
        "\n-- tail exemplars ({} slowest) --\n",
        exemplars.len()
    ));
    for (rank, e) in exemplars.iter().enumerate() {
        out.push_str(&format!(
            "#{:<2} request {:<6} latency {:>10.3} us  spans {}\n",
            rank + 1,
            e.trace_id,
            e.latency_us,
            e.spans.len(),
        ));
    }
    out.push_str("\n-- burn-rate alerts --\n");
    if alerts.is_empty() {
        out.push_str("(none)\n");
    }
    for a in alerts {
        out.push_str(&format!(
            "t={:>12.3} us  class={:<5} {:<6} fast_burn={:.3} slow_burn={:.3}\n",
            a.alert.at_us,
            format!("{:?}", a.class).to_lowercase(),
            a.alert.kind.name(),
            a.alert.fast_burn,
            a.alert.slow_burn,
        ));
    }
    out
}

/// Measured trace-analytics results plus named metrics for
/// `BENCH_results.json` (schema 9).
pub struct AnalyzeReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Runs the trace-analytics study (self-contained; no trained system).
pub fn measure() -> AnalyzeReport {
    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(
        out,
        "## Trace analytics: critical paths, tail exemplars, burn rates\n"
    );

    let (summary, spans, live) = capture(true);
    let analysis = analyze(&spans);

    // Oracle 1: phase attribution sums to request latency, per request.
    let sums_ok = analysis
        .requests
        .iter()
        .all(|r| (r.phases_sum_us() - r.total_us).abs() <= 1e-6 * r.total_us.max(1.0));
    // Oracle 2: the critical path is bounded by the request span and
    // dominates its longest constituent phase.
    let path_ok = analysis.requests.iter().all(|r| {
        let path = r.critical_path_us();
        path <= r.total_us + 1e-9 && path + 1e-9 >= r.max_phase_us()
    });
    // Oracle 3: the live reservoir equals the offline sort-and-take-K.
    let offline = offline_top_k(&spans, TOP_K);
    let exemplar_exact = live == offline;
    // Oracle 4: the burn monitor fires in the injected overload and
    // stays silent on the nominal control.
    let fires = summary
        .burn_alerts
        .iter()
        .filter(|a| a.alert.kind == AlertKind::Fire)
        .count();
    let (nominal, _, _) = capture(false);
    let burn_ok = fires >= 1 && nominal.burn_alerts.is_empty();

    // Report oracle: a fresh capture renders the identical report.
    let report = render_report(&analysis, &live, &summary.burn_alerts, TOP_N);
    let (summary2, spans2, live2) = capture(true);
    let report2 = render_report(&analyze(&spans2), &live2, &summary2.burn_alerts, TOP_N);
    let deterministic = report == report2;

    let _ = writeln!(
        out,
        "### Overload run: {} requests over {} shards (bursty 0.5×/3× capacity)\n",
        summary.requests, SHARDS
    );
    out.push_str(&markdown_table(
        &["measure", "value"],
        &[
            vec![
                "requests analyzed".into(),
                analysis.requests.len().to_string(),
            ],
            vec![
                "completed / shed / failed".into(),
                format!(
                    "{} / {} / {}",
                    summary.classes.iter().map(|c| c.completed).sum::<usize>(),
                    summary.classes.iter().map(|c| c.shed).sum::<usize>(),
                    summary.classes.iter().map(|c| c.failed).sum::<usize>(),
                ),
            ],
            vec![
                "slo attainment".into(),
                format!("{:.3}", summary.slo_attainment),
            ],
            vec![
                "queue share of latency".into(),
                format!(
                    "{:.1}%",
                    analysis.overall.percent(sparsenn_obs::Phase::Queue)
                ),
            ],
            vec![
                "burn alerts (overload)".into(),
                summary.burn_alerts.len().to_string(),
            ],
            vec![
                "burn alerts (nominal control)".into(),
                nominal.burn_alerts.len().to_string(),
            ],
            vec!["orphan spans".into(), analysis.orphan_spans.to_string()],
        ],
    ));

    let _ = writeln!(out, "\n```\n{report}```\n");
    let yes = |ok: bool| if ok { "yes" } else { "NO — BUG" };
    let _ = writeln!(
        out,
        "- phase breakdown sums to request latency: {}\n\
         - critical path within [max phase, request span]: {}\n\
         - tail exemplars match offline top-K: {}\n\
         - burn-rate fires under overload, quiet at nominal: {}\n\
         - trace report byte-identical across reruns: {}",
        yes(sums_ok),
        yes(path_ok),
        yes(exemplar_exact),
        yes(burn_ok),
        yes(deterministic),
    );

    let flag = |ok: bool| if ok { 1.0 } else { 0.0 };
    metrics.push(("analyze.requests".into(), analysis.requests.len() as f64));
    metrics.push(("analyze.orphan_spans".into(), analysis.orphan_spans as f64));
    metrics.push(("analyze.breakdown_sums_ok".into(), flag(sums_ok)));
    metrics.push(("analyze.critical_path_ok".into(), flag(path_ok)));
    metrics.push(("analyze.exemplar_exact".into(), flag(exemplar_exact)));
    metrics.push(("analyze.burn_fires_overload".into(), fires as f64));
    metrics.push((
        "analyze.burn_alerts_nominal".into(),
        nominal.burn_alerts.len() as f64,
    ));
    metrics.push(("analyze.burn_ok".into(), flag(burn_ok)));
    metrics.push(("analyze.report_deterministic".into(), flag(deterministic)));

    AnalyzeReport {
        markdown: out,
        metrics,
    }
}

/// Renders the trace-analytics report (markdown only — the `analyze`
/// bin).
pub fn run() -> String {
    measure().markdown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracles_hold_on_the_seeded_scenario() {
        let r = measure();
        let value = |name: &str| {
            r.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .expect("metric present")
        };
        assert_eq!(value("analyze.breakdown_sums_ok"), 1.0);
        assert_eq!(value("analyze.critical_path_ok"), 1.0);
        assert_eq!(value("analyze.exemplar_exact"), 1.0);
        assert_eq!(value("analyze.burn_ok"), 1.0);
        assert_eq!(value("analyze.report_deterministic"), 1.0);
        assert!(value("analyze.burn_fires_overload") >= 1.0);
        assert_eq!(value("analyze.burn_alerts_nominal"), 0.0);
        assert!(!r.markdown.contains("BUG"), "{}", r.markdown);
    }
}
