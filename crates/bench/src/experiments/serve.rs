//! Virtual-time serving study: latency-vs-offered-load curves per
//! scheduler over homogeneous and heterogeneous fleets (beyond the paper
//! — the "heavy traffic" north star).
//!
//! The old fleet study modelled throughput as the degenerate
//! `shards / latency`, which cannot show queueing delay, burstiness, or
//! the win from latency-aware dispatch. This experiment feeds each
//! backend's *measured* per-sample `time_us` table into the
//! `sparsenn-serve` discrete-event simulator and sweeps offered load per
//! [`Scheduler`](sparsenn_core::engine::Scheduler) — the same trait the
//! live `engine::Fleet` dispatches with — over:
//!
//! * a **homogeneous** fleet of cycle-accurate machines, where the
//!   closed-loop concurrency = shards run validates the simulator (mean
//!   latency must equal the modelled per-sample time, zero queueing);
//! * a **heterogeneous** fleet mixing machines with the slower SIMD
//!   platforms of Table IV (cf. LRADNN / DNN-Engine), where
//!   fastest-expected-completion should beat first-idle on p95.

use crate::{fmt_f, markdown_table};
use sparsenn_core::engine::{
    CycleAccurateBackend, FastestCompletion, FirstIdle, InferenceBackend, LeastQueued, Scheduler,
};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::sim::simd::SimdPlatform;
use sparsenn_core::Profile;
use sparsenn_serve::{fleet_capacity_rps, simulate, ServeSummary, ShardSpec, Workload};
use std::fmt::Write as _;

/// Measured serving curves plus named metrics for `BENCH_results.json`.
pub struct ServeReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// The per-sample modelled service times of one backend on the first
/// `batch` test samples — the bridge from the inference engine's clock
/// models to the simulator's service tables.
fn service_table(
    sys: &sparsenn_core::TrainedSystem,
    backend: Box<dyn InferenceBackend>,
    batch: usize,
) -> Vec<f64> {
    let mut table = Vec::with_capacity(batch);
    sys.session_with(backend)
        .stream_batch(batch, UvMode::On, |_, record| {
            table.push(record.time_us());
        })
        .expect("the study network fits every backend");
    table
}

const SCHEDULERS: [&dyn Scheduler; 3] = [&FirstIdle, &LeastQueued, &FastestCompletion];

/// Offered-load fractions of fleet capacity for the Poisson sweep.
const LOAD_FRACTIONS: [f64; 3] = [0.5, 0.75, 0.9];

fn sweep_rows(
    fleet: &[ShardSpec],
    requests: usize,
    rows: &mut Vec<Vec<String>>,
) -> Vec<(f64, ServeSummary)> {
    let capacity = fleet_capacity_rps(fleet);
    let mut out = Vec::new();
    for &frac in &LOAD_FRACTIONS {
        for sched in SCHEDULERS {
            let workload = Workload::Poisson {
                rate_rps: capacity * frac,
                requests,
                seed: 1711,
            };
            let s = simulate(fleet, sched, &workload).expect("valid study configuration");
            rows.push(vec![
                format!("{:.0}%", frac * 100.0),
                s.scheduler.clone(),
                fmt_f(s.latency.p50_us, 1),
                fmt_f(s.latency.p95_us, 1),
                fmt_f(s.latency.p99_us, 1),
                fmt_f(s.queue_us_mean, 1),
                fmt_f(s.queue.max_depth as f64, 0),
                fmt_f(s.throughput_rps, 0),
            ]);
            out.push((frac, s));
        }
    }
    out
}

/// Runs the serving study, training its own
/// [`study_system`](super::fleet::study_system).
pub fn measure(p: Profile) -> ServeReport {
    measure_with(p, &super::fleet::study_system(p))
}

/// Runs the serving study on an already-trained system (shared with the
/// `fleet` experiment by `run_all`: the serving curves depend on the
/// *per-sample latency tables*, not on TER polish, so one training run
/// feeds both).
pub fn measure_with(p: Profile, sys: &sparsenn_core::TrainedSystem) -> ServeReport {
    let dims = sys.network().mlp().dims();
    let batch = (p.sim_samples() * 4).min(sys.split().test.len());

    let machine_us = service_table(
        sys,
        Box::new(CycleAccurateBackend::new(sys.machine().clone())),
        batch,
    );
    let lradnn_us = service_table(
        sys,
        Box::new(sparsenn_core::engine::SimdBackend::new(
            SimdPlatform::lradnn(p.table_rank().min(8)),
        )),
        batch,
    );
    let engine_us = service_table(
        sys,
        Box::new(sparsenn_core::engine::SimdBackend::new(
            SimdPlatform::dnn_engine(),
        )),
        batch,
    );

    let homogeneous: Vec<ShardSpec> = (0..4)
        .map(|i| ShardSpec::with_table(format!("machine-{i}"), machine_us.clone()))
        .collect();
    let heterogeneous = vec![
        ShardSpec::with_table("machine-0", machine_us.clone()),
        ShardSpec::with_table("machine-1", machine_us.clone()),
        ShardSpec::with_table("DNN-Engine", engine_us.clone()),
        ShardSpec::with_table("LRADNN", lradnn_us.clone()),
    ];

    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(
        out,
        "## Serving simulator — latency vs offered load per scheduler (profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "Per-sample service tables measured on {batch} test samples \
         (3-layer [{}, {}, {}] network); mean modelled service: machine \
         {:.1} µs, DNN-Engine {:.1} µs, LRADNN {:.1} µs. Virtual-time \
         discrete-event simulation; the `Scheduler` policies are the same \
         trait objects the live `engine::Fleet` dispatches with.\n",
        dims[0],
        dims[1],
        dims[2],
        mean(&machine_us),
        mean(&engine_us),
        mean(&lradnn_us),
    );

    // — Closed-loop validation on the homogeneous fleet —
    let closed = simulate(
        &homogeneous,
        &FirstIdle,
        &Workload::ClosedLoop {
            concurrency: homogeneous.len(),
            requests: machine_us.len() * 4 * homogeneous.len(),
            think_us: 0.0,
        },
    )
    .expect("valid closed-loop configuration");
    let modelled_us = mean(&machine_us);
    let matches = (closed.latency.mean_us - modelled_us).abs() < 1e-6 * modelled_us.max(1.0)
        && closed.queue_us_mean == 0.0;
    let _ = writeln!(
        out,
        "**Closed-loop validation** (concurrency = shards = {}): simulated \
         mean latency {:.3} µs vs modelled per-sample time {:.3} µs, mean \
         time-in-queue {:.3} µs — {}.\n",
        homogeneous.len(),
        closed.latency.mean_us,
        modelled_us,
        closed.queue_us_mean,
        if matches {
            "match, no queueing"
        } else {
            "MISMATCH — BUG"
        },
    );
    metrics.push((
        "serve.closed_loop_mean_latency_us".into(),
        closed.latency.mean_us,
    ));
    metrics.push((
        "serve.closed_loop_matches_model".into(),
        if matches { 1.0 } else { 0.0 },
    ));

    // — Poisson load sweeps —
    let requests = 4000;
    for (title, fleet, tag) in [
        ("Homogeneous fleet (4x machine)", &homogeneous, "homo"),
        (
            "Heterogeneous fleet (2x machine + DNN-Engine + LRADNN)",
            &heterogeneous,
            "hetero",
        ),
    ] {
        let capacity = fleet_capacity_rps(fleet);
        let _ = writeln!(
            out,
            "### {title} — modelled capacity {:.0} rps, open-loop Poisson, {requests} requests\n",
            capacity
        );
        let mut rows = Vec::new();
        let results = sweep_rows(fleet, requests, &mut rows);
        out.push_str(&markdown_table(
            &[
                "offered load",
                "scheduler",
                "p50 (µs)",
                "p95 (µs)",
                "p99 (µs)",
                "mean queue (µs)",
                "max depth",
                "throughput (rps)",
            ],
            &rows,
        ));
        out.push('\n');
        metrics.push((format!("serve.{tag}.capacity_rps"), capacity));
        for (frac, s) in &results {
            if (*frac - 0.75).abs() < 1e-9 {
                metrics.push((
                    format!("serve.{tag}.p95_us.{}@75pct", s.scheduler),
                    s.latency.p95_us,
                ));
            }
        }
        if tag == "hetero" {
            let p95_of = |sched: &str| {
                results
                    .iter()
                    .find(|(f, s)| (*f - 0.75).abs() < 1e-9 && s.scheduler == sched)
                    .map(|(_, s)| s.latency.p95_us)
                    .expect("sweep covers every scheduler")
            };
            let fec = p95_of("fastest-completion");
            let naive = p95_of("first-idle");
            let _ = writeln!(
                out,
                "At 75% load, fastest-expected-completion p95 is {:.1} µs vs \
                 first-idle {:.1} µs — latency-aware dispatch {}.\n",
                fec,
                naive,
                if fec < naive {
                    "wins"
                } else {
                    "DOES NOT WIN — investigate"
                },
            );
            metrics.push((
                "serve.fec_beats_first_idle_p95".into(),
                if fec < naive { 1.0 } else { 0.0 },
            ));
        }
    }

    // — Bursty arrivals on the heterogeneous fleet —
    let capacity = fleet_capacity_rps(&heterogeneous);
    let bursty = Workload::Bursty {
        low_rps: capacity * 0.2,
        high_rps: capacity * 2.0,
        period_us: 40.0 * mean(&machine_us),
        duty: 0.25,
        requests,
        seed: 1711,
    };
    let _ = writeln!(
        out,
        "### Bursty arrivals (on/off at 2.0x/0.2x capacity, 25% duty), heterogeneous fleet\n"
    );
    let mut rows = Vec::new();
    for sched in SCHEDULERS {
        let s = simulate(&heterogeneous, sched, &bursty).expect("valid bursty configuration");
        rows.push(vec![
            s.scheduler.clone(),
            fmt_f(s.latency.p50_us, 1),
            fmt_f(s.latency.p95_us, 1),
            fmt_f(s.latency.p99_us, 1),
            fmt_f(s.queue.max_depth as f64, 0),
            fmt_f(s.queue.mean_depth, 2),
        ]);
        metrics.push((
            format!("serve.bursty.p99_us.{}", s.scheduler),
            s.latency.p99_us,
        ));
    }
    out.push_str(&markdown_table(
        &[
            "scheduler",
            "p50 (µs)",
            "p95 (µs)",
            "p99 (µs)",
            "max depth",
            "mean depth",
        ],
        &rows,
    ));

    ServeReport {
        markdown: out,
        metrics,
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Renders the serving report (markdown only — the `serve` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
