//! Table IV: comparison with the existing SIMD platforms, plus the paper's
//! technology-normalized energy-efficiency argument.

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::energy::area::area_report;
use sparsenn_core::energy::scaling::normalize_energy_to_sparsenn;
use sparsenn_core::energy::TechNode;
use sparsenn_core::engine::{CycleAccurateBackend, GoldenBackend, InferenceBackend, SimdBackend};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::sim::simd::SimdPlatform;
use sparsenn_core::sim::MachineConfig;
use sparsenn_core::Profile;
use std::fmt::Write as _;

/// Renders Table IV. Reuses the Fig. 7 training pipeline to obtain the
/// measured SparseNN power and the BG-RAND first-hidden-layer energy the
/// paper's 4× argument is based on.
pub fn run(p: Profile) -> String {
    let cfg = MachineConfig::default();
    let area = area_report(&cfg);

    // Measured SparseNN numbers on BG-RAND (the paper's reference point).
    // The summary's own power estimate is the machine's (65 nm, per-batch
    // events), so the min/max rates can be read off directly; `energy_uj`
    // is the per-sample mean.
    let sys = super::fig7::trained_system(DatasetKind::BgRand, p);
    let on = sys
        .simulate_batch(p.sim_samples(), UvMode::On)
        .expect("the paper-shaped network fits the default machine");
    let power_per_layer: Vec<f64> = on.layers.iter().map(|l| l.power.total_mw).collect();
    let p_min = power_per_layer
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let p_max = power_per_layer.iter().cloned().fold(0.0, f64::max);
    let l1_energy_uj = on.layers[0].energy_uj;
    let nnz_l1 = 784; // BG-RAND inputs are dense
    let m_l1 = sys.network().mlp().layers()[0].outputs();

    let lradnn = SimdPlatform::lradnn(p.table_rank());
    let engine = SimdPlatform::dnn_engine();

    let mut rows = Vec::new();
    let mut platform_row =
        |name: &str, tech: String, peak: String, mem: String, power: String, a: String| {
            rows.push(vec![name.to_string(), tech, peak, mem, power, a]);
        };
    platform_row(
        lradnn.name,
        format!("{}nm", lradnn.tech_nm),
        format!("{:.2} GOPs", lradnn.peak_gops()),
        "3.5MB".into(),
        format!("{}~{} mW", lradnn.power_mw.0, lradnn.power_mw.1),
        format!("{} mm2", lradnn.area_mm2),
    );
    platform_row(
        engine.name,
        format!("{}nm", engine.tech_nm),
        format!("{:.0} GOPs", engine.peak_gops()),
        "1MB".into(),
        format!("{} mW", engine.power_mw.0),
        format!("{} mm2", engine.area_mm2),
    );
    platform_row(
        "SparseNN (this work, measured)",
        "65nm (model)".into(),
        format!("{:.0} GOPs", cfg.peak_gops()),
        format!("{}MB", cfg.total_w_mem_bytes() / (1024 * 1024)),
        format!("{:.0}~{:.0} mW", p_min, p_max),
        format!("{:.0} mm2", area.total_mm2),
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table IV — comparison with SIMD platforms (profile: {p})\n"
    );
    out.push_str(&markdown_table(
        &[
            "platform",
            "technology",
            "peak perf.",
            "W memory",
            "power",
            "area",
        ],
        &rows,
    ));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper reference row: SparseNN 65nm, 64 GOPs, 8MB, 452~705 mW, 78 mm2.\n"
    );

    // The energy-efficiency argument.
    let engine_cycles = engine.layer_cycles(m_l1, nnz_l1 + 1, nnz_l1 + 1, m_l1);
    let engine_energy = engine.energy_uj(engine_cycles);
    let (factor, scaled) =
        normalize_energy_to_sparsenn(engine_energy, engine.w_mem_bytes, TechNode::n28());
    let advantage = scaled / l1_energy_uj;
    let _ = writeln!(
        out,
        "### Energy-efficiency argument (BG-RAND, 1st hidden layer)\n"
    );
    let _ = writeln!(
        out,
        "- DNN-Engine modelled: {} cycles, {} µJ (paper: 785×1000/8 cycles ≈ 5.1 µJ)",
        engine_cycles,
        fmt_f(engine_energy, 2)
    );
    let _ = writeln!(
        out,
        "- SparseNN measured: {} µJ (paper: ≈ 14 µJ at full scale)",
        fmt_f(l1_energy_uj, 2)
    );
    let _ = writeln!(
        out,
        "- per-access scaling 28nm/1MB → 65nm/8MB: {:.1}× (paper: ≈ 11×)",
        factor
    );
    let _ = writeln!(
        out,
        "- normalized energy-efficiency advantage of SparseNN: {:.1}× (paper: ≈ 4×)",
        advantage
    );

    // One workload, every substrate: the same BG-RAND sample pushed through
    // each InferenceBackend — the comparison the paper's Table IV frames,
    // now one constructor call per row. The latency column comes from each
    // backend's own clock model via `RunRecord::time_us` (the golden model
    // is timing-free, hence 0).
    let _ = writeln!(out, "\n### One sample, four substrates (engine API)\n");
    let backends: Vec<Box<dyn InferenceBackend>> = vec![
        Box::new(CycleAccurateBackend::with_config(cfg)),
        Box::new(GoldenBackend::new()),
        Box::new(SimdBackend::new(lradnn)),
        Box::new(SimdBackend::new(engine)),
    ];
    let mut backend_rows = Vec::new();
    for backend in backends {
        let session = sys.session_with(backend);
        match session.run_sample(0, UvMode::On) {
            Ok(record) => {
                let ev = record.total_events();
                backend_rows.push(vec![
                    record.backend.clone(),
                    format!("{}", record.total_cycles()),
                    fmt_f(record.time_us(), 2),
                    format!("{}", ev.macs),
                    format!("{}", ev.w_reads),
                    format!("{}", record.classify()),
                ]);
            }
            Err(e) => backend_rows.push(vec![
                session.backend_name().to_string(),
                format!("error: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    out.push_str(&markdown_table(
        &[
            "backend",
            "modelled cycles",
            "latency (us)",
            "MACs",
            "W reads",
            "class",
        ],
        &backend_rows,
    ));
    let _ = writeln!(
        out,
        "\nOutputs are bit-exact across all four rows (asserted by the engine tests); \
         only the timing/activity models differ. Latency follows each backend's own \
         clock model (2 ns/cycle machine, published SIMD frequencies; the golden \
         model is timing-free)."
    );
    out
}
