//! One module per paper table/figure, plus the ablations of DESIGN.md §6.

pub mod ablations;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
