//! One module per paper table/figure, plus the ablations of DESIGN.md §6
//! and the serving studies (beyond the paper): fleet scaling, the
//! virtual-time latency-vs-load simulation, and model-parallel
//! partitioning of oversized networks.

pub mod ablations;
pub mod analyze;
pub mod batching;
pub mod fig6;
pub mod fig7;
pub mod fleet;
pub mod frontend;
pub mod kernel;
pub mod obs;
pub mod partition;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
