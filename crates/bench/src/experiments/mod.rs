//! One module per paper table/figure, plus the ablations of DESIGN.md §6
//! and the fleet-serving scaling study (beyond the paper).

pub mod ablations;
pub mod fig6;
pub mod fig7;
pub mod fleet;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
