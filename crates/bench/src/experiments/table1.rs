//! Table I: TER and per-layer predicted sparsity ρ of the 5-layer network
//! at rank 15, for NO-UV / SVD / End-to-End on all three datasets.

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::{Profile, SystemBuilder, TrainingAlgorithm};
use std::fmt::Write as _;

/// The paper's Table I, for side-by-side display:
/// `(dataset, algorithm, TER%, ρ1, ρ2, ρ3)`; `None` = N.A.
// The BASIC End-to-End TER really is 2.718 in the paper — not Euler's number.
#[allow(clippy::approx_constant, clippy::type_complexity)]
pub const PAPER_TABLE_I: &[(&str, &str, f32, Option<f32>, Option<f32>, Option<f32>)] = &[
    ("rot", "NO UV", 8.54, None, None, None),
    ("rot", "SVD", 10.69, Some(90.74), Some(28.12), Some(34.27)),
    (
        "rot",
        "End-to-End",
        8.8,
        Some(69.41),
        Some(64.13),
        Some(71.07),
    ),
    ("basic", "NO UV", 2.738, None, None, None),
    ("basic", "SVD", 2.728, Some(62.5), Some(38.15), Some(39.38)),
    (
        "basic",
        "End-to-End",
        2.718,
        Some(56.34),
        Some(65.89),
        Some(66.7),
    ),
    ("bg_rand", "NO UV", 10.08, None, None, None),
    (
        "bg_rand",
        "SVD",
        10.036,
        Some(51.61),
        Some(51.49),
        Some(24.01),
    ),
    (
        "bg_rand",
        "End-to-End",
        10.03,
        Some(52.79),
        Some(48.23),
        Some(41.44),
    ),
];

/// One measured Table I row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset variant.
    pub kind: DatasetKind,
    /// Training algorithm.
    pub algorithm: TrainingAlgorithm,
    /// Test error rate, %.
    pub ter: f32,
    /// Predicted sparsity per hidden layer, % (empty for NO UV).
    pub rho: Vec<f32>,
}

/// Measures one row of Table I.
pub fn measure(kind: DatasetKind, algorithm: TrainingAlgorithm, p: Profile) -> Table1Row {
    let sys = SystemBuilder::new(kind)
        .dims(&p.dims_5layer())
        .rank(p.table_rank())
        .algorithm(algorithm)
        .train_samples(p.train_samples())
        .test_samples(p.test_samples())
        .epochs(p.epochs())
        .build();
    let rho = if algorithm == TrainingAlgorithm::NoUv {
        Vec::new()
    } else {
        sys.predicted_sparsity()
    };
    Table1Row {
        kind,
        algorithm,
        ter: sys.test_error_rate(),
        rho,
    }
}

/// Renders Table I, paper values beside measured ones.
pub fn run(p: Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table I — 5-layer network, rank {} (profile: {p})\n",
        p.table_rank()
    );
    let mut rows = Vec::new();
    for kind in [DatasetKind::Rot, DatasetKind::Basic, DatasetKind::BgRand] {
        for alg in [
            TrainingAlgorithm::NoUv,
            TrainingAlgorithm::Svd,
            TrainingAlgorithm::EndToEnd,
        ] {
            let m = measure(kind, alg, p);
            let paper = PAPER_TABLE_I
                .iter()
                .find(|(k, a, ..)| *k == kind.to_string() && *a == alg.to_string())
                .expect("paper row exists");
            let fmt_rho = |v: &[f32]| {
                if v.is_empty() {
                    "N.A.".to_string()
                } else {
                    v.iter()
                        .map(|r| format!("{r:.1}"))
                        .collect::<Vec<_>>()
                        .join("/")
                }
            };
            let paper_rho = match (paper.3, paper.4, paper.5) {
                (Some(a), Some(b), Some(c)) => format!("{a:.1}/{b:.1}/{c:.1}"),
                _ => "N.A.".to_string(),
            };
            rows.push(vec![
                kind.to_string(),
                alg.to_string(),
                fmt_f(paper.2 as f64, 2),
                fmt_f(m.ter as f64, 2),
                paper_rho,
                fmt_rho(&m.rho),
            ]);
        }
    }
    out.push_str(&markdown_table(
        &[
            "dataset",
            "algorithm",
            "TER% paper",
            "TER% measured",
            "rho1/2/3 paper",
            "rho1/2/3 measured",
        ],
        &rows,
    ));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper shape to reproduce: End-to-End keeps TER at (or below) the NO-UV level \
         while achieving a *higher average* hidden-layer sparsity than SVD; SVD's \
         sparsity collapses on the deeper layers (e.g. ROT ρ2 = 28%)."
    );
    out
}
