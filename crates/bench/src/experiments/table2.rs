//! Table II: the micro-architectural parameters of 64-PE SparseNN.

use crate::markdown_table;
use sparsenn_core::sim::MachineConfig;
use std::fmt::Write as _;

/// Renders Table II from the default [`MachineConfig`], so the report can
/// never drift from what the simulator actually uses.
pub fn run() -> String {
    let cfg = MachineConfig::default();
    let rows = vec![
        vec![
            "Quantization scheme".into(),
            "16-bit fixed point".into(),
            "16-bit fixed point (Q6.10)".into(),
        ],
        vec![
            "On-chip W/U/V memory per PE".into(),
            "128KB/8KB/8KB".into(),
            format!(
                "{}KB/{}KB/{}KB",
                cfg.w_mem_bytes / 1024,
                cfg.u_mem_bytes / 1024,
                cfg.v_mem_bytes / 1024
            ),
        ],
        vec![
            "Activation register no. per PE".into(),
            "64".into(),
            cfg.act_regs_per_pe.to_string(),
        ],
        vec![
            "Flow control of NoC router".into(),
            "Packet-buffer with credit".into(),
            format!(
                "packet-buffer with credit (depth {})",
                cfg.noc.queue_capacity
            ),
        ],
    ];
    let mut out = String::new();
    let _ = writeln!(out, "## Table II — micro-architectural parameters\n");
    out.push_str(&markdown_table(
        &["parameter", "paper", "this implementation"],
        &rows,
    ));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Derived: {} PEs, total W memory {} MB, max activations/layer {}, \
         peak {} GOP/s @ {} ns clock.",
        cfg.num_pes(),
        cfg.total_w_mem_bytes() / (1024 * 1024),
        cfg.max_activations(),
        cfg.peak_gops(),
        cfg.clock_ns,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_paper_values() {
        let s = super::run();
        assert!(s.contains("128KB/8KB/8KB"));
        assert!(s.contains("64 GOP/s"));
        assert!(s.contains("8 MB"));
    }
}
