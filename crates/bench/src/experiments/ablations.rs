//! Ablations of the design choices DESIGN.md §6 calls out.

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::linalg::init::seeded_rng;
use sparsenn_core::model::fixedpoint::{FixedMatrix, FixedNetwork, UvMode};
use sparsenn_core::model::{Mlp, PredictedNetwork};
use sparsenn_core::sim::{Machine, MachineConfig};
use sparsenn_core::{Profile, SystemBuilder, TrainingAlgorithm};
use std::fmt::Write as _;

/// §V.B ablation: buffered credit flow control vs minimal router buffers,
/// on a "fat" few-row matrix where the PE consumes one activation per
/// cycle and any delivery hiccup becomes an idle datapath cycle.
pub fn noc() -> String {
    let mut rng = seeded_rng(0xB0FFE2);
    // 16×784 "V-shaped" matrix: one row per 4 PEs ⇒ delivery-rate bound.
    let mlp = Mlp::random(&[784, 16], &mut rng);
    let net = FixedNetwork::from_mlp(&mlp);
    let x: Vec<f32> = (0..784).map(|i| ((i * 37) % 97) as f32 / 97.0).collect();
    let xq = net.quantize_input(&x);

    let mut rows = Vec::new();
    let mut base_cycles = None;
    for depth in [1usize, 2, 4, 16] {
        let cfg = MachineConfig {
            act_queue_depth: depth,
            ..MachineConfig::default()
        };
        let machine = Machine::new(cfg);
        let run = machine.run_layer(&net.layers()[0], None, &xq, false, UvMode::Off);
        let base = *base_cycles.get_or_insert(run.cycles);
        rows.push(vec![
            depth.to_string(),
            run.cycles.to_string(),
            format!("{:.2}x", run.cycles as f64 / base as f64),
            fmt_f(run.events.utilization() * 100.0, 1),
            run.events.noc.sink_stalls.to_string(),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation — buffered NoC flow control (paper §V.B)\n"
    );
    let _ = writeln!(
        out,
        "Fat 16×784 matrix (V-phase shape): each PE holds at most one output row and \
         consumes one activation per cycle, so throughput is bound by delivery. \
         Depth 1 models an unbuffered single-outstanding broadcast (one activation in \
         flight at a time — the broadcast waits out the full tree latency per \
         activation); the paper's buffered credit flow keeps one delivery per cycle.\n"
    );
    out.push_str(&markdown_table(
        &[
            "activation queue depth",
            "cycles",
            "vs depth 1",
            "PE utilization %",
            "root sink stalls",
        ],
        &rows,
    ));
    let _ = writeln!(out);

    // Router-buffer depth, by contrast, barely matters once the PE-side
    // queue exists — credits recycle fast enough at every depth.
    let mut router_rows = Vec::new();
    for cap in [1usize, 2, 4, 8] {
        let mut cfg = MachineConfig::default();
        cfg.noc.queue_capacity = cap;
        let machine = Machine::new(cfg);
        let run = machine.run_layer(&net.layers()[0], None, &xq, false, UvMode::Off);
        router_rows.push(vec![
            cap.to_string(),
            run.cycles.to_string(),
            run.events.noc.credit_stalls.to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "Router buffer depth is far less sensitive (cheap buffers suffice — \
         consistent with the paper's <1% routing area):\n"
    );
    out.push_str(&markdown_table(
        &["router buffer depth", "cycles", "credit stalls"],
        &router_rows,
    ));
    out
}

/// §V.C ablation: column-based vs row-based scheduling of the predictor's
/// V matrix, for rank r ∈ {4, 8, 16, 32, 64}.
///
/// Row-based scheduling maps V's `r` rows onto `r` of the 64 PEs (the rest
/// idle); column-based scheduling (the paper's choice) spreads V's columns
/// over all 64 PEs and reduces partial sums through the tree's ACC stage.
pub fn sched() -> String {
    let mut rng = seeded_rng(0x5CED);
    let n = 784usize;
    let x: Vec<f32> = (0..n)
        .map(|i| {
            if i % 4 == 0 {
                0.0
            } else {
                (i as f32 * 0.13).sin()
            }
        })
        .collect();

    let mut rows = Vec::new();
    for r in [4usize, 8, 16, 32, 64] {
        // The V matrix for this rank.
        let v = sparsenn_core::linalg::init::xavier_uniform(r, n, &mut rng);
        let vq = FixedMatrix::from_float(&v);

        // Row-based: V as an ordinary row-interleaved layer.
        let machine = Machine::new(MachineConfig::default());
        let xq: Vec<_> = x
            .iter()
            .map(|&f| sparsenn_core::numeric::Q6_10::from_f32(f))
            .collect();
        let row_run = machine.run_layer(&vq, None, &xq, false, UvMode::Off);

        // Column-based: the machine's real V phase. Isolate it with a
        // predictor whose U phase is negligible (1 output row) and a W
        // matrix of a single row.
        let w = sparsenn_core::linalg::Matrix::zeros(1, n);
        let mlp = Mlp::new(vec![sparsenn_core::model::DenseLayer::new(w)]);
        // One-layer MLP has no hidden layer; build a 2-layer net instead
        // with the predictor on the first layer.
        let mlp2 = Mlp::new(vec![
            sparsenn_core::model::DenseLayer::new(sparsenn_core::linalg::Matrix::zeros(64, n)),
            sparsenn_core::model::DenseLayer::new(sparsenn_core::linalg::Matrix::zeros(1, 64)),
        ]);
        drop(mlp);
        let pred = sparsenn_core::model::Predictor::new(
            sparsenn_core::linalg::init::xavier_uniform(64, r, &mut rng),
            v.clone(),
        );
        let net = FixedNetwork::from_float(&PredictedNetwork::new(mlp2, vec![pred]));
        let col_run = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &xq,
            true,
            UvMode::On,
        );

        rows.push(vec![
            r.to_string(),
            row_run.cycles.to_string(),
            fmt_f(row_run.events.utilization() * 100.0, 1),
            col_run.vu_cycles.to_string(),
            format!("{:.1}", 100.0 * (r as f64 / 64.0).min(1.0)),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(out, "## Ablation — V-matrix scheduling (paper §V.C)\n");
    let _ = writeln!(
        out,
        "Row-based scheduling uses only r of the 64 PEs (its utilization column is \
         measured); column-based keeps all participating PEs busy regardless of r — \
         the paper claims near-100% V utilization even at r = 16. The `vu cycles` \
         column is the machine's real (V+U) predictor phase at that rank.\n"
    );
    out.push_str(&markdown_table(
        &[
            "rank r",
            "row-based cycles",
            "row-based utilization %",
            "column-based V+U cycles",
            "row-based PE coverage % (r/64)",
        ],
        &rows,
    ));
    out
}

/// Eq. (4) ablation: the sparsity/accuracy trade-off of the ℓ1 factor λ.
pub fn lambda(p: Profile) -> String {
    let mut rows = Vec::new();
    for &lambda in &[0.0f32, 1e-4, 1e-3, 5e-3, 2e-2] {
        let mut cfg = sparsenn_core::train::TrainConfig {
            epochs: p.epochs(),
            lambda,
            ..Default::default()
        };
        cfg.seed = 77;
        let sys = SystemBuilder::new(DatasetKind::Basic)
            .dims(&p.dims_3layer())
            .rank(p.table_rank())
            .algorithm(TrainingAlgorithm::EndToEnd)
            .train_samples(p.train_samples())
            .test_samples(p.test_samples())
            .train_config(cfg)
            .build();
        rows.push(vec![
            format!("{lambda:.0e}"),
            fmt_f(sys.test_error_rate() as f64, 2),
            fmt_f(sys.predicted_sparsity()[0] as f64, 1),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation — ℓ1 regularization factor λ (Eq. (4), profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "Paper: \"a larger regularization factor λ can result in a larger sparsity \
         prediction in each layer, but TER might be affected due to the underfitting.\"\n"
    );
    out.push_str(&markdown_table(
        &["lambda", "TER %", "predicted sparsity %"],
        &rows,
    ));
    out
}
