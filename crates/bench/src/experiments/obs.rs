//! Observability study (beyond the paper — ROADMAP tracing/metrics
//! plane): the end-to-end trace, the unified telemetry registry, and
//! the cost of carrying both.
//!
//! Three measurements:
//!
//! 1. **The trace** — one traced front-end run (admission verdicts,
//!    degrade-batch holds, queue waits, per-shard attempts, hedges and
//!    cancellations), composed with per-chip Broadcast/VU/W/Gather
//!    spans from the partitioned machine for a sample of the same
//!    request ids, exported as Chrome-trace JSON (Perfetto-loadable).
//!    Oracles: byte-identical across reruns for the fixed seed, span
//!    nesting invariants hold, and every attempt/chip span's request id
//!    appears among the request spans.
//! 2. **The registry** — the front-end summary and the wall-clock
//!    profiler drain into one [`MetricsRegistry`]; its sorted text
//!    snapshot is embedded in the report.
//! 3. **The overhead oracle** — the batched serving simulator timed
//!    three ways (plain, traced with a disabled [`NullSink`], traced
//!    into a [`RingRecorder`]), interleaved min-of-N: a disabled sink
//!    must cost ≤ 1 %, an enabled recorder ≤ 10 %.
//!
//! Wall-clock profiling hooks wrap the machine's hot loops
//! (`run` / `run_batch` on the cycle-accurate backend) via
//! [`WallProfiler`] and surface as `profile.*` registry entries.

use crate::{fmt_f, markdown_table};
use sparsenn_core::engine::{
    BatchPolicy, CycleAccurateBackend, FirstIdle, InferenceBackend, LeastQueued, PartitionedMachine,
};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::numeric::Q6_10;
use sparsenn_core::partition::InterChipConfig;
use sparsenn_core::{Profile, TrainedSystem};
use sparsenn_frontend::{
    simulate_frontend_traced, BoundedQueues, DegradeBatching, Fault, FaultPlan, FrontendConfig,
    FrontendSummary, HedgeConfig, SloPolicy,
};
use sparsenn_obs::{
    check_nesting, chrome_trace, MetricsRegistry, NullSink, RingRecorder, SpanKind, WallProfiler,
};
use sparsenn_serve::{
    simulate_batched, simulate_batched_traced, BatchShardSpec, MetricsMode, ShardSpec, Workload,
};
use std::fmt::Write as _;
use std::time::Instant;

/// How many of the traced requests also get per-chip machine spans.
const CHIP_TRACED_REQUESTS: usize = 3;
/// Ring capacity of the always-on flight-recorder configuration the
/// <= 10% overhead oracle prices: the newest spans, bounded so the
/// recorder's working set stays cache-resident.
const FLIGHT_RECORDER_SPANS: usize = 2048;

/// Interleaved timing repetitions for the overhead oracle.
const OVERHEAD_REPS: usize = 15;
/// Requests per timed serving run — large enough that the run is
/// milliseconds, not timer noise.
const OVERHEAD_REQUESTS: usize = 40_000;

/// Measured observability results plus named metrics for
/// `BENCH_results.json` (schema 8).
pub struct ObsReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Runs the observability study, training its own
/// [`study_system`](super::fleet::study_system).
pub fn measure(p: Profile) -> ObsReport {
    measure_with(p, &super::fleet::study_system(p))
}

/// One traced front-end run plus composed chip spans for a sample of
/// its request ids. Everything is a pure function of the inputs, so two
/// calls must produce byte-identical traces.
fn capture_trace(
    fleet: &[ShardSpec],
    gate: &BoundedQueues,
    cfg: &FrontendConfig,
    machine: &PartitionedMachine,
    net: &sparsenn_core::model::fixedpoint::FixedNetwork,
    input: &[Q6_10],
) -> (FrontendSummary, RingRecorder) {
    let recorder = RingRecorder::new(1 << 17);
    let summary = simulate_frontend_traced(fleet, &LeastQueued, gate, cfg, &recorder)
        .expect("the traced study config is valid");
    // Per-chip spans for the first few attempts: re-run the request on
    // the partitioned machine, anchored at the attempt's service start,
    // keyed by the same request id. (The chip timeline illustrates what
    // the shard's silicon does during the attempt; the front end models
    // the shard as one service time.)
    let attempts: Vec<(u64, f64)> = recorder
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Attempt)
        .take(CHIP_TRACED_REQUESTS)
        .map(|s| (s.trace_id, s.start_us))
        .collect();
    for (request_id, start_us) in attempts {
        machine
            .run_traced(net, input, UvMode::On, request_id, start_us, &recorder)
            .expect("the study network fits the 2-chip plan");
    }
    (summary, recorder)
}

/// Runs the observability study on an already-trained system (shared
/// with the other serving studies by `run_all`).
pub fn measure_with(p: Profile, sys: &TrainedSystem) -> ObsReport {
    let backend = CycleAccurateBackend::new(sys.machine().clone());
    let net = sys.fixed();
    let test = &sys.split().test;
    let input = net.quantize_input(test.image(0));

    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(out, "## Observability plane (profile: {p})\n");

    // — Wall-clock profiling hooks around the machine's hot loops —
    let mut prof = WallProfiler::new();
    let serial = prof
        .time("machine.run_network", || {
            backend.run(net, &input, UvMode::On)
        })
        .expect("the study network fits the machine");
    let service_us = serial.time_us();
    let batch_inputs: Vec<Vec<Q6_10>> = (0..4)
        .map(|i| net.quantize_input(test.image(i % test.len())))
        .collect();
    let mut batch_service_us = Vec::with_capacity(4);
    for b in 1..=4 {
        let rec = prof
            .time("machine.run_network_batch", || {
                backend.run_batch(net, &batch_inputs[..b], UvMode::On)
            })
            .expect("the study network fits the machine");
        batch_service_us.push(rec.batch_time_us);
    }

    // — 1. The end-to-end trace —
    let fleet: Vec<ShardSpec> = (0..3)
        .map(|i| ShardSpec::uniform(format!("shard-{i}"), service_us))
        .collect();
    let capacity = 3.0e6 / service_us.max(1e-12);
    let slo = SloPolicy {
        high_us: 12.0 * service_us,
        low_us: 48.0 * service_us,
    };
    let cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: 1.4 * capacity,
            requests: 800,
            seed: 17,
        },
        slo,
    )
    .low_fraction(0.4)
    .hedge(HedgeConfig::hedged(6.0 * service_us))
    .degrade_batching(DegradeBatching::new(4, 8.0 * service_us, 0.3))
    .faults(FaultPlan::new(vec![Fault::Slowdown {
        shard: 0,
        at_us: 10.0 * service_us,
        for_us: 200.0 * service_us,
        factor: 8.0,
    }]));
    let gate = BoundedQueues::new(12, 4).degrade_low_beyond(2);
    let machine =
        PartitionedMachine::new(net, *sys.machine().config(), 2, InterChipConfig::default())
            .expect("the study network splits across 2 chips");

    let (summary, recorder) = capture_trace(&fleet, &gate, &cfg, &machine, net, &input);
    let spans = recorder.spans();
    let trace = chrome_trace(&spans);
    let (_, recorder_again) = capture_trace(&fleet, &gate, &cfg, &machine, net, &input);
    let deterministic = trace == chrome_trace(&recorder_again.spans());
    let nesting = check_nesting(&spans);

    // Coverage: every attempt and chip span correlates to a request
    // span's id — the trace joins layers on one key.
    let request_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .map(|s| s.trace_id)
        .collect();
    let covered = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Attempt | SpanKind::W | SpanKind::Vu))
        .all(|s| request_ids.contains(&s.trace_id));
    let kind_count = |kind: SpanKind| spans.iter().filter(|s| s.kind == kind).count();
    let chip_spans = kind_count(SpanKind::W)
        + kind_count(SpanKind::Vu)
        + kind_count(SpanKind::Broadcast)
        + kind_count(SpanKind::Gather);

    let trace_path =
        std::env::var("SPARSENN_TRACE_JSON").unwrap_or_else(|_| "obs_trace.json".into());
    let written = std::fs::write(&trace_path, &trace).is_ok();

    let _ = writeln!(
        out,
        "### End-to-end trace: front end + 2-chip machine, one request-id key\n"
    );
    out.push_str(&markdown_table(
        &["span kind", "count"],
        &[
            vec!["request".into(), kind_count(SpanKind::Request).to_string()],
            vec![
                "admit / degrade / shed".into(),
                format!(
                    "{} / {} / {}",
                    kind_count(SpanKind::Admit),
                    kind_count(SpanKind::Degrade),
                    kind_count(SpanKind::Shed)
                ),
            ],
            vec![
                "degrade_batch".into(),
                kind_count(SpanKind::DegradeBatch).to_string(),
            ],
            vec!["queued".into(), kind_count(SpanKind::Queued).to_string()],
            vec!["attempt".into(), kind_count(SpanKind::Attempt).to_string()],
            vec![
                "hedge / cancel / retry".into(),
                format!(
                    "{} / {} / {}",
                    kind_count(SpanKind::Hedge),
                    kind_count(SpanKind::Cancel),
                    kind_count(SpanKind::Retry)
                ),
            ],
            vec![
                "chip (broadcast/vu/w/gather)".into(),
                chip_spans.to_string(),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\n{} spans, {} bytes of Chrome-trace JSON{} — load in Perfetto / chrome://tracing.\n\
         \n- trace deterministic across reruns: {}\
         \n- span nesting invariants: {}\
         \n- attempt & chip spans keyed to request ids: {}\n",
        spans.len(),
        trace.len(),
        if written {
            format!(", written to `{trace_path}`")
        } else {
            String::new()
        },
        if deterministic { "yes" } else { "NO — BUG" },
        match &nesting {
            None => "ok".to_string(),
            Some(err) => format!("VIOLATED — {err}"),
        },
        if covered { "yes" } else { "NO — BUG" },
    );
    metrics.push(("obs.trace_spans".into(), spans.len() as f64));
    metrics.push(("obs.trace_bytes".into(), trace.len() as f64));
    metrics.push((
        "obs.trace_deterministic".into(),
        if deterministic { 1.0 } else { 0.0 },
    ));
    metrics.push((
        "obs.nesting_ok".into(),
        if nesting.is_none() { 1.0 } else { 0.0 },
    ));
    metrics.push(("obs.spans_covered".into(), if covered { 1.0 } else { 0.0 }));

    // — 2. The unified registry —
    let mut registry = MetricsRegistry::new();
    summary.export_metrics(&mut registry);
    prof.export_metrics(&mut registry);
    recorder.export_metrics(&mut registry);
    registry.inc("obs.trace_spans", spans.len() as u64);
    registry.set_gauge("obs.trace_bytes", trace.len() as f64);
    let _ = writeln!(
        out,
        "### Unified registry: {} metrics from front end + profiler\n\n```\n{}```\n",
        registry.len(),
        registry.snapshot_text()
    );

    // — 3. The overhead oracle on the batched serving bench —
    // A 4-shard batched fleet at 0.9x aggregate capacity, the shape the
    // serving experiments sweep; spans are per request and per batch, so
    // the traced cost is independent of fleet width while the baseline
    // work (placement views, per-shard queues) is the real thing.
    let overhead_shards: Vec<BatchShardSpec> = (0..4)
        .map(|i| BatchShardSpec::with_table(format!("machine-{i}"), batch_service_us.clone()))
        .collect();
    let workload = Workload::Poisson {
        rate_rps: 4.0 * 0.9e6 / service_us.max(1e-12),
        requests: OVERHEAD_REQUESTS,
        seed: 99,
    };
    let policy = BatchPolicy::SizeOrDeadline {
        max: 4,
        deadline_us: 20.0 * service_us,
    };
    let shards = overhead_shards.as_slice();
    let probe = RingRecorder::new(1 << 17);
    let _ = simulate_batched_traced(
        shards,
        &FirstIdle,
        policy,
        &workload,
        MetricsMode::Streaming,
        &probe,
    );
    let overhead_spans = probe.len();
    drop(probe);
    let time_run = |f: &dyn Fn()| {
        let t = Instant::now();
        f();
        t.elapsed().as_secs_f64()
    };
    // Two enabled configurations, both long-lived (allocated once,
    // cleared per rep, min-of-N skipping the rep that faults buffers
    // in — tracing infrastructure in a real server is allocated at
    // startup, so steady state is what the oracle should price):
    //
    // * the *flight recorder*, a bounded ring keeping the newest
    //   `FLIGHT_RECORDER_SPANS` spans — the always-on configuration,
    //   whose working set stays cache-resident. This one carries the
    //   <= 10% oracle.
    // * *full capture*, a ring sized for the entire trace — the
    //   capture-for-Perfetto configuration. Reported for scale; its
    //   extra cost is streaming every span to DRAM, which is the price
    //   of keeping 6 MB of trace, not of the tracing plane.
    let flight_recorder = RingRecorder::new(FLIGHT_RECORDER_SPANS);
    let full_recorder = RingRecorder::new(1 << 17);
    let (mut base, mut disabled, mut flight, mut full) = (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..OVERHEAD_REPS {
        base = base.min(time_run(&|| {
            let _ = simulate_batched(
                shards,
                &FirstIdle,
                policy,
                &workload,
                MetricsMode::Streaming,
            );
        }));
        disabled = disabled.min(time_run(&|| {
            let _ = simulate_batched_traced(
                shards,
                &FirstIdle,
                policy,
                &workload,
                MetricsMode::Streaming,
                &NullSink,
            );
        }));
        flight = flight.min(time_run(&|| {
            flight_recorder.clear();
            let _ = simulate_batched_traced(
                shards,
                &FirstIdle,
                policy,
                &workload,
                MetricsMode::Streaming,
                &flight_recorder,
            );
        }));
        full = full.min(time_run(&|| {
            full_recorder.clear();
            let _ = simulate_batched_traced(
                shards,
                &FirstIdle,
                policy,
                &workload,
                MetricsMode::Streaming,
                &full_recorder,
            );
        }));
    }
    let pct = |t: f64| (100.0 * (t - base) / base.max(1e-12)).max(0.0);
    let (disabled_pct, enabled_pct, full_pct) = (pct(disabled), pct(flight), pct(full));
    let disabled_ok = disabled_pct <= 1.0;
    let enabled_ok = enabled_pct <= 10.0;
    let _ = writeln!(
        out,
        "### Tracing overhead: {OVERHEAD_REQUESTS} batched requests on {} shards \
         ({overhead_spans} spans), min of {OVERHEAD_REPS}\n",
        shards.len()
    );
    out.push_str(&markdown_table(
        &["pipeline", "wall (ms)", "overhead"],
        &[
            vec![
                "plain `simulate_batched`".into(),
                fmt_f(base * 1e3, 2),
                "—".into(),
            ],
            vec![
                "traced, disabled sink".into(),
                fmt_f(disabled * 1e3, 2),
                format!("{disabled_pct:.2}%"),
            ],
            vec![
                format!("traced, flight recorder ({FLIGHT_RECORDER_SPANS} spans)"),
                fmt_f(flight * 1e3, 2),
                format!("{enabled_pct:.2}%"),
            ],
            vec![
                "traced, full capture (informational)".into(),
                fmt_f(full * 1e3, 2),
                format!("{full_pct:.2}%"),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\n- disabled-sink overhead within 1%: {}\n- enabled-recorder overhead within 10%: {}",
        if disabled_ok {
            "yes"
        } else {
            "NO — REGRESSED"
        },
        if enabled_ok {
            "yes"
        } else {
            "NO — REGRESSED"
        },
    );
    metrics.push(("obs.overhead_disabled_pct".into(), disabled_pct));
    metrics.push(("obs.overhead_enabled_pct".into(), enabled_pct));
    metrics.push((
        "obs.overhead_disabled_ok".into(),
        if disabled_ok { 1.0 } else { 0.0 },
    ));
    metrics.push((
        "obs.overhead_enabled_ok".into(),
        if enabled_ok { 1.0 } else { 0.0 },
    ));

    ObsReport {
        markdown: out,
        metrics,
    }
}

/// Renders the observability report (markdown only — the `obs` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
