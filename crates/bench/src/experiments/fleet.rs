//! Fleet serving: wall-time scaling across simulated accelerator shards
//! (beyond the paper — the "heavy traffic" north star).
//!
//! One request queue, N cycle-accurate shards: per-sample modelled latency
//! is a property of one chip and must stay constant as the fleet grows,
//! while host wall time scales with the shard count. The experiment also
//! re-checks the bit-identical guarantee: every fleet size folds the
//! exact same [`SimulationSummary`](sparsenn_core::SimulationSummary) the
//! serial single-machine path produces.
//!
//! Modelled *throughput* is no longer reported here: the old
//! `shards / latency` expression is degenerate (no queueing, no
//! burstiness, no dispatch policy) and is superseded by the `serve`
//! experiment's virtual-time simulation
//! ([`experiments::serve`](super::serve)).

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::{Profile, SystemBuilder, TrainedSystem, TrainingAlgorithm};
use std::fmt::Write as _;
use std::time::Instant;

/// The small 3-layer system both serving studies (`fleet` and `serve`)
/// measure — training is the expensive part, so `run_all` builds it once
/// and passes it to both [`measure_with`] and
/// [`serve::measure_with`](super::serve::measure_with).
pub fn study_system(p: Profile) -> TrainedSystem {
    // A 3-layer system keeps the studies quick; the serving path is the
    // same one the 5-layer hardware experiments use.
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, p.hidden().min(512), 10])
        .rank(p.table_rank().min(8))
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(p.hw_train_samples() / 2)
        .test_samples(p.test_samples())
        .epochs(2)
        .build()
}

/// One measured fleet configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetPoint {
    /// Shards in the fleet.
    pub shards: usize,
    /// Mean modelled per-sample latency, microseconds (shard clock model).
    pub latency_us: f64,
    /// Host wall-clock seconds for the batch (simulation speed, not a
    /// modelled quantity).
    pub wall_s: f64,
}

/// Measured fleet scaling plus named metrics for `BENCH_results.json`.
pub struct FleetReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Runs the fleet scaling study, training its own [`study_system`].
pub fn measure(p: Profile) -> FleetReport {
    measure_with(p, &study_system(p))
}

/// Runs the fleet scaling study on an already-trained system.
pub fn measure_with(p: Profile, sys: &TrainedSystem) -> FleetReport {
    let dims = sys.network().mlp().dims();
    let batch = (p.sim_samples() * 4).min(sys.split().test.len());

    let serial = sys
        .session()
        .simulate_batch_serial(batch, UvMode::On)
        .expect("the study network fits the default machine");

    let mut points = Vec::new();
    let mut identical = true;
    for shards in [1usize, 2, 4, 8] {
        let session = sys
            .fleet_session(shards)
            .expect("shard counts are positive");
        let t = Instant::now();
        let summary = session
            .simulate_batch(batch, UvMode::On)
            .expect("the study network fits the default machine");
        let wall_s = t.elapsed().as_secs_f64();
        identical &= summary == serial;
        points.push(FleetPoint {
            shards,
            latency_us: summary.time_us(),
            wall_s,
        });
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fleet serving — throughput/latency scaling across shards (profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "{batch} samples, 3-layer [{}, {}, {}] network, one worker per shard. \
         Per-sample latency is one chip's clock model and must not change with \
         the fleet size. (Modelled serving throughput lives in the `serve` \
         experiment's virtual-time simulation, which supersedes the old \
         `shards / latency` figure.)\n",
        dims[0], dims[1], dims[2]
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.shards.to_string(),
                fmt_f(pt.latency_us, 2),
                fmt_f(pt.wall_s, 3),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["shards", "latency/sample (us)", "host wall time (s)"],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nAll fleet summaries bit-identical to the serial single-machine path: {}",
        if identical { "yes" } else { "NO — BUG" }
    );

    let metrics = vec![
        (
            "fleet.latency_us_per_sample".to_string(),
            points[0].latency_us,
        ),
        (
            "fleet.bit_identical".to_string(),
            if identical { 1.0 } else { 0.0 },
        ),
    ];
    FleetReport {
        markdown: out,
        metrics,
    }
}

/// Renders the fleet report (markdown only — the `fleet` bin entry point).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
