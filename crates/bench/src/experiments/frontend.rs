//! Production-front-end study: admission control under overload, hedged
//! requests against injected faults, autoscaling, and the SLO policy
//! sweep (beyond the paper — ROADMAP serving north star).
//!
//! The serve experiment measures *scheduling*; this one measures the
//! control planes above it. Each scenario feeds the cycle-accurate
//! machine's measured per-sample `time_us` table into
//! `sparsenn-frontend`'s virtual-time simulator:
//!
//! * **Overload** (≥1.5× capacity, mixed priority): unbounded admission
//!   lets queues grow until *every* class misses its deadline; bounded
//!   per-class queues shed/degrade low-priority traffic and keep the
//!   high-priority p99 inside the SLO.
//! * **Fault tolerance**: one injected fail-stop plus a straggler
//!   window; hedged requests + retries must strictly beat the unhedged
//!   baseline on goodput.
//! * **Autoscaling**: a bursty workload on a min-sized fleet; the
//!   utilization/P²-p99 autoscaler grows into the burst (paying warm-up)
//!   and retires shards in the quiet phase.
//! * **Policy sweep**: the scheduler × admission × hedging ×
//!   degrade-batching cross product scored by
//!   goodput/shed/SLO-attainment/p99; degrade batching routes the
//!   gate's degrade tier onto the batch-native substrate (held, then
//!   flushed as amortized batches).

use crate::{fmt_f, markdown_table};
use sparsenn_core::engine::{
    AdmitAll, BoundedQueues, CycleAccurateBackend, FastestCompletion, InferenceBackend,
    LeastQueued, Priority,
};
use sparsenn_core::model::fixedpoint::UvMode;
use sparsenn_core::Profile;
use sparsenn_frontend::{
    best_goodput, simulate_frontend, sweep_combos, AutoscaleConfig, DegradeBatching, Fault,
    FaultPlan, FrontendConfig, FrontendSummary, HedgeConfig, SloPolicy,
};
use sparsenn_serve::{fleet_capacity_rps, ShardSpec, Workload};
use std::fmt::Write as _;

/// Measured front-end scenarios plus named metrics for `BENCH_results.json`.
pub struct FrontendReport {
    /// The rendered markdown report.
    pub markdown: String,
    /// Flat `(name, value)` metrics for the machine-readable results.
    pub metrics: Vec<(String, f64)>,
}

/// Per-sample modelled service times of the cycle-accurate machine (same
/// bridge as the serve experiment).
fn machine_table(sys: &sparsenn_core::TrainedSystem, batch: usize) -> Vec<f64> {
    let backend: Box<dyn InferenceBackend> =
        Box::new(CycleAccurateBackend::new(sys.machine().clone()));
    let mut table = Vec::with_capacity(batch);
    sys.session_with(backend)
        .stream_batch(batch, UvMode::On, |_, record| {
            table.push(record.time_us());
        })
        .expect("the study network fits the machine");
    table
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn class_row(label: &str, s: &FrontendSummary, class: Priority) -> Vec<String> {
    let c = s.class(class);
    vec![
        label.to_string(),
        format!("{class:?}"),
        fmt_f(c.offered as f64, 0),
        fmt_f(c.shed as f64, 0),
        fmt_f(c.degraded as f64, 0),
        fmt_f(c.latency.p99_us, 1),
        fmt_f(c.slo_attainment() * 100.0, 1),
    ]
}

/// Runs the front-end study, training its own
/// [`study_system`](super::fleet::study_system).
pub fn measure(p: Profile) -> FrontendReport {
    measure_with(p, &super::fleet::study_system(p))
}

/// Runs the front-end study on an already-trained system (shared with the
/// fleet/serve experiments by `run_all`; only the per-sample latency
/// table is consumed).
pub fn measure_with(p: Profile, sys: &sparsenn_core::TrainedSystem) -> FrontendReport {
    let batch = (p.sim_samples() * 4).min(sys.split().test.len());
    let machine_us = machine_table(sys, batch);
    let service = mean(&machine_us);

    let fleet: Vec<ShardSpec> = (0..4)
        .map(|i| ShardSpec::with_table(format!("machine-{i}"), machine_us.clone()))
        .collect();
    let capacity = fleet_capacity_rps(&fleet);
    // Deadlines scaled to the measured service time: tight for High
    // (queueing past ~a bounded queue's worth busts it), loose for Low.
    let slo = SloPolicy {
        high_us: 30.0 * service,
        low_us: 120.0 * service,
    };
    let requests = 4000;

    let mut out = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(
        out,
        "## Production front end — admission, hedging, autoscaling (profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "4-shard fleet of cycle-accurate machines ({batch}-sample measured \
         service table, mean {:.1} µs, capacity {:.0} rps). SLO: high \
         {:.0} µs, low {:.0} µs. All runs share the seeded arrival and \
         class streams, so every delta below is policy.\n",
        service, capacity, slo.high_us, slo.low_us,
    );
    metrics.push(("frontend.capacity_rps".into(), capacity));

    // — Overload: admit-all vs bounded per-class queues —
    let overload = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: capacity * 1.5,
            requests,
            seed: 1711,
        },
        slo,
    )
    .low_fraction(0.35);
    let bounded = BoundedQueues::new(12, 6).degrade_low_beyond(2);
    let admit_all = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &overload)
        .expect("valid overload configuration");
    let shed = simulate_frontend(&fleet, &LeastQueued, &bounded, &overload)
        .expect("valid overload configuration");
    let _ = writeln!(
        out,
        "### Overload: Poisson at 1.5x capacity, 35% low-priority, {requests} requests\n"
    );
    let mut rows = Vec::new();
    for (label, s) in [("admit-all", &admit_all), ("bounded", &shed)] {
        for class in [Priority::High, Priority::Low] {
            rows.push(class_row(label, s, class));
        }
    }
    out.push_str(&markdown_table(
        &[
            "admission",
            "class",
            "offered",
            "shed",
            "degraded",
            "p99 (µs)",
            "SLO att. (%)",
        ],
        &rows,
    ));
    let high_p99 = shed.class(Priority::High).latency.p99_us;
    let high_ok = high_p99 <= slo.high_us;
    let low_absorbs =
        shed.class(Priority::Low).shed_rate() > shed.class(Priority::High).shed_rate();
    let _ = writeln!(
        out,
        "\nBounded admission sheds {:.1}% of offered load (vs {:.1}% \
         admit-all) and holds the high-priority p99 at {:.1} µs against a \
         {:.0} µs SLO — {}; low-priority absorbs the overload — {}. \
         Goodput: {:.0} rps bounded vs {:.0} rps admit-all.\n",
        shed.shed_rate * 100.0,
        admit_all.shed_rate * 100.0,
        high_p99,
        slo.high_us,
        if high_ok {
            "within SLO"
        } else {
            "SLO MISS — BUG"
        },
        if low_absorbs {
            "yes"
        } else {
            "NO — investigate"
        },
        shed.goodput_rps,
        admit_all.goodput_rps,
    );
    for (label, s) in [("admit-all", &admit_all), ("bounded", &shed)] {
        metrics.push((
            format!("frontend.overload.goodput_rps.{label}"),
            s.goodput_rps,
        ));
        metrics.push((format!("frontend.overload.shed_rate.{label}"), s.shed_rate));
        metrics.push((
            format!("frontend.overload.slo_attainment.{label}"),
            s.slo_attainment,
        ));
        metrics.push((
            format!("frontend.overload.high_p99_us.{label}"),
            s.class(Priority::High).latency.p99_us,
        ));
    }
    metrics.push((
        "frontend.high_p99_within_slo".into(),
        if high_ok { 1.0 } else { 0.0 },
    ));
    metrics.push((
        "frontend.low_absorbs_overload".into(),
        if low_absorbs { 1.0 } else { 0.0 },
    ));

    // — Fault tolerance: hedging + retries vs none —
    // Moderate load (the fleet survives losing a shard) with two faults
    // hedging is built for: a fail-stop that kills in-flight work, and a
    // near-hung shard (60× straggler — service alone busts the SLO).
    // LeastQueued keeps feeding the straggler (depth says nothing about
    // speed), so the unhedged run strands every request routed there;
    // hedges fire well past the normal queue wait and race a duplicate
    // on a healthy shard.
    let horizon = requests as f64 / (capacity * 0.65) * 1e6;
    let faults = FaultPlan::new(vec![
        Fault::FailStop {
            shard: 0,
            at_us: horizon * 0.25,
            down_us: horizon * 0.15,
        },
        Fault::Slowdown {
            shard: 1,
            at_us: horizon * 0.55,
            for_us: horizon * 0.25,
            factor: 60.0,
        },
    ]);
    let faulty = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: capacity * 0.65,
            requests,
            seed: 1711,
        },
        slo,
    )
    .faults(faults);
    let unhedged = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &faulty)
        .expect("valid fault configuration");
    let hedged_cfg = faulty.clone().hedge(HedgeConfig::hedged(8.0 * service));
    let hedged = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &hedged_cfg)
        .expect("valid fault configuration");
    let _ = writeln!(
        out,
        "### Fault tolerance: 65% load, one fail-stop (15% of the run) + one 60x straggler window\n"
    );
    let mut rows = Vec::new();
    for (label, s) in [("unhedged", &unhedged), ("hedged", &hedged)] {
        rows.push(vec![
            label.to_string(),
            fmt_f(s.goodput_rps, 0),
            fmt_f(s.class(Priority::High).failed as f64, 0),
            fmt_f(s.retries as f64, 0),
            fmt_f(s.hedges_issued as f64, 0),
            fmt_f(s.hedge_wins as f64, 0),
            fmt_f(s.class(Priority::High).latency.p99_us, 1),
            fmt_f(s.slo_attainment * 100.0, 1),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "policy",
            "goodput (rps)",
            "failed",
            "retries",
            "hedges",
            "hedge wins",
            "p99 (µs)",
            "SLO att. (%)",
        ],
        &rows,
    ));
    let hedged_wins = hedged.goodput_rps > unhedged.goodput_rps;
    let _ = writeln!(
        out,
        "\nHedged goodput {:.0} rps vs unhedged {:.0} rps — hedging {}.\n",
        hedged.goodput_rps,
        unhedged.goodput_rps,
        if hedged_wins {
            "wins"
        } else {
            "DOES NOT WIN — investigate"
        },
    );
    metrics.push((
        "frontend.fault.goodput_rps.unhedged".into(),
        unhedged.goodput_rps,
    ));
    metrics.push((
        "frontend.fault.goodput_rps.hedged".into(),
        hedged.goodput_rps,
    ));
    metrics.push((
        "frontend.fault.slo_attainment.hedged".into(),
        hedged.slo_attainment,
    ));
    metrics.push((
        "frontend.hedged_beats_unhedged".into(),
        if hedged_wins { 1.0 } else { 0.0 },
    ));

    // — Autoscaling into a bursty workload —
    let scaled_cfg = FrontendConfig::new(
        Workload::Bursty {
            low_rps: capacity * 0.1,
            high_rps: capacity * 0.9,
            period_us: 80.0 * service,
            duty: 0.3,
            requests,
            seed: 1711,
        },
        slo,
    )
    .autoscale(AutoscaleConfig::new(1, 4, 20.0 * service, 10.0 * service));
    let scaled = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &scaled_cfg)
        .expect("valid autoscale configuration");
    let reacts = scaled.scale_outs > 0 && scaled.scale_ins > 0;
    let _ = writeln!(
        out,
        "### Autoscaling: bursty arrivals (0.9x/0.1x capacity, 30% duty), fleet 1..=4 shards\n\n\
         Starting from 1 shard, the autoscaler took {} scale-outs and {} \
         scale-ins (peak {} shards active, {} at the end; warm-up {:.0} µs \
         per shard) — {}. SLO attainment {:.1}%, goodput {:.0} rps.\n",
        scaled.scale_outs,
        scaled.scale_ins,
        scaled.peak_active_shards,
        scaled.final_active_shards,
        10.0 * service,
        if reacts {
            "grew into the burst and shrank back"
        } else {
            "DID NOT REACT — investigate"
        },
        scaled.slo_attainment * 100.0,
        scaled.goodput_rps,
    );
    metrics.push((
        "frontend.autoscale.scale_outs".into(),
        scaled.scale_outs as f64,
    ));
    metrics.push((
        "frontend.autoscale.scale_ins".into(),
        scaled.scale_ins as f64,
    ));
    metrics.push((
        "frontend.autoscale.peak_active_shards".into(),
        scaled.peak_active_shards as f64,
    ));
    metrics.push((
        "frontend.autoscale.slo_attainment".into(),
        scaled.slo_attainment,
    ));
    metrics.push((
        "frontend.autoscale.reacts".into(),
        if reacts { 1.0 } else { 0.0 },
    ));

    // — Policy sweep over the overload + fault scenario —
    let overload_horizon = requests as f64 / (capacity * 1.5) * 1e6;
    let sweep_base =
        overload
            .clone()
            .faults(FaultPlan::random(fleet.len(), overload_horizon, 1, 1, 1711));
    let combos = sweep_combos(
        &fleet,
        &sweep_base,
        &[&LeastQueued, &FastestCompletion],
        &[&AdmitAll, &bounded],
        &[HedgeConfig::disabled(), HedgeConfig::hedged(4.0 * service)],
        &[None],
        // The degrade tier either takes the flat 0.5x discount or rides
        // amortized batches of up to 4 (flushed by 8 mean services).
        &[None, Some(DegradeBatching::new(4, 8.0 * service, 0.3))],
    )
    .expect("valid sweep configuration");
    let _ = writeln!(
        out,
        "### SLO sweep: scheduler x admission x hedging x degrade-batching \
         at 1.5x capacity with random faults\n"
    );
    let mut rows = Vec::new();
    for c in &combos {
        rows.push(vec![
            c.label(),
            fmt_f(c.summary.goodput_rps, 0),
            fmt_f(c.summary.shed_rate * 100.0, 1),
            fmt_f(c.summary.slo_attainment * 100.0, 1),
            fmt_f(c.summary.class(Priority::High).latency.p99_us, 1),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "combo",
            "goodput (rps)",
            "shed (%)",
            "SLO att. (%)",
            "high p99 (µs)",
        ],
        &rows,
    ));
    let best = best_goodput(&combos).expect("sweep is non-empty");
    let _ = writeln!(
        out,
        "\nBest goodput: **{}** at {:.0} rps ({:.1}% SLO attainment).",
        best.label(),
        best.summary.goodput_rps,
        best.summary.slo_attainment * 100.0,
    );
    metrics.push((
        "frontend.sweep.best_goodput_rps".into(),
        best.summary.goodput_rps,
    ));
    metrics.push((
        "frontend.sweep.best_slo_attainment".into(),
        best.summary.slo_attainment,
    ));

    FrontendReport {
        markdown: out,
        metrics,
    }
}

/// Renders the front-end report (markdown only — the `frontend` bin).
pub fn run(p: Profile) -> String {
    measure(p).markdown
}
