//! Fig. 6: TER and predicted output sparsity vs predictor rank, 3-layer
//! network, Truncated-SVD vs End-to-End, on BASIC / ROT / BG-RAND.

use crate::{fmt_f, markdown_table};
use sparsenn_core::datasets::DatasetKind;
use sparsenn_core::{Profile, SystemBuilder, TrainingAlgorithm};
use std::fmt::Write as _;

/// One `(rank, algorithm)` measurement.
#[derive(Clone, Copy, Debug)]
pub struct RankPoint {
    /// Predictor rank.
    pub rank: usize,
    /// Test error rate, %.
    pub ter: f32,
    /// Mean predicted output sparsity of the hidden layer, %.
    pub sparsity: f32,
}

/// Measured series for one dataset.
#[derive(Clone, Debug)]
pub struct Fig6Series {
    /// Dataset variant.
    pub kind: DatasetKind,
    /// NO-UV reference TER, %.
    pub no_uv_ter: f32,
    /// Truncated-SVD points, by descending rank.
    pub svd: Vec<RankPoint>,
    /// End-to-End points, by descending rank.
    pub end_to_end: Vec<RankPoint>,
}

fn measure(kind: DatasetKind, alg: TrainingAlgorithm, rank: usize, p: Profile) -> RankPoint {
    let sys = SystemBuilder::new(kind)
        .dims(&p.dims_3layer())
        .rank(rank)
        .algorithm(alg)
        .train_samples(p.train_samples())
        .test_samples(p.test_samples())
        .epochs(p.epochs())
        .build();
    RankPoint {
        rank,
        ter: sys.test_error_rate(),
        sparsity: sys.predicted_sparsity()[0],
    }
}

/// Runs the full Fig. 6 sweep for one dataset.
pub fn sweep(kind: DatasetKind, p: Profile) -> Fig6Series {
    let no_uv = SystemBuilder::new(kind)
        .dims(&p.dims_3layer())
        .rank(4)
        .algorithm(TrainingAlgorithm::NoUv)
        .train_samples(p.train_samples())
        .test_samples(p.test_samples())
        .epochs(p.epochs())
        .build();
    let ranks = p.rank_sweep();
    Fig6Series {
        kind,
        no_uv_ter: no_uv.test_error_rate(),
        svd: ranks
            .iter()
            .map(|&r| measure(kind, TrainingAlgorithm::Svd, r, p))
            .collect(),
        end_to_end: ranks
            .iter()
            .map(|&r| measure(kind, TrainingAlgorithm::EndToEnd, r, p))
            .collect(),
    }
}

/// Renders the Fig. 6 report for all three datasets.
pub fn run(p: Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fig. 6 — TER and output sparsity vs rank (3-layer, profile: {p})\n"
    );
    let _ = writeln!(
        out,
        "Paper shape to reproduce: End-to-End TER tracks (or beats) SVD and degrades \
         much more slowly as the rank shrinks (≈1% gap on ROT at small ranks), while \
         End-to-End holds clearly higher predicted sparsity at small ranks.\n"
    );
    for kind in DatasetKind::ALL {
        let s = sweep(kind, p);
        let _ = writeln!(
            out,
            "### {kind} (NO UV reference TER: {:.2}%)\n",
            s.no_uv_ter
        );
        let rows: Vec<Vec<String>> = s
            .svd
            .iter()
            .zip(&s.end_to_end)
            .map(|(svd, e2e)| {
                vec![
                    svd.rank.to_string(),
                    fmt_f(svd.ter as f64, 2),
                    fmt_f(e2e.ter as f64, 2),
                    fmt_f(svd.sparsity as f64, 1),
                    fmt_f(e2e.sparsity as f64, 1),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "rank r",
                "TER% SVD",
                "TER% End-to-End",
                "sparsity% SVD",
                "sparsity% End-to-End",
            ],
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}
