//! Trace-export tests: the Chrome-trace JSON the obs exporter writes is
//! valid JSON (re-read with the workspace's own reader), structurally a
//! Perfetto trace-event document, byte-identical for a fixed seed, and
//! its span lists satisfy the nesting invariants under randomized
//! workloads (property-tested).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sparsenn_bench::report::json::{lookup, parse, JsonValue};
use sparsenn_core::engine::{BatchPolicy, FirstIdle, LeastQueued};
use sparsenn_frontend::{
    simulate_frontend_traced, BoundedQueues, DegradeBatching, FrontendConfig, HedgeConfig,
    SloPolicy,
};
use sparsenn_obs::{check_nesting, chrome_trace, RingRecorder, Span, SpanKind};
use sparsenn_serve::{simulate_batched_traced, BatchShardSpec, MetricsMode, ShardSpec, Workload};

/// One traced front-end run on a synthetic 2-shard fleet: overload at
/// 1.2x capacity with hedging and degrade batching on, so the trace
/// exercises every span kind the front end emits.
fn frontend_spans(seed: u64, rate_factor: f64) -> Vec<Span> {
    let service = 100.0;
    let fleet: Vec<ShardSpec> = (0..2)
        .map(|i| ShardSpec::uniform(format!("shard-{i}"), service))
        .collect();
    let slo = SloPolicy {
        high_us: 12.0 * service,
        low_us: 48.0 * service,
    };
    let cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: rate_factor * 2.0e6 / service,
            requests: 300,
            seed,
        },
        slo,
    )
    .low_fraction(0.4)
    .hedge(HedgeConfig::hedged(6.0 * service))
    .degrade_batching(DegradeBatching::new(4, 8.0 * service, 0.3));
    let gate = BoundedQueues::new(8, 3).degrade_low_beyond(2);
    let recorder = RingRecorder::new(1 << 16);
    simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &recorder)
        .expect("the synthetic fleet config is valid");
    recorder.spans()
}

/// One traced batched-serving run (batch-assembly / service / request
/// spans on the serve track).
fn serve_spans(seed: u64) -> Vec<Span> {
    let shards: Vec<BatchShardSpec> = (0..2)
        .map(|i| {
            BatchShardSpec::with_table(format!("machine-{i}"), vec![90.0, 160.0, 220.0, 270.0])
        })
        .collect();
    let recorder = RingRecorder::new(1 << 16);
    simulate_batched_traced(
        &shards,
        &FirstIdle,
        BatchPolicy::SizeOrDeadline {
            max: 4,
            deadline_us: 400.0,
        },
        &Workload::Poisson {
            rate_rps: 18_000.0,
            requests: 500,
            seed,
        },
        MetricsMode::Streaming,
        &recorder,
    )
    .expect("the synthetic batched fleet config is valid");
    recorder.spans()
}

/// Every trace event must carry the fields Perfetto requires for its
/// phase; args-bearing events must parse as objects.
fn assert_perfetto_shaped(trace: &str) {
    let doc = parse(trace).expect("exporter output must be valid JSON");
    let fields = doc.as_object().expect("top level is an object");
    let events = match lookup(fields, "traceEvents") {
        Some(JsonValue::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must contain events");
    let mut phases = std::collections::BTreeMap::new();
    for ev in events {
        let ev = ev.as_object().expect("every event is an object");
        let ph = lookup(ev, "ph")
            .and_then(JsonValue::as_str)
            .expect("every event has a phase");
        *phases.entry(ph.to_string()).or_insert(0usize) += 1;
        for key in ["name", "pid", "tid"] {
            assert!(lookup(ev, key).is_some(), "phase {ph} event missing {key}");
        }
        match ph {
            "M" | "X" | "b" => {
                let args = lookup(ev, "args")
                    .and_then(JsonValue::as_object)
                    .expect("metadata/begin/complete events carry args");
                if ph != "M" {
                    assert!(
                        lookup(args, "trace_id")
                            .and_then(JsonValue::as_f64)
                            .is_some(),
                        "span events are self-describing via args.trace_id"
                    );
                }
            }
            "e" => {}
            other => panic!("unexpected phase {other}"),
        }
        if ph == "b" || ph == "e" {
            assert!(lookup(ev, "id").is_some(), "async events are keyed by id");
        }
        if ph == "X" {
            let dur = lookup(ev, "dur")
                .and_then(JsonValue::as_f64)
                .expect("complete events carry a duration");
            assert!(dur >= 0.0, "durations are never negative");
        }
    }
    assert_eq!(
        phases.get("b"),
        phases.get("e"),
        "async begin/end events must pair up"
    );
    assert!(phases.contains_key("M"), "lane metadata must be present");
}

#[test]
fn frontend_trace_is_valid_perfetto_json() {
    let spans = frontend_spans(17, 1.2);
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::Attempt),
        "overloaded run must service attempts"
    );
    assert_perfetto_shaped(&chrome_trace(&spans));
}

#[test]
fn serve_trace_is_valid_perfetto_json() {
    let spans = serve_spans(23);
    for kind in [
        SpanKind::BatchAssembly,
        SpanKind::Service,
        SpanKind::Request,
    ] {
        assert!(
            spans.iter().any(|s| s.kind == kind),
            "batched run must emit {kind:?} spans"
        );
    }
    assert_perfetto_shaped(&chrome_trace(&spans));
}

#[test]
fn fixed_seed_traces_are_byte_identical() {
    assert_eq!(
        chrome_trace(&frontend_spans(17, 1.2)),
        chrome_trace(&frontend_spans(17, 1.2)),
        "same seed, same bytes (frontend)"
    );
    assert_eq!(
        chrome_trace(&serve_spans(23)),
        chrome_trace(&serve_spans(23)),
        "same seed, same bytes (serve)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Span-nesting invariants hold for arbitrary seeds and loads, from
    /// underload through heavy overload: children stay inside their
    /// request span, queue waits precede their attempts, and no span has
    /// negative duration.
    #[test]
    fn nesting_invariants_hold_under_random_load(
        seed in 0u64..10_000,
        rate_pct in 40u32..200,
    ) {
        let spans = frontend_spans(seed, f64::from(rate_pct) / 100.0);
        prop_assert!(!spans.is_empty());
        if let Some(err) = check_nesting(&spans) {
            return Err(TestCaseError::fail(format!("nesting violated: {err}")));
        }
        let spans = serve_spans(seed);
        if let Some(err) = check_nesting(&spans) {
            return Err(TestCaseError::fail(format!("serve nesting violated: {err}")));
        }
    }
}
