//! The end-to-end experiment pipeline.

use crate::engine::{CycleAccurateBackend, InferenceBackend, Session};
use crate::error::SparseNnError;
use sparsenn_datasets::{DatasetKind, DatasetSpec, SplitDataset};
use sparsenn_energy::PowerReport;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_model::stats::{predicted_sparsity, test_error_rate, EvalMode};
use sparsenn_model::PredictedNetwork;
use sparsenn_sim::{Machine, MachineConfig, MachineEvents, NetworkRun};
use sparsenn_train::{end_to_end, no_uv, svd_baseline, TrainConfig};

/// Which training regime produces the predictor (the three rows of the
/// paper's Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TrainingAlgorithm {
    /// The paper's Algorithm 1 (predictor trained by backprop + STE).
    #[default]
    EndToEnd,
    /// Truncated-SVD predictor refreshed once per epoch (LRADNN baseline).
    Svd,
    /// No predictor at all ("NO UV"); the network still *carries* random
    /// predictors so it can be simulated, but evaluation ignores them.
    NoUv,
}

impl TrainingAlgorithm {
    /// Stable single-token identifier (used by checkpoint files).
    pub fn tag(&self) -> &'static str {
        match self {
            TrainingAlgorithm::EndToEnd => "end-to-end",
            TrainingAlgorithm::Svd => "svd",
            TrainingAlgorithm::NoUv => "no-uv",
        }
    }

    /// Parses a [`tag`](Self::tag) back into the algorithm.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "end-to-end" => Some(TrainingAlgorithm::EndToEnd),
            "svd" => Some(TrainingAlgorithm::Svd),
            "no-uv" => Some(TrainingAlgorithm::NoUv),
            _ => None,
        }
    }
}

impl std::fmt::Display for TrainingAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrainingAlgorithm::EndToEnd => "End-to-End",
            TrainingAlgorithm::Svd => "SVD",
            TrainingAlgorithm::NoUv => "NO UV",
        })
    }
}

/// Builder assembling a full SparseNN experiment: dataset → training →
/// quantization → simulator.
///
/// # Example
///
/// ```
/// use sparsenn_core::{SystemBuilder, TrainingAlgorithm};
/// use sparsenn_core::datasets::DatasetKind;
/// let sys = SystemBuilder::new(DatasetKind::Rot)
///     .algorithm(TrainingAlgorithm::Svd)
///     .dims(&[784, 32, 10])
///     .rank(4)
///     .train_samples(60)
///     .test_samples(20)
///     .epochs(1)
///     .build();
/// assert_eq!(sys.network().predictors().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    kind: DatasetKind,
    dims: Vec<usize>,
    rank: usize,
    algorithm: TrainingAlgorithm,
    train_samples: usize,
    test_samples: usize,
    config: TrainConfig,
    machine: MachineConfig,
}

impl SystemBuilder {
    /// Starts a builder for the given dataset variant with the paper's
    /// 3-layer network defaults.
    pub fn new(kind: DatasetKind) -> Self {
        Self {
            kind,
            dims: vec![784, 1000, 10],
            rank: 15,
            algorithm: TrainingAlgorithm::EndToEnd,
            train_samples: 1000,
            test_samples: 500,
            config: TrainConfig::default(),
            machine: MachineConfig::default(),
        }
    }

    /// Layer sizes (`[input, hidden…, output]`).
    pub fn dims(mut self, dims: &[usize]) -> Self {
        self.dims = dims.to_vec();
        self
    }

    /// Predictor rank `r`.
    pub fn rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Training algorithm.
    pub fn algorithm(mut self, algorithm: TrainingAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Number of generated training samples.
    pub fn train_samples(mut self, n: usize) -> Self {
        self.train_samples = n;
        self
    }

    /// Number of generated test samples.
    pub fn test_samples(mut self, n: usize) -> Self {
        self.test_samples = n;
        self
    }

    /// Training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Full training configuration (overrides [`epochs`](Self::epochs)).
    pub fn train_config(mut self, config: TrainConfig) -> Self {
        self.config = config;
        self
    }

    /// Machine configuration for the simulator.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Generates the data, trains the network and quantizes it.
    pub fn build(self) -> TrainedSystem {
        let spec = DatasetSpec {
            kind: self.kind,
            train: self.train_samples,
            test: self.test_samples,
            seed: self.config.seed,
        };
        let split = spec.generate();
        let machine_config = self.machine;
        let net = match self.algorithm {
            TrainingAlgorithm::EndToEnd => {
                end_to_end::train(&self.dims, self.rank, &split, &self.config).0
            }
            TrainingAlgorithm::Svd => {
                svd_baseline::train(&self.dims, self.rank, &split, &self.config).0
            }
            TrainingAlgorithm::NoUv => {
                let (mlp, _) = no_uv::train(&self.dims, &split, &self.config);
                // Attach SVD predictors so the hardware path stays runnable;
                // NO-UV evaluation ignores them.
                let mut rng = sparsenn_linalg::init::seeded_rng(self.config.seed);
                let mut net = PredictedNetwork::with_random_predictors(mlp, self.rank, &mut rng);
                svd_baseline::refresh_predictors(&mut net, self.rank, self.config.seed);
                net
            }
        };
        let fixed = FixedNetwork::from_float(&net);
        TrainedSystem {
            spec,
            algorithm: self.algorithm,
            split,
            net,
            fixed,
            machine: Machine::new(machine_config),
        }
    }
}

/// A trained, quantized, simulatable SparseNN system.
#[derive(Clone, Debug)]
pub struct TrainedSystem {
    /// The generating spec of `split` — regenerating from it is how a
    /// checkpoint reload reproduces the identical test set.
    spec: DatasetSpec,
    algorithm: TrainingAlgorithm,
    split: SplitDataset,
    net: PredictedNetwork,
    fixed: FixedNetwork,
    machine: Machine,
}

/// Per-hidden-layer aggregate of a batch simulation (the unit of Fig. 7).
///
/// Units are deliberately explicit, because Table IV prices energy from
/// them: `cycles`, `vu_cycles`, `time_us` and `energy_uj` are **per-sample
/// means**; `events` is the **batch total**, and `power` is estimated over
/// that batch total (its `time_us`/`energy_uj` are batch totals too, while
/// its power rates in mW are batch-size invariant).
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSummary {
    /// Mean total cycles per sample.
    pub cycles: f64,
    /// Mean predictor-phase cycles per sample.
    pub vu_cycles: f64,
    /// Mean modelled latency per sample, microseconds, on the backend's
    /// own clock model (0 for timing-free backends).
    pub time_us: f64,
    /// Mean energy per sample, microjoules (`power.energy_uj / samples`),
    /// priced at the backend's own technology node.
    pub energy_uj: f64,
    /// Event counters summed over the whole batch.
    pub events: MachineEvents,
    /// Power/energy estimate over the batch-total `events`, priced at the
    /// backend's technology node. `power.time_us` and `power.energy_uj`
    /// are batch totals; the mW rates are per-sample invariant.
    pub power: PowerReport,
}

/// Result of simulating a batch of samples.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationSummary {
    /// One entry per network layer (hidden layers first, classifier last).
    pub layers: Vec<LayerSummary>,
    /// Samples simulated.
    pub samples: usize,
    /// Fraction of simulated samples classified correctly.
    pub fixed_accuracy: f32,
}

impl SimulationSummary {
    /// Mean end-to-end modelled latency per sample, microseconds (layers
    /// execute back to back, so per-layer latencies sum). 0 for
    /// timing-free backends.
    pub fn time_us(&self) -> f64 {
        self.layers.iter().map(|l| l.time_us).sum()
    }

    /// Mean energy per sample over all layers, microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_uj).sum()
    }
}

impl TrainedSystem {
    /// The dataset variant the system was trained on.
    pub fn kind(&self) -> DatasetKind {
        self.spec.kind
    }

    /// The training algorithm used.
    pub fn algorithm(&self) -> TrainingAlgorithm {
        self.algorithm
    }

    /// The generated train/test split.
    pub fn split(&self) -> &SplitDataset {
        &self.split
    }

    /// The trained float network.
    pub fn network(&self) -> &PredictedNetwork {
        &self.net
    }

    /// The quantized network the simulator runs.
    pub fn fixed(&self) -> &FixedNetwork {
        &self.fixed
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Test error rate (%), using the evaluation mode matching the
    /// training algorithm (predictor-gated unless NO-UV).
    pub fn test_error_rate(&self) -> f32 {
        let mode = match self.algorithm {
            TrainingAlgorithm::NoUv => EvalMode::Plain,
            _ => EvalMode::Predicted,
        };
        test_error_rate(&self.net, &self.split.test, mode)
    }

    /// Mean predicted output sparsity per hidden layer (%), on the test
    /// set — the paper's ρ⁽ˡ⁾.
    pub fn predicted_sparsity(&self) -> Vec<f32> {
        predicted_sparsity(&self.net, &self.split.test)
    }

    /// Opens a serving [`Session`] over the cycle-accurate machine.
    pub fn session(&self) -> Session<'_> {
        self.session_with(Box::new(CycleAccurateBackend::new(self.machine.clone())))
    }

    /// Opens a serving [`Session`] over any execution substrate.
    pub fn session_with(&self, backend: Box<dyn InferenceBackend>) -> Session<'_> {
        Session::new(self, backend)
    }

    /// Opens a serving [`Session`] over the native CPU kernel
    /// ([`KernelBackend`](crate::engine::KernelBackend)) — bit-identical
    /// results to every other substrate, but the latency you observe
    /// around the calls is real wall-clock, not a model.
    pub fn kernel_session(&self) -> Session<'_> {
        self.session_with(Box::new(crate::engine::KernelBackend::new()))
    }

    /// Opens a serving [`Session`] over a [`Fleet`](crate::engine::Fleet)
    /// of `shards` identically-configured cycle-accurate machines, with
    /// one batch worker per shard — the sharded-datacenter setup. Batch
    /// summaries are bit-identical to a single machine's (and to the
    /// serial path's): every shard produces the same deterministic record
    /// for a given sample.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyFleet`] when `shards == 0`.
    pub fn fleet_session(&self, shards: usize) -> Result<Session<'_>, SparseNnError> {
        let fleet = crate::engine::Fleet::of_machines(shards, *self.machine.config())?;
        Ok(self.session_with(Box::new(fleet)).with_workers(shards))
    }

    /// Opens a serving [`Session`] over a
    /// [`PartitionedMachine`](crate::engine::PartitionedMachine) of
    /// `chips` cycle-accurate chips (each configured like this system's
    /// machine, linked by the default
    /// [`InterChipConfig`](sparsenn_partition::InterChipConfig)) — the
    /// model-parallel front door for networks bigger than one chip's W
    /// memory. Outputs are bit-identical to the single-chip session's
    /// whenever the network fits one chip; latency and energy include
    /// the inter-chip broadcast/gather.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::WMemoryOverflow`] when even a best split of some
    /// layer overflows one chip's W memory, plus the planner errors of
    /// [`PartitionedMachine::new`](crate::engine::PartitionedMachine::new).
    pub fn partitioned_session(&self, chips: usize) -> Result<Session<'_>, SparseNnError> {
        let backend = crate::engine::PartitionedMachine::new(
            &self.fixed,
            *self.machine.config(),
            chips,
            sparsenn_partition::InterChipConfig::default(),
        )?;
        Ok(self.session_with(Box::new(backend)))
    }

    /// Opens a serving [`Session`] like
    /// [`partitioned_session`](Self::partitioned_session), but on the
    /// **wavefront-pipelined** schedule
    /// ([`PipelineMode::Wavefront`](sparsenn_partition::PipelineMode)):
    /// each chip's output slice crosses the interconnect as its rows
    /// become available and downstream layers start as soon as their
    /// gathered input lands, overlapping inter-chip communication with
    /// compute. Outputs, masks and energy/event sums are bit-identical
    /// to the serialized session's — only the modelled latency drops.
    ///
    /// # Errors
    ///
    /// As for [`partitioned_session`](Self::partitioned_session).
    pub fn partitioned_session_pipelined(
        &self,
        chips: usize,
    ) -> Result<Session<'_>, SparseNnError> {
        let backend = crate::engine::PartitionedMachine::with_pipeline(
            &self.fixed,
            *self.machine.config(),
            chips,
            sparsenn_partition::InterChipConfig::default(),
            sparsenn_partition::PipelineMode::Wavefront,
        )?;
        Ok(self.session_with(Box::new(backend)))
    }

    /// Measures, on the first `samples` test images (clamped to the
    /// test-set size), the fraction of samples each output row is
    /// actually computed under `uv_on` — per layer, the predictor mask's
    /// per-row set frequency on the golden model (rows of unpredicted
    /// layers, e.g. the classifier, are always computed: activity 1.0).
    /// With `samples == 0` every activity is 1.0 (no calibration
    /// evidence — uniform).
    ///
    /// This is the calibration input of
    /// [`sparsenn_partition::plan_with_row_costs`]: balancing *expected*
    /// row activity instead of static structure evens out per-chip
    /// W-phase time under uv_on's skewed masks.
    pub fn row_activity(&self, samples: usize) -> Vec<Vec<f64>> {
        let n = samples.min(self.split.test.len());
        let mut counts: Vec<Vec<u64>> = self
            .fixed
            .layers()
            .iter()
            .map(|w| vec![0u64; w.rows()])
            .collect();
        for i in 0..n {
            let x = self.fixed.quantize_input(self.split.test.image(i));
            for (layer, gold) in self.fixed.forward(&x, UvMode::On).iter().enumerate() {
                if let Some(mask) = &gold.mask {
                    for (c, &bit) in counts[layer].iter_mut().zip(mask) {
                        *c += u64::from(bit);
                    }
                }
            }
        }
        self.fixed
            .layers()
            .iter()
            .enumerate()
            .map(|(l, w)| {
                let predicted = n > 0 && l < self.fixed.predictors().len();
                (0..w.rows())
                    .map(|r| {
                        if predicted {
                            counts[l][r] as f64 / n as f64
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Plans an **activity-balanced** model-parallel partition: like
    /// [`partition_plan`](Self::partition_plan), but rows are spread by
    /// their expected uv_on activity measured on a calibration batch of
    /// `calibration_samples` test images
    /// ([`row_activity`](Self::row_activity)), so the per-chip expected
    /// W-phase work — not just static weight structure — is balanced.
    /// Execute it with
    /// [`PartitionedMachine::from_plan_pipelined`](crate::engine::PartitionedMachine::from_plan_pipelined).
    ///
    /// # Errors
    ///
    /// As for [`partition_plan`](Self::partition_plan).
    pub fn partition_plan_balanced(
        &self,
        chips: usize,
        calibration_samples: usize,
    ) -> Result<sparsenn_partition::PartitionPlan, SparseNnError> {
        let activity = self.row_activity(calibration_samples);
        Ok(sparsenn_partition::plan_with_row_costs(
            &self.fixed,
            self.machine.config(),
            chips,
            &activity,
        )?)
    }

    /// Plans the model-parallel partition this system's network needs on
    /// `chips` copies of its machine — the
    /// [`PartitionPlan`](sparsenn_partition::PartitionPlan) that
    /// [`partitioned_session`](Self::partitioned_session) executes. Save
    /// it (`PartitionPlan::save`) next to the system checkpoint so a
    /// reload can rebuild the identical multi-chip deployment.
    ///
    /// # Errors
    ///
    /// As for [`partitioned_session`](Self::partitioned_session).
    pub fn partition_plan(
        &self,
        chips: usize,
    ) -> Result<sparsenn_partition::PartitionPlan, SparseNnError> {
        Ok(sparsenn_partition::plan(
            &self.fixed,
            self.machine.config(),
            chips,
        )?)
    }

    /// Simulates test sample `i` through the cycle-accurate accelerator,
    /// returning the full machine-level run (per-PE work distribution
    /// included). For backend-agnostic records use
    /// [`session`](TrainedSystem::session) + [`Session::run_sample`].
    ///
    /// # Errors
    ///
    /// [`SparseNnError::SampleOutOfRange`] if `i` is not in the test set;
    /// machine shape errors for networks the hardware cannot hold.
    pub fn simulate_sample(&self, i: usize, mode: UvMode) -> Result<NetworkRun, SparseNnError> {
        if i >= self.split.test.len() {
            return Err(SparseNnError::SampleOutOfRange {
                index: i,
                len: self.split.test.len(),
            });
        }
        let x = self.fixed.quantize_input(self.split.test.image(i));
        Ok(self.machine.try_run_network(&self.fixed, &x, mode)?)
    }

    /// Simulates the first `samples` test images (clamped to the test-set
    /// size) and aggregates per-layer cycles, events and power — the
    /// measurement behind Fig. 7. Runs on a worker pool sized by
    /// `std::thread::available_parallelism`; the summary is bit-identical
    /// to the serial path's.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing sample, if any.
    pub fn simulate_batch(
        &self,
        samples: usize,
        mode: UvMode,
    ) -> Result<SimulationSummary, SparseNnError> {
        self.session().simulate_batch(samples, mode)
    }

    /// Renders the system as checkpoint text: a header (dataset kind,
    /// split spec, training algorithm, machine configuration) followed by
    /// the bit-lossless `sparsenn_model::serialize` network format.
    ///
    /// Training at paper scale takes minutes of SGD;
    /// [`from_checkpoint_str`](Self::from_checkpoint_str) rebuilds an
    /// *identical* system — the synthetic split is regenerated from its
    /// recorded spec and the weights round-trip bit-exactly, so every
    /// simulation result (including a full [`SimulationSummary`]) is
    /// reproduced exactly.
    pub fn to_checkpoint_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "sparsenn-system v1");
        let _ = writeln!(out, "dataset {}", self.spec.kind);
        let _ = writeln!(out, "algorithm {}", self.algorithm.tag());
        let _ = writeln!(
            out,
            "split {} {} {}",
            self.spec.train, self.spec.test, self.spec.seed
        );
        let c = self.machine.config();
        // clock_ns is stored as its exact f64 bit pattern, like the model
        // weights: a checkpoint must not round the clock model.
        let _ = writeln!(
            out,
            "machine {} {} {} {} {} {} {} {} {} {} {:016x}",
            c.noc.num_pes,
            c.noc.radix,
            c.noc.queue_capacity,
            c.noc.hop_latency,
            c.act_queue_depth,
            c.w_mem_bytes,
            c.u_mem_bytes,
            c.v_mem_bytes,
            c.act_regs_per_pe,
            c.pe_pipeline_depth,
            c.clock_ns.to_bits()
        );
        out.push_str(&sparsenn_model::serialize::to_string(&self.net));
        out
    }

    /// Parses checkpoint text produced by
    /// [`to_checkpoint_string`](Self::to_checkpoint_string) and rebuilds
    /// the full system (split regenerated from its spec, network
    /// re-quantized from the bit-exact weights).
    ///
    /// # Errors
    ///
    /// [`SparseNnError::Checkpoint`] describing the first malformed line.
    pub fn from_checkpoint_str(text: &str) -> Result<Self, SparseNnError> {
        let bad = |message: String| SparseNnError::Checkpoint { message };
        let mut sections = text.splitn(6, '\n');
        let mut line = |what: &str| -> Result<&str, SparseNnError> {
            sections
                .next()
                .ok_or_else(|| bad(format!("missing {what} line")))
        };
        let header = line("header")?;
        if header.trim() != "sparsenn-system v1" {
            // Distinguish "right file, wrong version" (a version we may
            // gain migration support for) from corrupted/foreign magic.
            return Err(match header.trim().strip_prefix("sparsenn-system ") {
                Some(version) => bad(format!(
                    "unsupported checkpoint version `{version}` (this build reads v1)"
                )),
                None => bad(format!(
                    "bad checkpoint magic `{header}` (expected `sparsenn-system v1`)"
                )),
            });
        }
        let kind: DatasetKind = line("dataset")?
            .strip_prefix("dataset ")
            .ok_or_else(|| bad("expected `dataset …`".into()))?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad dataset kind: {e:?}")))?;
        let algorithm = TrainingAlgorithm::from_tag(
            line("algorithm")?
                .strip_prefix("algorithm ")
                .ok_or_else(|| bad("expected `algorithm …`".into()))?
                .trim(),
        )
        .ok_or_else(|| bad("unknown training algorithm".into()))?;
        let split_fields: Vec<u64> = line("split")?
            .strip_prefix("split ")
            .ok_or_else(|| bad("expected `split …`".into()))?
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad(format!("bad split field `{t}`"))))
            .collect::<Result<_, _>>()?;
        let [train, test, seed] = split_fields[..] else {
            return Err(bad("split needs `train test seed`".into()));
        };
        let machine_fields: Vec<&str> = line("machine")?
            .strip_prefix("machine ")
            .ok_or_else(|| bad("expected `machine …`".into()))?
            .split_whitespace()
            .collect();
        let [pes, radix, qcap, hop, aq, w, u, v, regs, pipe, clock] = machine_fields[..] else {
            return Err(bad("machine line needs 11 fields".into()));
        };
        let num = |t: &str| -> Result<usize, SparseNnError> {
            t.parse()
                .map_err(|_| bad(format!("bad machine field `{t}`")))
        };
        let config = MachineConfig {
            noc: sparsenn_noc::NocConfig {
                num_pes: num(pes)?,
                radix: num(radix)?,
                queue_capacity: num(qcap)?,
                hop_latency: num(hop)? as u64,
            },
            act_queue_depth: num(aq)?,
            w_mem_bytes: num(w)?,
            u_mem_bytes: num(u)?,
            v_mem_bytes: num(v)?,
            act_regs_per_pe: num(regs)?,
            pe_pipeline_depth: num(pipe)? as u64,
            clock_ns: f64::from_bits(
                u64::from_str_radix(clock, 16)
                    .map_err(|_| bad(format!("bad clock bits `{clock}`")))?,
            ),
            // The scan mode is a host-side simulation strategy (results and
            // cycles are identical either way), so checkpoints don't record
            // it; loading always yields the default.
            scan: sparsenn_sim::ScanMode::default(),
        };
        let net = sparsenn_model::serialize::from_str(line("model")?)
            .map_err(|e| bad(format!("model section: {e}")))?;
        let spec = DatasetSpec {
            kind,
            train: train as usize,
            test: test as usize,
            seed,
        };
        let split = spec.generate();
        let fixed = FixedNetwork::from_float(&net);
        Ok(TrainedSystem {
            spec,
            algorithm,
            split,
            net,
            fixed,
            machine: Machine::new(config),
        })
    }

    /// Saves the system as a checkpoint file — closes the ROADMAP gap of
    /// the trained-system facade having no persistence.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::Checkpoint`] wrapping the underlying I/O error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SparseNnError> {
        std::fs::write(path.as_ref(), self.to_checkpoint_string()).map_err(|e| {
            SparseNnError::Checkpoint {
                message: format!("writing {}: {e}", path.as_ref().display()),
            }
        })
    }

    /// Loads a system saved by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// [`SparseNnError::Checkpoint`] for I/O errors or malformed text.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SparseNnError> {
        let text =
            std::fs::read_to_string(path.as_ref()).map_err(|e| SparseNnError::Checkpoint {
                message: format!("reading {}: {e}", path.as_ref().display()),
            })?;
        Self::from_checkpoint_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(algorithm: TrainingAlgorithm) -> TrainedSystem {
        SystemBuilder::new(DatasetKind::Basic)
            .dims(&[784, 24, 10])
            .rank(4)
            .algorithm(algorithm)
            .train_samples(80)
            .test_samples(30)
            .epochs(2)
            .build()
    }

    #[test]
    fn builder_produces_consistent_system() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        assert_eq!(sys.kind(), DatasetKind::Basic);
        assert_eq!(sys.network().mlp().dims(), vec![784, 24, 10]);
        assert_eq!(sys.fixed().num_layers(), 2);
        assert_eq!(sys.split().test.len(), 30);
    }

    #[test]
    fn all_algorithms_build_and_evaluate() {
        for alg in [
            TrainingAlgorithm::EndToEnd,
            TrainingAlgorithm::Svd,
            TrainingAlgorithm::NoUv,
        ] {
            let sys = tiny(alg);
            let ter = sys.test_error_rate();
            assert!((0.0..=100.0).contains(&ter), "{alg}: TER {ter}");
            assert_eq!(sys.predicted_sparsity().len(), 1);
        }
    }

    #[test]
    fn batch_simulation_aggregates_layers() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let summary = sys.simulate_batch(3, UvMode::On).unwrap();
        assert_eq!(summary.samples, 3);
        assert_eq!(summary.layers.len(), 2);
        assert!(summary.layers[0].cycles > 0.0);
        assert!(
            summary.layers[0].vu_cycles > 0.0,
            "hidden layer runs the predictor"
        );
        assert_eq!(summary.layers[1].vu_cycles, 0.0, "classifier does not");
        assert!(summary.layers[0].power.total_mw > 0.0);
    }

    #[test]
    fn uv_on_reduces_w_memory_traffic() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let on = sys.simulate_batch(2, UvMode::On).unwrap();
        let off = sys.simulate_batch(2, UvMode::Off).unwrap();
        assert!(on.layers[0].events.w_reads < off.layers[0].events.w_reads);
    }

    #[test]
    fn out_of_range_sample_is_an_error() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        assert_eq!(
            sys.simulate_sample(30, UvMode::On).unwrap_err(),
            SparseNnError::SampleOutOfRange { index: 30, len: 30 }
        );
        assert!(sys.simulate_sample(29, UvMode::On).is_ok());
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_the_identical_summary() {
        let custom_machine = MachineConfig {
            clock_ns: 2.5,
            ..MachineConfig::default()
        };
        let sys = SystemBuilder::new(DatasetKind::Rot)
            .dims(&[784, 24, 10])
            .rank(4)
            .algorithm(TrainingAlgorithm::Svd)
            .train_samples(60)
            .test_samples(20)
            .epochs(1)
            .machine(custom_machine)
            .build();
        let text = sys.to_checkpoint_string();
        let back = TrainedSystem::from_checkpoint_str(&text).expect("parse");
        assert_eq!(back.kind(), DatasetKind::Rot);
        assert_eq!(back.algorithm(), TrainingAlgorithm::Svd);
        assert_eq!(back.network(), sys.network(), "weights are bit-exact");
        assert_eq!(back.machine().config(), sys.machine().config());
        assert_eq!(back.test_error_rate(), sys.test_error_rate());
        // The acceptance bar: an identical SimulationSummary after reload
        // (same regenerated split, same quantized net, same machine).
        let a = sys.simulate_batch(8, UvMode::On).unwrap();
        let b = back.simulate_batch(8, UvMode::On).unwrap();
        assert_eq!(a, b);
        // And the text form is stable across a save/load cycle.
        assert_eq!(text, back.to_checkpoint_string());
    }

    #[test]
    fn checkpoint_save_load_through_files() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let path = std::env::temp_dir().join(format!(
            "sparsenn-checkpoint-test-{}.txt",
            std::process::id()
        ));
        sys.save(&path).expect("save");
        let back = TrainedSystem::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.network(), sys.network());
        assert_eq!(
            back.simulate_batch(4, UvMode::On).unwrap(),
            sys.simulate_batch(4, UvMode::On).unwrap()
        );
        // Missing file surfaces as a Checkpoint error, not a panic.
        assert!(matches!(
            TrainedSystem::load(&path),
            Err(SparseNnError::Checkpoint { .. })
        ));
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        let sys = tiny(TrainingAlgorithm::NoUv);
        let good = sys.to_checkpoint_string();
        for broken in [
            String::from("not a checkpoint"),
            good.replace("sparsenn-system v1", "sparsenn-system v9"),
            good.replace("dataset basic", "dataset lunar"),
            good.replace("algorithm no-uv", "algorithm magic"),
            good.replace("split ", "split x "),
            good.replace("machine ", "machine x "),
            good.lines().take(5).collect::<Vec<_>>().join("\n"), // no model
        ] {
            assert!(
                matches!(
                    TrainedSystem::from_checkpoint_str(&broken),
                    Err(SparseNnError::Checkpoint { .. })
                ),
                "should reject: {}",
                broken.lines().next().unwrap_or("")
            );
        }
        // Round trip still works for the untouched text.
        assert!(TrainedSystem::from_checkpoint_str(&good).is_ok());
    }

    #[test]
    fn row_activity_reflects_the_predictor_masks() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let activity = sys.row_activity(8);
        assert_eq!(activity.len(), 2);
        assert_eq!(activity[0].len(), 24);
        assert!(activity[0].iter().all(|&a| (0.0..=1.0).contains(&a)));
        // A trained predictor gates *some* rows off on some samples.
        assert!(activity[0].iter().any(|&a| a < 1.0));
        // The classifier has no predictor: always computed.
        assert!(activity[1].iter().all(|&a| a == 1.0));
        // No calibration evidence → uniform.
        assert!(sys.row_activity(0).iter().flatten().all(|&a| a == 1.0));
    }

    #[test]
    fn balanced_plan_validates_and_serves_identically() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let chip = *sys.machine().config();
        let plan = sys.partition_plan_balanced(2, 8).expect("plannable");
        plan.validate(&chip).expect("valid");
        assert!(plan.matches(sys.fixed()));
        // Placement never changes arithmetic: the balanced plan's
        // outputs match the uniform plan's bit for bit.
        let balanced = crate::engine::PartitionedMachine::from_plan(
            sys.fixed(),
            chip,
            plan,
            Default::default(),
        )
        .unwrap();
        let x = sys.fixed().quantize_input(sys.split().test.image(0));
        let a =
            crate::engine::InferenceBackend::run(&balanced, sys.fixed(), &x, UvMode::On).unwrap();
        let b = sys
            .partitioned_session(2)
            .unwrap()
            .run_sample(0, UvMode::On)
            .unwrap();
        assert_eq!(a.output(), b.output());
    }

    #[test]
    fn pipelined_session_matches_bits_and_never_adds_latency() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let serialized = sys.partitioned_session(2).unwrap();
        let pipelined = sys.partitioned_session_pipelined(2).unwrap();
        for i in 0..3 {
            let a = serialized.run_sample(i, UvMode::On).unwrap();
            let b = pipelined.run_sample(i, UvMode::On).unwrap();
            assert_eq!(a.output(), b.output(), "sample {i}");
            assert_eq!(a.total_events(), b.total_events(), "sample {i}");
            assert!(b.time_us() <= a.time_us() + 1e-9, "sample {i}");
        }
    }

    #[test]
    fn algorithm_tags_roundtrip() {
        for alg in [
            TrainingAlgorithm::EndToEnd,
            TrainingAlgorithm::Svd,
            TrainingAlgorithm::NoUv,
        ] {
            assert_eq!(TrainingAlgorithm::from_tag(alg.tag()), Some(alg));
        }
        assert_eq!(TrainingAlgorithm::from_tag("nonsense"), None);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let sys = tiny(TrainingAlgorithm::EndToEnd);
        let summary = sys.simulate_batch(0, UvMode::On).unwrap();
        assert_eq!(summary.samples, 0);
        assert_eq!(summary.fixed_accuracy, 0.0);
        assert_eq!(summary.layers.len(), 2);
        assert_eq!(summary.layers[0].cycles, 0.0);
    }
}
