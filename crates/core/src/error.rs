//! The crate-wide error type for the public inference API.
//!
//! Every fallible entry point of `sparsenn-core` — [`Session`] runs,
//! [`TrainedSystem::simulate_sample`] and batch simulation — returns
//! `Result<_, SparseNnError>` instead of panicking, so serving code can
//! route bad requests without tearing the process down.
//!
//! [`Session`]: crate::engine::Session
//! [`TrainedSystem::simulate_sample`]: crate::TrainedSystem::simulate_sample

use sparsenn_sim::MachineError;

/// Errors surfaced by the public SparseNN inference API.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseNnError {
    /// A test-set sample index was out of range.
    SampleOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of samples available.
        len: usize,
    },
    /// An input activation vector's width does not match the network.
    InputWidthMismatch {
        /// Width the network's first layer expects.
        expected: usize,
        /// Width supplied.
        got: usize,
    },
    /// A layer's shape exceeds a limit of the executing backend.
    LayerDoesNotFit {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable description of the violated limit.
        reason: String,
    },
    /// A layer's weights exceed a chip's W memory. The typed counterpart
    /// of the capacity case of [`LayerDoesNotFit`](Self::LayerDoesNotFit):
    /// it carries the exact per-PE word counts, so callers can tell *how
    /// far* over budget a layer is — and the multi-chip partition planner
    /// reports its per-chip capacity diagnostics through the same type.
    WMemoryOverflow {
        /// Index of the offending layer.
        layer: usize,
        /// Weight words the layer needs per PE.
        words: usize,
        /// Words the W memory holds per PE.
        capacity: usize,
    },
    /// The network has no layers.
    EmptyNetwork,
    /// A batched run ([`InferenceBackend::run_batch`]) was asked to
    /// execute zero samples.
    ///
    /// [`InferenceBackend::run_batch`]: crate::engine::InferenceBackend::run_batch
    EmptyBatch,
    /// A worker thread of a parallel batch run terminated abnormally.
    WorkerPanicked,
    /// A backend returned a record with a different layer count than the
    /// network being served — the per-layer counters cannot be aggregated.
    LayerCountMismatch {
        /// Layers the serving session aggregates over.
        expected: usize,
        /// Layers the backend's record carried.
        got: usize,
    },
    /// A [`Fleet`](crate::engine::Fleet) was constructed with no shards.
    EmptyFleet,
    /// Saving or loading a [`TrainedSystem`](crate::TrainedSystem)
    /// checkpoint failed (I/O error or malformed checkpoint text).
    Checkpoint {
        /// Human-readable description of the failure.
        message: String,
    },
    /// A request was shed by the fleet's admission gate
    /// ([`Fleet::with_admission`](crate::engine::Fleet::with_admission))
    /// because its priority class had no queue budget left. The caller
    /// should fail fast (or retry elsewhere) instead of queueing into a
    /// missed deadline.
    Overloaded {
        /// Priority class of the shed request.
        priority: crate::engine::Priority,
    },
    /// Model-parallel partitioning failed for a reason other than
    /// capacity (capacity overflows surface as
    /// [`WMemoryOverflow`](Self::WMemoryOverflow)): no chips, an invalid
    /// or mismatched [`PartitionPlan`](sparsenn_partition::PartitionPlan),
    /// or a malformed plan file.
    Partition {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl std::fmt::Display for SparseNnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseNnError::SampleOutOfRange { index, len } => {
                write!(
                    f,
                    "sample index {index} out of range for a {len}-sample test set"
                )
            }
            SparseNnError::InputWidthMismatch { expected, got } => {
                write!(
                    f,
                    "input width mismatch: network expects {expected} activations, got {got}"
                )
            }
            SparseNnError::LayerDoesNotFit { layer, reason } => {
                write!(f, "layer {layer} does not fit the backend: {reason}")
            }
            SparseNnError::WMemoryOverflow {
                layer,
                words,
                capacity,
            } => {
                write!(
                    f,
                    "layer {layer} overflows W memory: needs {words} weight words per PE, \
                     memory holds {capacity} (partition the layer across chips to serve it)"
                )
            }
            SparseNnError::EmptyNetwork => f.write_str("network has no layers"),
            SparseNnError::EmptyBatch => f.write_str("batch has no samples"),
            SparseNnError::WorkerPanicked => {
                f.write_str("a batch-simulation worker thread panicked")
            }
            SparseNnError::LayerCountMismatch { expected, got } => {
                write!(
                    f,
                    "backend returned {got} layer records for a {expected}-layer network"
                )
            }
            SparseNnError::EmptyFleet => f.write_str("a fleet needs at least one shard"),
            SparseNnError::Checkpoint { message } => {
                write!(f, "system checkpoint failed: {message}")
            }
            SparseNnError::Overloaded { priority } => {
                write!(
                    f,
                    "request shed by admission control: the fleet is overloaded \
                     and the {priority}-priority queue budget is exhausted"
                )
            }
            SparseNnError::Partition { message } => {
                write!(f, "model-parallel partitioning failed: {message}")
            }
        }
    }
}

impl std::error::Error for SparseNnError {}

impl From<sparsenn_partition::PartitionError> for SparseNnError {
    fn from(e: sparsenn_partition::PartitionError) -> Self {
        use sparsenn_partition::PartitionError as Pe;
        match e {
            // The planner's capacity diagnostics carry the same per-PE
            // word sizes as the machine's typed overflow — surface them
            // through the same variant.
            Pe::ChipCapacity {
                layer,
                words,
                capacity,
                ..
            } => SparseNnError::WMemoryOverflow {
                layer,
                words,
                capacity,
            },
            Pe::InputTooWide { layer, cols, max } => SparseNnError::LayerDoesNotFit {
                layer,
                reason: format!(
                    "{cols} input activations exceed one chip's {max}-entry register files"
                ),
            },
            Pe::OutputTooWide {
                layer,
                rows,
                max,
                chips,
            } => SparseNnError::LayerDoesNotFit {
                layer,
                reason: format!(
                    "{rows} output rows exceed the {max}-entry register files of all {chips} \
                     chip(s) combined"
                ),
            },
            Pe::EmptyNetwork => SparseNnError::EmptyNetwork,
            other => SparseNnError::Partition {
                message: other.to_string(),
            },
        }
    }
}

impl From<MachineError> for SparseNnError {
    fn from(e: MachineError) -> Self {
        match e {
            MachineError::LayerDoesNotFit { layer, reason } => {
                SparseNnError::LayerDoesNotFit { layer, reason }
            }
            MachineError::WMemoryOverflow {
                layer,
                words,
                capacity,
            } => SparseNnError::WMemoryOverflow {
                layer,
                words,
                capacity,
            },
            MachineError::InputWidthMismatch { expected, got } => {
                SparseNnError::InputWidthMismatch { expected, got }
            }
            MachineError::EmptyNetwork => SparseNnError::EmptyNetwork,
            MachineError::EmptyBatch => SparseNnError::EmptyBatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseNnError::SampleOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains("9") && e.to_string().contains("4"));
        let e = SparseNnError::InputWidthMismatch {
            expected: 784,
            got: 10,
        };
        assert!(e.to_string().contains("784"));
        let e = SparseNnError::LayerCountMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("3") && e.to_string().contains("2"));
        assert!(SparseNnError::EmptyFleet.to_string().contains("shard"));
        let e = SparseNnError::Checkpoint {
            message: "bad header".into(),
        };
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn machine_errors_convert() {
        let e: SparseNnError = MachineError::InputWidthMismatch {
            expected: 3,
            got: 5,
        }
        .into();
        assert_eq!(
            e,
            SparseNnError::InputWidthMismatch {
                expected: 3,
                got: 5
            }
        );
        let e: SparseNnError = MachineError::EmptyNetwork.into();
        assert_eq!(e, SparseNnError::EmptyNetwork);
        let e: SparseNnError = MachineError::WMemoryOverflow {
            layer: 1,
            words: 6272,
            capacity: 4096,
        }
        .into();
        assert_eq!(
            e,
            SparseNnError::WMemoryOverflow {
                layer: 1,
                words: 6272,
                capacity: 4096
            }
        );
        let msg = e.to_string();
        assert!(msg.contains("6272") && msg.contains("4096"), "{msg}");
    }
}
