//! Experiment sizing profiles.
//!
//! The paper's experiments train 1000-neuron networks on 12k-sample
//! datasets — minutes of CPU per configuration. The bench binaries default
//! to a `fast` profile that keeps the same structure at reduced scale so
//! the entire harness reruns in a few minutes; `SPARSENN_PROFILE=full`
//! switches to paper-scale runs. `EXPERIMENTS.md` records which profile
//! produced the published numbers.

use std::fmt;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Reduced scale: 256-neuron hidden layers, 1.2k train samples.
    Fast,
    /// Paper scale: 1000-neuron hidden layers, 10k train samples.
    Full,
}

impl Profile {
    /// Reads `SPARSENN_PROFILE` (`fast` default, `full` for paper scale).
    /// Matching is case-insensitive (`full`, `FULL` and `Full` all work).
    pub fn from_env() -> Self {
        Self::parse(std::env::var("SPARSENN_PROFILE").ok().as_deref())
    }

    /// Parses a `SPARSENN_PROFILE` value (`None` = unset → `Fast`).
    /// Case-insensitive; anything other than `full` falls back to `Fast`.
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("full") => Profile::Full,
            _ => Profile::Fast,
        }
    }

    /// Hidden-layer width (the paper uses 1000).
    pub fn hidden(&self) -> usize {
        match self {
            Profile::Fast => 256,
            Profile::Full => 1000,
        }
    }

    /// Training-set size.
    pub fn train_samples(&self) -> usize {
        match self {
            Profile::Fast => 1200,
            Profile::Full => 10_000,
        }
    }

    /// Test-set size.
    pub fn test_samples(&self) -> usize {
        match self {
            Profile::Fast => 400,
            Profile::Full => 2_000,
        }
    }

    /// Training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Profile::Fast => 8,
            Profile::Full => 20,
        }
    }

    /// Samples pushed through the cycle-level simulator per measurement.
    pub fn sim_samples(&self) -> usize {
        match self {
            Profile::Fast => 8,
            Profile::Full => 32,
        }
    }

    /// The rank sweep of Fig. 6 scaled to the hidden width (the paper
    /// sweeps {100, 75, 50, 25, 10, 5} against 1000 neurons).
    pub fn rank_sweep(&self) -> Vec<usize> {
        match self {
            Profile::Fast => vec![48, 32, 24, 16, 10, 5],
            Profile::Full => vec![100, 75, 50, 25, 10, 5],
        }
    }

    /// The fixed rank of Table I / Fig. 7 (paper: 15).
    pub fn table_rank(&self) -> usize {
        15
    }

    /// The 3-layer network dims (one hidden layer).
    pub fn dims_3layer(&self) -> Vec<usize> {
        vec![784, self.hidden(), 10]
    }

    /// The 5-layer network dims (three hidden layers).
    pub fn dims_5layer(&self) -> Vec<usize> {
        vec![784, self.hidden(), self.hidden(), self.hidden(), 10]
    }

    /// Hidden width for the *hardware* experiments (Fig. 7 / Table IV).
    ///
    /// The cycle behaviour of the W phase depends on the number of rows
    /// per PE (the paper's 1000-neuron layers give ≈ 16 rows/PE; the
    /// per-PE spread of predicted-active rows is what limits the layer-1
    /// cycle reduction to the paper's 10–31 %), so even the fast profile
    /// keeps paper-scale layer widths here and economizes on training
    /// instead.
    pub fn hw_hidden(&self) -> usize {
        match self {
            Profile::Fast => 1024,
            Profile::Full => 1000,
        }
    }

    /// The 5-layer dims used by the hardware experiments.
    pub fn hw_dims_5layer(&self) -> Vec<usize> {
        vec![
            784,
            self.hw_hidden(),
            self.hw_hidden(),
            self.hw_hidden(),
            10,
        ]
    }

    /// Training-set size for the hardware experiments (the simulated
    /// cycle/power numbers need realistic sparsity patterns, not polished
    /// TER, so training is lighter than for Fig. 6 / Table I).
    pub fn hw_train_samples(&self) -> usize {
        match self {
            Profile::Fast => 1000,
            Profile::Full => 8000,
        }
    }

    /// Training epochs for the hardware experiments.
    pub fn hw_epochs(&self) -> usize {
        match self {
            Profile::Fast => 4,
            Profile::Full => 12,
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Profile::Fast => "fast",
            Profile::Full => "full",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_is_paper_scale() {
        let p = Profile::Full;
        assert_eq!(p.hidden(), 1000);
        assert_eq!(p.dims_5layer(), vec![784, 1000, 1000, 1000, 10]);
        assert_eq!(p.rank_sweep(), vec![100, 75, 50, 25, 10, 5]);
        assert_eq!(p.table_rank(), 15);
    }

    #[test]
    fn fast_profile_is_smaller_everywhere() {
        let f = Profile::Fast;
        let p = Profile::Full;
        assert!(f.hidden() < p.hidden());
        assert!(f.train_samples() < p.train_samples());
        assert!(f.epochs() <= p.epochs());
    }

    #[test]
    fn display_names() {
        assert_eq!(Profile::Fast.to_string(), "fast");
        assert_eq!(Profile::Full.to_string(), "full");
    }

    #[test]
    fn parse_is_case_insensitive() {
        // Tests the pure parser, not from_env: mutating the process
        // environment races other threads' getenv calls under the parallel
        // test runner.
        for (value, expected) in [
            ("full", Profile::Full),
            ("FULL", Profile::Full),
            ("Full", Profile::Full),
            ("fUlL", Profile::Full),
            ("fast", Profile::Fast),
            ("Fast", Profile::Fast),
            ("nonsense", Profile::Fast),
        ] {
            assert_eq!(
                Profile::parse(Some(value)),
                expected,
                "SPARSENN_PROFILE={value}"
            );
        }
        assert_eq!(
            Profile::parse(None),
            Profile::Fast,
            "unset defaults to fast"
        );
    }
}
