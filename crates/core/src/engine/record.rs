//! The backend-independent result of one inference run.

use sparsenn_numeric::Q6_10;
use sparsenn_sim::{LayerRun, MachineEvents, NetworkRun};

/// Per-layer result of one inference run on any backend.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerRecord {
    /// Output activations (bit-exact across backends by construction).
    pub output: Vec<Q6_10>,
    /// Predictor mask (`true` = computed), when a predictor ran.
    pub mask: Option<Vec<bool>>,
    /// Total modelled cycles (0 for timing-free backends).
    pub cycles: u64,
    /// Cycles attributed to the V/U predictor phases.
    pub vu_cycles: u64,
    /// Cycles attributed to the W feedforward phase.
    pub w_cycles: u64,
    /// Modelled wall-clock latency of the layer on the producing backend,
    /// microseconds — the backend's own clock model applied to
    /// [`cycles`](Self::cycles) (`clock_ns × cycles` for the machine,
    /// [`SimdPlatform::time_us`](sparsenn_sim::simd::SimdPlatform::time_us)
    /// for the analytic platforms, 0 for timing-free backends).
    pub time_us: f64,
    /// Activity counters (exact for the cycle-accurate backend, functional
    /// estimates for analytic backends).
    pub events: MachineEvents,
}

impl LayerRecord {
    /// Converts a cycle-level layer run, stamping latency with the given
    /// clock model (microseconds per cycle count).
    fn from_layer_run(l: LayerRun, clock: impl Fn(u64) -> f64) -> Self {
        Self {
            time_us: clock(l.cycles),
            output: l.output,
            mask: l.mask,
            cycles: l.cycles,
            vu_cycles: l.vu_cycles,
            w_cycles: l.w_cycles,
            events: l.events,
        }
    }
}

/// The common result every [`InferenceBackend`](super::InferenceBackend)
/// returns: outputs, cycles and events, per layer.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Name of the backend that produced this record.
    pub backend: String,
    /// Per-layer results, input side first. Non-empty by construction
    /// (backends reject empty networks with
    /// [`SparseNnError::EmptyNetwork`](crate::SparseNnError::EmptyNetwork)).
    pub layers: Vec<LayerRecord>,
}

impl RunRecord {
    /// Converts a cycle-level machine run, pricing latency with the
    /// machine's clock model ([`MachineConfig::time_us`]).
    ///
    /// [`MachineConfig::time_us`]: sparsenn_sim::MachineConfig::time_us
    pub fn from_network_run(
        backend: impl Into<String>,
        run: NetworkRun,
        cfg: &sparsenn_sim::MachineConfig,
    ) -> Self {
        Self {
            backend: backend.into(),
            layers: run
                .layers
                .into_iter()
                .map(|l| LayerRecord::from_layer_run(l, |c| cfg.time_us(c)))
                .collect(),
        }
    }

    /// Output activations of the final layer (empty only for the
    /// unreachable zero-layer record).
    pub fn output(&self) -> &[Q6_10] {
        self.layers.last().map_or(&[], |l| &l.output)
    }

    /// Argmax classification of the final layer (0 on an empty record).
    pub fn classify(&self) -> usize {
        sparsenn_numeric::argmax(self.output())
    }

    /// Sum of per-layer cycle counts.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// End-to-end modelled latency of the run, microseconds: the sum of
    /// per-layer [`LayerRecord::time_us`] (layers execute back to back).
    /// 0 for timing-free backends such as the golden model.
    pub fn time_us(&self) -> f64 {
        self.layers.iter().map(|l| l.time_us).sum()
    }

    /// Merged activity counters over all layers.
    pub fn total_events(&self) -> MachineEvents {
        let mut ev = MachineEvents::default();
        for l in &self.layers {
            ev.merge(&l.events);
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycles: &[u64]) -> RunRecord {
        RunRecord {
            backend: "test".into(),
            layers: cycles
                .iter()
                .map(|&c| LayerRecord {
                    output: vec![Q6_10::from_f32(0.5), Q6_10::from_f32(1.5)],
                    mask: None,
                    cycles: c,
                    vu_cycles: 0,
                    w_cycles: c,
                    time_us: c as f64 * 0.002,
                    events: MachineEvents {
                        cycles: c,
                        ..MachineEvents::default()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_over_layers() {
        let r = record(&[10, 32]);
        assert_eq!(r.total_cycles(), 42);
        assert_eq!(r.total_events().cycles, 42);
        assert_eq!(r.classify(), 1);
        assert_eq!(r.output().len(), 2);
        assert!((r.time_us() - 42.0 * 0.002).abs() < 1e-12);
    }

    #[test]
    fn empty_record_is_harmless() {
        let r = RunRecord {
            backend: "test".into(),
            layers: Vec::new(),
        };
        assert_eq!(r.output(), &[]);
        assert_eq!(r.classify(), 0);
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.time_us(), 0.0);
    }
}
