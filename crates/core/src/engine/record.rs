//! The backend-independent result of one inference run.

use sparsenn_numeric::Q6_10;
use sparsenn_sim::{LayerRun, MachineEvents, NetworkRun};

/// Per-layer result of one inference run on any backend.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerRecord {
    /// Output activations (bit-exact across backends by construction).
    pub output: Vec<Q6_10>,
    /// Predictor mask (`true` = computed), when a predictor ran.
    pub mask: Option<Vec<bool>>,
    /// Total modelled cycles (0 for timing-free backends).
    pub cycles: u64,
    /// Cycles attributed to the V/U predictor phases.
    pub vu_cycles: u64,
    /// Cycles attributed to the W feedforward phase.
    pub w_cycles: u64,
    /// Modelled wall-clock latency of the layer on the producing backend,
    /// microseconds — the backend's own clock model applied to
    /// [`cycles`](Self::cycles) (`clock_ns × cycles` for the machine,
    /// [`SimdPlatform::time_us`](sparsenn_sim::simd::SimdPlatform::time_us)
    /// for the analytic platforms, 0 for timing-free backends).
    pub time_us: f64,
    /// Activity counters (exact for the cycle-accurate backend, functional
    /// estimates for analytic backends).
    pub events: MachineEvents,
}

impl LayerRecord {
    /// Converts a cycle-level layer run, stamping latency with the given
    /// clock model (microseconds per cycle count).
    fn from_layer_run(l: LayerRun, clock: impl Fn(u64) -> f64) -> Self {
        Self {
            time_us: clock(l.cycles),
            output: l.output,
            mask: l.mask,
            cycles: l.cycles,
            vu_cycles: l.vu_cycles,
            w_cycles: l.w_cycles,
            events: l.events,
        }
    }
}

/// The common result every [`InferenceBackend`](super::InferenceBackend)
/// returns: outputs, cycles and events, per layer.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Name of the backend that produced this record.
    pub backend: String,
    /// Per-layer results, input side first. Non-empty by construction
    /// (backends reject empty networks with
    /// [`SparseNnError::EmptyNetwork`](crate::SparseNnError::EmptyNetwork)).
    pub layers: Vec<LayerRecord>,
}

impl RunRecord {
    /// Converts a cycle-level machine run, pricing latency with the
    /// machine's clock model ([`MachineConfig::time_us`]).
    ///
    /// [`MachineConfig::time_us`]: sparsenn_sim::MachineConfig::time_us
    pub fn from_network_run(
        backend: impl Into<String>,
        run: NetworkRun,
        cfg: &sparsenn_sim::MachineConfig,
    ) -> Self {
        Self {
            backend: backend.into(),
            layers: run
                .layers
                .into_iter()
                .map(|l| LayerRecord::from_layer_run(l, |c| cfg.time_us(c)))
                .collect(),
        }
    }

    /// Output activations of the final layer (empty only for the
    /// unreachable zero-layer record).
    pub fn output(&self) -> &[Q6_10] {
        self.layers.last().map_or(&[], |l| &l.output)
    }

    /// Argmax classification of the final layer (0 on an empty record).
    pub fn classify(&self) -> usize {
        sparsenn_numeric::argmax(self.output())
    }

    /// Sum of per-layer cycle counts.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// End-to-end modelled latency of the run, microseconds: the sum of
    /// per-layer [`LayerRecord::time_us`] (layers execute back to back).
    /// 0 for timing-free backends such as the golden model.
    pub fn time_us(&self) -> f64 {
        self.layers.iter().map(|l| l.time_us).sum()
    }

    /// Merged activity counters over all layers.
    pub fn total_events(&self) -> MachineEvents {
        let mut ev = MachineEvents::default();
        for l in &self.layers {
            ev.merge(&l.events);
        }
        ev
    }
}

/// The result of one batched inference dispatch
/// ([`InferenceBackend::run_batch`](super::InferenceBackend::run_batch)):
/// the exact per-sample records plus the batch-amortized clock/energy
/// book.
///
/// The per-sample [`records`](Self::records) are bit-identical to what
/// [`run`](super::InferenceBackend::run) would return for each input —
/// batching changes *timing and energy accounting*, never results. The
/// amortized fields carry what the dispatch costs when the substrate
/// keeps each W row resident across the batch; for substrates without a
/// batched core (the default loop-of-`run`), they simply equal the
/// serial sums.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRunRecord {
    /// Exact per-sample results, in input order.
    pub records: Vec<RunRecord>,
    /// Modelled wall-clock of the whole batch on the producing backend,
    /// microseconds (≤ the serial sum of the per-sample times).
    pub batch_time_us: f64,
    /// Batch-amortized activity counters (per-sample counters summed,
    /// with W-memory reads replaced by the amortized count).
    pub batch_events: MachineEvents,
    /// W-memory reads the batch would cost run serially.
    pub w_reads_serial: u64,
    /// W-memory reads the batch actually costs (≤ serial).
    pub w_reads_amortized: u64,
}

impl BatchRunRecord {
    /// Folds per-sample records produced by a serial loop — the default
    /// [`run_batch`](super::InferenceBackend::run_batch) path for
    /// substrates without a batched core. Amortized fields equal the
    /// serial sums.
    pub fn from_serial(records: Vec<RunRecord>) -> Self {
        let batch_time_us = records.iter().map(RunRecord::time_us).sum();
        let mut batch_events = MachineEvents::default();
        for r in &records {
            batch_events.merge(&r.total_events());
        }
        let w_reads = batch_events.w_reads;
        Self {
            records,
            batch_time_us,
            batch_events,
            w_reads_serial: w_reads,
            w_reads_amortized: w_reads,
        }
    }

    /// Folds another dispatch's results into this record — how a
    /// [`Fleet`](super::Fleet) aggregates the chunks of one batched call:
    /// records concatenate in order, times and read counts sum, events
    /// merge.
    pub fn merge(&mut self, other: BatchRunRecord) {
        self.records.extend(other.records);
        self.batch_time_us += other.batch_time_us;
        self.batch_events.merge(&other.batch_events);
        self.w_reads_serial += other.w_reads_serial;
        self.w_reads_amortized += other.w_reads_amortized;
    }

    /// Samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.records.len()
    }

    /// What the batch would cost run serially, microseconds.
    pub fn serial_time_us(&self) -> f64 {
        self.records.iter().map(RunRecord::time_us).sum()
    }

    /// Amortized per-sample latency, microseconds (0 for an empty batch).
    pub fn mean_time_us(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.batch_time_us / self.records.len() as f64
    }

    /// W-read amortization factor: serial reads over batch reads (≥ 1).
    pub fn w_read_amortization(&self) -> f64 {
        if self.w_reads_amortized == 0 {
            return 1.0;
        }
        self.w_reads_serial as f64 / self.w_reads_amortized as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycles: &[u64]) -> RunRecord {
        RunRecord {
            backend: "test".into(),
            layers: cycles
                .iter()
                .map(|&c| LayerRecord {
                    output: vec![Q6_10::from_f32(0.5), Q6_10::from_f32(1.5)],
                    mask: None,
                    cycles: c,
                    vu_cycles: 0,
                    w_cycles: c,
                    time_us: c as f64 * 0.002,
                    events: MachineEvents {
                        cycles: c,
                        ..MachineEvents::default()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_over_layers() {
        let r = record(&[10, 32]);
        assert_eq!(r.total_cycles(), 42);
        assert_eq!(r.total_events().cycles, 42);
        assert_eq!(r.classify(), 1);
        assert_eq!(r.output().len(), 2);
        assert!((r.time_us() - 42.0 * 0.002).abs() < 1e-12);
    }

    #[test]
    fn serial_fold_amortizes_nothing() {
        let b = BatchRunRecord::from_serial(vec![record(&[10, 32]), record(&[10, 32])]);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.w_reads_serial, b.w_reads_amortized);
        assert!((b.w_read_amortization() - 1.0).abs() < 1e-12);
        assert!((b.batch_time_us - b.serial_time_us()).abs() < 1e-12);
        assert!((b.mean_time_us() - b.batch_time_us / 2.0).abs() < 1e-12);
        assert_eq!(b.batch_events.cycles, 84);
    }

    #[test]
    fn empty_record_is_harmless() {
        let r = RunRecord {
            backend: "test".into(),
            layers: Vec::new(),
        };
        assert_eq!(r.output(), &[]);
        assert_eq!(r.classify(), 0);
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.time_us(), 0.0);
    }
}
