//! The native CPU kernel as an execution substrate.

use crate::engine::backends::{validate_shapes, InferenceBackend};
use crate::engine::record::{BatchRunRecord, LayerRecord, RunRecord};
use crate::error::SparseNnError;
use sparsenn_kernel::{KernelRun, Scratch, SparseKernel, Strategy, DEFAULT_BLOCK};
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_numeric::Q6_10;
use sparsenn_sim::MachineEvents;
use std::sync::Mutex;

/// Weights repacked for one network, kept warm across calls.
#[derive(Debug)]
struct CachedKernel {
    /// The network the pack was built from. Every call verifies full
    /// equality against it (the [`PartitionedMachine`] idiom: never
    /// silently compute with stale weights) — an address fast path would
    /// be unsound when a dropped network's slot is reused.
    ///
    /// [`PartitionedMachine`]: crate::engine::PartitionedMachine
    net: FixedNetwork,
    kernel: SparseKernel,
    scratch: Scratch,
}

/// The native CPU backend: the two-stage prescan + block-skip kernel of
/// [`sparsenn_kernel`], wrapped as an [`InferenceBackend`].
///
/// Unlike every other substrate this one is engineered for **measured**
/// speed — its wall-clock is real, not modelled. Records are therefore
/// timing-free (cycles and `time_us` are 0, like the golden backend's) so
/// batch-vs-serial record bit-identity holds: measure latency around the
/// call with `std::time::Instant`, as the bench plane's `kernel`
/// experiment and [`ShardSpec::from_measured`] do.
///
/// Events carry block-level functional counts — the 16-bit words the
/// compute stage actually streams (`w_reads` = active rows × live-block
/// words), which is more than the golden model's ideal zero-skipping
/// counts and less than dense.
///
/// Weights are repacked once per network and cached; every call verifies
/// the cached pack against the served network by full equality (cheap
/// next to a forward pass, and never silently stale), so steady-state
/// serving never repacks.
///
/// [`ShardSpec::from_measured`]: sparsenn_serve::ShardSpec::from_measured
#[derive(Debug)]
pub struct KernelBackend {
    name: String,
    block: usize,
    state: Mutex<Option<CachedKernel>>,
}

impl Default for KernelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelBackend {
    /// A kernel backend with the default column-block size
    /// ([`DEFAULT_BLOCK`]).
    pub fn new() -> Self {
        Self::with_block(DEFAULT_BLOCK)
    }

    /// A kernel backend with an explicit column-block size.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn with_block(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self {
            name: format!("kernel-cpu-b{block}"),
            block,
            state: Mutex::new(None),
        }
    }

    /// The column-block size panels are packed with.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Runs `f` with the cached (or freshly packed) kernel for `net`.
    fn with_kernel<T>(
        &self,
        net: &FixedNetwork,
        f: impl FnOnce(&SparseKernel, &mut Scratch) -> T,
    ) -> T {
        let mut state = self.state.lock().expect("kernel cache poisoned");
        let fresh = match state.as_ref() {
            Some(c) => c.net != *net,
            None => true,
        };
        if fresh {
            let kernel = SparseKernel::pack(net, self.block);
            let scratch = kernel.scratch();
            *state = Some(CachedKernel {
                net: net.clone(),
                kernel,
                scratch,
            });
        }
        let c = state.as_mut().expect("cache just filled");
        f(&c.kernel, &mut c.scratch)
    }

    /// Converts a kernel run into the backend-independent record shape.
    fn to_record(&self, run: KernelRun) -> RunRecord {
        RunRecord {
            backend: self.name.clone(),
            layers: run
                .layers
                .into_iter()
                .map(|l| {
                    let st = l.stats;
                    let ev = MachineEvents {
                        w_reads: st.w_words,
                        v_reads: st.v_words,
                        u_reads: st.u_words,
                        macs: st.macs,
                        src_reads: st.nnz_in,
                        dst_writes: st.active_rows,
                        pred_writes: l.mask.as_ref().map_or(0, |m| m.len() as u64),
                        ..MachineEvents::default()
                    };
                    LayerRecord {
                        output: l.output,
                        mask: l.mask,
                        cycles: 0,
                        vu_cycles: 0,
                        w_cycles: 0,
                        time_us: 0.0,
                        events: ev,
                    }
                })
                .collect(),
        }
    }
}

impl InferenceBackend for KernelBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        validate_shapes(net, input)?;
        let run = self.with_kernel(net, |k, s| k.run(input, mode, Strategy::Prescan, s));
        Ok(self.to_record(run))
    }

    /// The native batched core: each layer's W panels are streamed once
    /// per batch over the union of the samples' live blocks
    /// ([`SparseKernel::run_batch`]). Per-sample records stay bit-identical
    /// to serial [`run`](InferenceBackend::run)s; the W book amortizes.
    fn run_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> Result<BatchRunRecord, SparseNnError> {
        if inputs.is_empty() {
            return Err(SparseNnError::EmptyBatch);
        }
        for input in inputs {
            validate_shapes(net, input)?;
        }
        let batch = self.with_kernel(net, |k, s| k.run_batch(inputs, mode, Strategy::Prescan, s));
        let (w_serial, w_batch) = (batch.w_words_serial, batch.w_words_batch);
        let records: Vec<RunRecord> = batch.runs.into_iter().map(|r| self.to_record(r)).collect();
        let mut batch_events = MachineEvents::default();
        for r in &records {
            batch_events.merge(&r.total_events());
        }
        batch_events.w_reads = w_batch;
        Ok(BatchRunRecord {
            records,
            batch_time_us: 0.0,
            batch_events,
            w_reads_serial: w_serial,
            w_reads_amortized: w_batch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GoldenBackend;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn net_and_input(dims: &[usize], rank: usize) -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(11);
        let mlp = Mlp::random(dims, &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..dims[0])
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.31).sin().abs()
                }
            })
            .collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn kernel_backend_is_bit_exact_vs_golden() {
        let (net, x) = net_and_input(&[36, 72, 48, 10], 4);
        let golden = GoldenBackend::new();
        for block in [1, 8, 16, 33] {
            let kb = KernelBackend::with_block(block);
            for mode in [UvMode::Off, UvMode::On] {
                let want = golden.run(&net, &x, mode).unwrap();
                let got = kb.run(&net, &x, mode).unwrap();
                for (l, (g, w)) in got.layers.iter().zip(&want.layers).enumerate() {
                    assert_eq!(g.output, w.output, "b{block} layer {l} {mode:?}");
                    assert_eq!(g.mask, w.mask, "b{block} layer {l} mask {mode:?}");
                }
            }
        }
    }

    #[test]
    fn records_are_timing_free_and_deterministic() {
        let (net, x) = net_and_input(&[36, 72, 10], 4);
        let kb = KernelBackend::new();
        let a = kb.run(&net, &x, UvMode::On).unwrap();
        let b = kb.run(&net, &x, UvMode::On).unwrap();
        assert_eq!(a, b, "cache reuse never changes records");
        assert_eq!(a.total_cycles(), 0);
        assert_eq!(a.time_us(), 0.0);
        assert_eq!(a.backend, format!("kernel-cpu-b{DEFAULT_BLOCK}"));
        assert!(a.total_events().w_reads > 0, "events carry real activity");
    }

    #[test]
    fn repack_happens_on_a_different_network_only() {
        let (net_a, x) = net_and_input(&[36, 72, 10], 4);
        let net_b = {
            let mut rng = seeded_rng(99);
            let mlp = Mlp::random(&[36, 40, 10], &mut rng);
            FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 3, &mut rng))
        };
        let kb = KernelBackend::new();
        let a1 = kb.run(&net_a, &x, UvMode::On).unwrap();
        let _b = kb.run(&net_b, &x, UvMode::On).unwrap();
        let a2 = kb.run(&net_a, &x, UvMode::On).unwrap();
        assert_eq!(a1, a2, "cache swap round-trips exactly");
        // A clone at a new address hits the equality fallback, not a
        // stale pack.
        let clone = net_a.clone();
        let a3 = kb.run(&clone, &x, UvMode::On).unwrap();
        assert_eq!(a1, a3);
    }

    #[test]
    fn batch_amortizes_w_words_never_upward() {
        let (net, x) = net_and_input(&[48, 128, 10], 4);
        let kb = KernelBackend::new();
        let inputs = vec![x; 4];
        let batch = kb.run_batch(&net, &inputs, UvMode::On).unwrap();
        // Identical samples: the union pass degenerates to one serial pass.
        assert!((batch.w_read_amortization() - 4.0).abs() < 1e-12);
        assert_eq!(batch.batch_time_us, 0.0, "records stay timing-free");
        assert_eq!(
            batch.batch_events.w_reads, batch.w_reads_amortized,
            "the batch book carries the amortized W count"
        );
    }

    #[test]
    fn kernel_errors_are_typed() {
        let (net, _) = net_and_input(&[36, 72, 10], 4);
        let kb = KernelBackend::new();
        assert_eq!(
            kb.run_batch(&net, &[], UvMode::On).unwrap_err(),
            SparseNnError::EmptyBatch
        );
        let short = vec![Q6_10::ZERO; 12];
        assert_eq!(
            kb.run(&net, &short, UvMode::On).unwrap_err(),
            SparseNnError::InputWidthMismatch {
                expected: 36,
                got: 12
            }
        );
    }
}
