//! Dispatch policies shared by the live [`Fleet`](super::Fleet) and the
//! virtual-time serving simulator (`sparsenn-serve`).
//!
//! A [`Scheduler`] decides which shard a newly-arrived request should be
//! placed on, given a snapshot of every shard's instantaneous serving
//! state ([`ShardView`]). The same trait object drives both worlds:
//!
//! * the **live** [`Fleet`](super::Fleet) consults the scheduler whenever
//!   a caller needs a shard (it can only *use* idle shards — it has no
//!   per-shard queues — so a pick of a busy shard, or [`None`], makes the
//!   caller wait until a shard frees and re-ask);
//! * the **simulator** (`sparsenn-serve`) honours the pick literally: a
//!   busy shard's pick joins that shard's FIFO queue, and [`None`] holds
//!   the request in a central queue until the first shard goes idle.
//!
//! Because the policy is shared, a scheduler tuned against simulated
//! latency-vs-load curves drops into real serving unchanged.

/// Snapshot of one shard's instantaneous serving state, as seen by a
/// [`Scheduler`] placing one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardView {
    /// `false` when the shard is failed, slowed past usefulness, or still
    /// warming up after a scale-out — schedulers must not place work on
    /// it. The live fleet's shards are always healthy today; the
    /// `sparsenn-frontend` simulator drives this from its fault and
    /// autoscaling timelines.
    pub healthy: bool,
    /// `true` when the shard is neither serving nor holding queued work.
    pub idle: bool,
    /// Requests on the shard: in service (0 or 1) plus waiting in its
    /// queue. Always 0 when `idle`.
    pub depth: usize,
    /// Modelled time until the shard could *start* a new request,
    /// microseconds: remaining service of the in-flight request plus the
    /// service demand of everything queued behind it. 0 when idle; an
    /// estimate (mean observed service) where exact values are unknown.
    pub backlog_us: f64,
    /// Modelled service time of the request being placed, *on this shard*,
    /// microseconds. The simulator knows it exactly from the shard's clock
    /// model; the live fleet estimates it online — the shard's observed
    /// mean by default, or an EWMA under
    /// [`Fleet::with_service_alpha`](super::Fleet::with_service_alpha)
    /// (0 before the shard has served anything).
    pub service_us: f64,
}

impl ShardView {
    /// Expected completion offset for the request if placed here:
    /// queueing delay plus own service time, microseconds.
    pub fn expected_completion_us(&self) -> f64 {
        self.backlog_us + self.service_us
    }
}

/// A dispatch policy over a fleet of shards.
///
/// Implementations must be `Send + Sync`: the live fleet consults one
/// scheduler from every worker thread.
pub trait Scheduler: Send + Sync {
    /// Policy name (shows up in reports and fleet names).
    fn name(&self) -> &str;

    /// Picks the shard the arriving request should be placed on, or
    /// `None` to hold the request until the first shard becomes idle.
    ///
    /// Returning the index of a busy shard means "queue behind it" where
    /// queues exist (the simulator); the live fleet treats it as "wait".
    /// An out-of-range index is treated as `None` by both consumers.
    /// Implementations must never pick an unhealthy shard
    /// ([`ShardView::healthy`] is `false`) — its queue may never drain.
    fn pick(&self, shards: &[ShardView]) -> Option<usize>;
}

/// The PR-2 policy: the lowest-indexed idle shard, else wait for one.
///
/// Arrival order wins; the policy is blind to shard speed, which is what
/// lets a slow shard in a heterogeneous fleet capture requests a fast
/// shard would have finished sooner.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstIdle;

impl Scheduler for FirstIdle {
    fn name(&self) -> &str {
        "first-idle"
    }

    fn pick(&self, shards: &[ShardView]) -> Option<usize> {
        shards.iter().position(|s| s.healthy && s.idle)
    }
}

/// Join the shortest queue: the shard holding the fewest requests
/// (in service + waiting), lowest index on ties.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastQueued;

impl Scheduler for LeastQueued {
    fn name(&self) -> &str {
        "least-queued"
    }

    fn pick(&self, shards: &[ShardView]) -> Option<usize> {
        shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.healthy)
            .min_by_key(|(_, s)| s.depth)
            .map(|(i, _)| i)
    }
}

/// Latency-aware dispatch: the shard with the earliest expected
/// completion for *this* request (`backlog + service`, each shard's own
/// modelled `time_us`), lowest index on ties.
///
/// In a heterogeneous fleet this is the policy that queues behind a fast
/// cycle-accurate machine instead of handing the request to an idle but
/// slow SIMD platform.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastestCompletion;

impl Scheduler for FastestCompletion {
    fn name(&self) -> &str {
        "fastest-completion"
    }

    fn pick(&self, shards: &[ShardView]) -> Option<usize> {
        shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.healthy)
            .min_by(|(_, a), (_, b)| {
                a.expected_completion_us()
                    .total_cmp(&b.expected_completion_us())
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(idle: bool, depth: usize, backlog_us: f64, service_us: f64) -> ShardView {
        ShardView {
            healthy: true,
            idle,
            depth,
            backlog_us,
            service_us,
        }
    }

    fn unhealthy() -> ShardView {
        ShardView {
            healthy: false,
            ..view(true, 0, 0.0, 1.0)
        }
    }

    #[test]
    fn first_idle_prefers_lowest_index_and_waits_otherwise() {
        let s = FirstIdle;
        let busy = view(false, 1, 5.0, 5.0);
        let idle = view(true, 0, 0.0, 5.0);
        assert_eq!(s.pick(&[busy, idle, idle]), Some(1));
        assert_eq!(s.pick(&[idle, idle]), Some(0));
        assert_eq!(s.pick(&[busy, busy]), None, "no idle shard: wait");
    }

    #[test]
    fn least_queued_minimizes_depth_with_low_index_ties() {
        let s = LeastQueued;
        assert_eq!(
            s.pick(&[
                view(false, 3, 30.0, 10.0),
                view(false, 1, 10.0, 10.0),
                view(false, 1, 10.0, 10.0),
            ]),
            Some(1)
        );
        assert_eq!(
            s.pick(&[view(true, 0, 0.0, 1.0), view(false, 2, 2.0, 1.0)]),
            Some(0)
        );
    }

    #[test]
    fn fastest_completion_queues_behind_a_fast_shard() {
        let s = FastestCompletion;
        // Busy fast machine (backlog 8, service 4 → done at 12) beats an
        // idle slow SIMD shard (service 100).
        let fast_busy = view(false, 2, 8.0, 4.0);
        let slow_idle = view(true, 0, 0.0, 100.0);
        assert_eq!(s.pick(&[fast_busy, slow_idle]), Some(0));
        // …until the fast backlog exceeds the slow service time.
        let fast_swamped = view(false, 40, 160.0, 4.0);
        assert_eq!(s.pick(&[fast_swamped, slow_idle]), Some(1));
    }

    #[test]
    fn empty_fleet_views_yield_none() {
        assert_eq!(FirstIdle.pick(&[]), None);
        assert_eq!(LeastQueued.pick(&[]), None);
        assert_eq!(FastestCompletion.pick(&[]), None);
    }

    /// An unhealthy shard is invisible to every policy — even when it
    /// looks idle and fast — and an all-unhealthy fleet yields `None`.
    #[test]
    fn unhealthy_shards_are_never_picked() {
        let down = unhealthy();
        let busy = view(false, 2, 20.0, 10.0);
        assert_eq!(FirstIdle.pick(&[down, busy]), None, "down idle is unusable");
        assert_eq!(LeastQueued.pick(&[down, busy]), Some(1));
        assert_eq!(FastestCompletion.pick(&[down, busy]), Some(1));
        assert_eq!(FirstIdle.pick(&[down, down]), None);
        assert_eq!(LeastQueued.pick(&[down, down]), None);
        assert_eq!(FastestCompletion.pick(&[down, down]), None);
    }
}
