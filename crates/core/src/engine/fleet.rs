//! Sharded serving: one request queue, N simulated accelerators.
//!
//! The paper's north-star workload is heavy traffic — far more requests
//! than one simulated chip can absorb. A [`Fleet`] scales the serving
//! layer the way a datacenter does: it owns several independent
//! accelerator instances (*shards*, each any [`InferenceBackend`]) and
//! exposes them as a single backend. Every [`run`](InferenceBackend::run)
//! call checks out the first idle shard, executes on it, and returns it to
//! the idle pool; when all shards are busy the caller blocks until one
//! frees up. Plugged into a [`Session`](super::Session), the session's
//! worker pool becomes the shared request queue and the fleet becomes the
//! dispatch layer.
//!
//! Because every substrate produces bit-exact outputs and deterministic
//! per-sample records, a fleet of *identical* shards preserves the
//! session's bit-identical-to-serial guarantee: whichever shard serves a
//! sample, its [`RunRecord`](super::RunRecord) is the same, and the session
//! folds records in sample order. (Heterogeneous fleets still classify
//! identically — outputs are bit-exact across substrates — but their
//! cycle/latency aggregates depend on which shard served which sample,
//! and batch *energy* is priced at shard 0's machine configuration and
//! technology node regardless of which shard did the work. Keep fleets
//! homogeneous when timing or power numbers matter.)

use crate::engine::backends::{CycleAccurateBackend, InferenceBackend};
use crate::engine::record::RunRecord;
use crate::error::SparseNnError;
use sparsenn_energy::TechNode;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_numeric::Q6_10;
use sparsenn_sim::MachineConfig;
use std::sync::{Condvar, Mutex};

/// Serving statistics for one shard of a [`Fleet`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Samples this shard has served.
    pub samples: u64,
    /// Modelled accelerator-busy time, microseconds (the sum of the served
    /// records' [`time_us`](super::RunRecord::time_us); 0 for timing-free
    /// shards such as the golden model).
    pub busy_us: f64,
}

/// Book-keeping behind the fleet's dispatch lock: which shards are idle,
/// plus per-shard serving stats.
struct Dispatch {
    /// Indices of currently-idle shards.
    idle: Vec<usize>,
    stats: Vec<ShardStats>,
}

/// N independent simulated accelerators serving one request queue.
///
/// See the [module docs](self) for the dispatch and determinism story.
///
/// # Example
///
/// ```
/// use sparsenn_core::engine::{Fleet, InferenceBackend};
/// use sparsenn_core::datasets::DatasetKind;
/// use sparsenn_core::model::fixedpoint::UvMode;
/// use sparsenn_core::SystemBuilder;
///
/// let system = SystemBuilder::new(DatasetKind::Basic)
///     .dims(&[784, 24, 10])
///     .rank(4)
///     .train_samples(60)
///     .test_samples(20)
///     .epochs(1)
///     .build();
///
/// // Four cycle-accurate shards behind one queue; one worker per shard.
/// let fleet = Fleet::of_machines(4, *system.machine().config()).unwrap();
/// let session = system.session_with(Box::new(fleet)).with_workers(4);
/// let summary = session.simulate_batch(16, UvMode::On).unwrap();
/// assert_eq!(summary.samples, 16);
/// ```
pub struct Fleet {
    shards: Vec<Box<dyn InferenceBackend>>,
    dispatch: Mutex<Dispatch>,
    /// Signalled whenever a shard returns to the idle pool.
    freed: Condvar,
    name: String,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Builds a fleet over the given shards.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyFleet`] when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn InferenceBackend>>) -> Result<Self, SparseNnError> {
        if shards.is_empty() {
            return Err(SparseNnError::EmptyFleet);
        }
        let n = shards.len();
        let homogeneous = shards.iter().all(|s| s.name() == shards[0].name());
        let name = if homogeneous {
            format!("fleet({}x {})", n, shards[0].name())
        } else {
            format!("fleet({n} shards)")
        };
        Ok(Self {
            shards,
            dispatch: Mutex::new(Dispatch {
                // Lowest index on top, so dispatch prefers shard 0 first.
                idle: (0..n).rev().collect(),
                stats: vec![ShardStats::default(); n],
            }),
            freed: Condvar::new(),
            name,
        })
    }

    /// A homogeneous fleet of `n` cycle-accurate machines, each configured
    /// identically — the sharded-datacenter setup whose batch summaries are
    /// bit-identical to a single machine's.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyFleet`] when `n == 0`.
    pub fn of_machines(n: usize, cfg: MachineConfig) -> Result<Self, SparseNnError> {
        Self::new(
            (0..n)
                .map(|_| {
                    Box::new(CycleAccurateBackend::with_config(cfg)) as Box<dyn InferenceBackend>
                })
                .collect(),
        )
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard serving statistics accumulated so far.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.dispatch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
            .clone()
    }

    /// Checks out the first idle shard, blocking until one is free.
    fn acquire(&self) -> usize {
        let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(i) = d.idle.pop() {
                return i;
            }
            d = self.freed.wait(d).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns a shard to the idle pool.
    fn release(&self, shard: usize) {
        let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        d.idle.push(shard);
        // Keep the pool ordered so "first idle" means the lowest index.
        d.idle.sort_unstable_by(|a, b| b.cmp(a));
        drop(d);
        self.freed.notify_one();
    }

    /// Credits a successfully served sample to a shard's statistics.
    fn note_served(&self, shard: usize, record: &RunRecord) {
        let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        d.stats[shard].samples += 1;
        d.stats[shard].busy_us += record.time_us();
    }
}

/// Returns the shard on drop, so neither an error return nor a panicking
/// shard backend can leak serving capacity (the session converts the panic
/// into [`SparseNnError::WorkerPanicked`], and the fleet stays whole).
struct ShardGuard<'a> {
    fleet: &'a Fleet,
    shard: usize,
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.fleet.release(self.shard);
    }
}

impl InferenceBackend for Fleet {
    fn name(&self) -> &str {
        &self.name
    }

    /// The first shard's machine configuration (for a homogeneous fleet,
    /// every shard's). In a *mixed* fleet the other shards' events are
    /// priced on this configuration too — see
    /// [`tech_node`](Self::tech_node) for the caveat.
    fn machine_config(&self) -> Option<&MachineConfig> {
        self.shards[0].machine_config()
    }

    /// The first shard's technology node. Batch summaries price the whole
    /// fleet's events at this node, which is only physically meaningful
    /// when every shard models the same silicon — for a fleet mixing
    /// nodes (say DNN-Engine at 28 nm beside the 65 nm machine), outputs
    /// and accuracy stay exact but the energy aggregate follows whichever
    /// shard is listed first. Keep fleets homogeneous
    /// ([`Fleet::of_machines`]) when the power numbers matter.
    fn tech_node(&self) -> TechNode {
        self.shards[0].tech_node()
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        let guard = ShardGuard {
            fleet: self,
            shard: self.acquire(),
        };
        let record = self.shards[guard.shard].run(net, input, mode)?;
        self.note_served(guard.shard, &record);
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::backends::GoldenBackend;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn net_and_input() -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(7);
        let mlp = Mlp::random(&[24, 48, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 3, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.17).sin()).collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(
            Fleet::new(Vec::new()).unwrap_err(),
            SparseNnError::EmptyFleet
        );
        assert_eq!(
            Fleet::of_machines(0, MachineConfig::default()).unwrap_err(),
            SparseNnError::EmptyFleet
        );
    }

    #[test]
    fn fleet_matches_a_single_machine_bit_for_bit() {
        let (net, x) = net_and_input();
        let single = CycleAccurateBackend::default();
        let fleet = Fleet::of_machines(3, MachineConfig::default()).unwrap();
        for mode in [UvMode::Off, UvMode::On] {
            let a = single.run(&net, &x, mode).unwrap();
            let b = fleet.run(&net, &x, mode).unwrap();
            assert_eq!(a.layers, b.layers, "{mode:?}");
        }
    }

    #[test]
    fn names_and_config_reflect_the_shards() {
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        assert_eq!(fleet.name(), "fleet(2x cycle-accurate)");
        assert_eq!(fleet.shard_count(), 2);
        assert!(fleet.machine_config().is_some());
        assert_eq!(fleet.tech_node(), TechNode::n65());

        let mixed = Fleet::new(vec![
            Box::new(GoldenBackend::new()) as Box<dyn InferenceBackend>,
            Box::new(CycleAccurateBackend::default()),
        ])
        .unwrap();
        assert_eq!(mixed.name(), "fleet(2 shards)");
    }

    #[test]
    fn stats_account_for_every_served_sample() {
        let (net, x) = net_and_input();
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        for _ in 0..5 {
            fleet.run(&net, &x, UvMode::On).unwrap();
        }
        let stats = fleet.shard_stats();
        assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 5);
        // Serial callers always find shard 0 idle first.
        assert_eq!(stats[0].samples, 5);
        assert!(stats[0].busy_us > 0.0);
        assert_eq!(stats[1], ShardStats::default());
    }

    #[test]
    fn failed_runs_do_not_count_as_served() {
        let (net, _) = net_and_input();
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        let short = vec![Q6_10::ZERO; 3];
        assert!(fleet.run(&net, &short, UvMode::On).is_err());
        assert_eq!(fleet.shard_stats()[0], ShardStats::default());
        // And the shard went back to the pool: a good run still succeeds.
        let (net, x) = net_and_input();
        assert!(fleet.run(&net, &x, UvMode::On).is_ok());
        assert_eq!(fleet.shard_stats()[0].samples, 1);
    }
}
