//! Sharded serving: one request queue, N simulated accelerators.
//!
//! The paper's north-star workload is heavy traffic — far more requests
//! than one simulated chip can absorb. A [`Fleet`] scales the serving
//! layer the way a datacenter does: it owns several independent
//! accelerator instances (*shards*, each any [`InferenceBackend`]) and
//! exposes them as a single backend. Every [`run`](InferenceBackend::run)
//! call asks the fleet's [`Scheduler`] which idle shard to check out
//! ([`FirstIdle`](super::FirstIdle) by default — the lowest-indexed idle
//! shard), executes on it, and returns it to the idle pool; when no shard
//! is usable the caller blocks until one frees up. The scheduler trait is
//! shared with the `sparsenn-serve` virtual-time simulator, so dispatch
//! policies validated against simulated latency curves serve live traffic
//! unchanged. Plugged into a [`Session`](super::Session), the session's
//! worker pool becomes the shared request queue and the fleet becomes the
//! dispatch layer.
//!
//! Because every substrate produces bit-exact outputs and deterministic
//! per-sample records, a fleet of *identical* shards preserves the
//! session's bit-identical-to-serial guarantee: whichever shard serves a
//! sample, its [`RunRecord`](super::RunRecord) is the same, and the session
//! folds records in sample order. (Heterogeneous fleets still classify
//! identically — outputs are bit-exact across substrates — but their
//! cycle/latency aggregates depend on which shard served which sample,
//! and batch *energy* is priced at shard 0's machine configuration and
//! technology node regardless of which shard did the work. Keep fleets
//! homogeneous when timing or power numbers matter.)

use crate::engine::admission::{AdmissionDecision, AdmissionGate, Priority};
use crate::engine::backends::{CycleAccurateBackend, InferenceBackend};
use crate::engine::batch::BatchPolicy;
use crate::engine::record::{BatchRunRecord, RunRecord};
use crate::engine::scheduler::{FirstIdle, Scheduler, ShardView};
use crate::error::SparseNnError;
use sparsenn_energy::TechNode;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_numeric::Q6_10;
use sparsenn_obs::{LatencyStat, LatencyStats, MetricsRegistry, P2Quantile};
use sparsenn_sim::MachineConfig;
use std::sync::{Condvar, Mutex};

/// Serving statistics for one shard of a [`Fleet`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Samples this shard has served.
    pub samples: u64,
    /// Modelled accelerator-busy time, microseconds (the sum of the served
    /// records' [`time_us`](super::RunRecord::time_us); 0 for timing-free
    /// shards such as the golden model).
    pub busy_us: f64,
    /// The live service-time estimate schedulers see as
    /// [`ShardView::service_us`]: the plain observed mean by default, an
    /// EWMA when the fleet was built with [`Fleet::with_service_alpha`],
    /// or an online percentile under
    /// [`Fleet::with_service_percentile`]. 0 before the shard has served
    /// anything.
    pub service_estimate_us: f64,
    /// Batched dispatches this shard has executed
    /// ([`Fleet::run_batch_classified`]; single-sample runs do not
    /// count).
    pub batches: u64,
    /// Samples served inside those batched dispatches (also included in
    /// [`samples`](Self::samples)).
    pub batch_samples: u64,
    /// Largest batch this shard has executed (0 before the first one).
    pub max_batch: u64,
}

impl ShardStats {
    /// Mean size of the batched dispatches this shard executed (0 before
    /// the first one).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_samples as f64 / self.batches as f64
    }
}

/// Admission-control outcomes accumulated by a [`Fleet`] built with
/// [`Fleet::with_admission`], split by [`Priority`] class (index by
/// [`Priority::index`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests the gate admitted at full fidelity.
    pub admitted: [u64; 2],
    /// Requests the gate asked to degrade. The live fleet serves them at
    /// full fidelity (there is no cheaper live substrate to switch to
    /// mid-call) but records the intent so operators see the pressure.
    pub degraded: [u64; 2],
    /// Requests shed — each surfaced to its caller as
    /// [`SparseNnError::Overloaded`].
    pub shed: [u64; 2],
}

/// Book-keeping behind the fleet's dispatch lock: which shards are idle,
/// plus per-shard serving stats.
struct Dispatch {
    /// Indices of currently-idle shards.
    idle: Vec<usize>,
    stats: Vec<ShardStats>,
    /// Per-shard service-time books — the unified `sparsenn-obs`
    /// accumulator (count/mean/max plus P² percentiles). Feeds the live
    /// estimate in every mode and the full distribution snapshot in
    /// [`Fleet::shard_service_stats`]. Under
    /// [`Fleet::with_service_percentile`] it also carries the extra
    /// tracked quantile schedulers rank by.
    service: Vec<LatencyStat>,
    /// Callers currently blocked waiting for a shard, per priority class
    /// — the live fleet's "queue depth", which is what the admission gate
    /// bounds.
    waiting: [usize; 2],
    /// Admission outcomes (only advanced when a gate is installed).
    admission: AdmissionStats,
}

/// N independent simulated accelerators serving one request queue.
///
/// See the [module docs](self) for the dispatch and determinism story.
///
/// # Example
///
/// ```
/// use sparsenn_core::engine::{Fleet, InferenceBackend};
/// use sparsenn_core::datasets::DatasetKind;
/// use sparsenn_core::model::fixedpoint::UvMode;
/// use sparsenn_core::SystemBuilder;
///
/// let system = SystemBuilder::new(DatasetKind::Basic)
///     .dims(&[784, 24, 10])
///     .rank(4)
///     .train_samples(60)
///     .test_samples(20)
///     .epochs(1)
///     .build();
///
/// // Four cycle-accurate shards behind one queue; one worker per shard.
/// let fleet = Fleet::of_machines(4, *system.machine().config()).unwrap();
/// let session = system.session_with(Box::new(fleet)).with_workers(4);
/// let summary = session.simulate_batch(16, UvMode::On).unwrap();
/// assert_eq!(summary.samples, 16);
/// ```
pub struct Fleet {
    shards: Vec<Box<dyn InferenceBackend>>,
    dispatch: Mutex<Dispatch>,
    /// Signalled whenever a shard returns to the idle pool.
    freed: Condvar,
    scheduler: Box<dyn Scheduler>,
    /// Admission gate consulted before every run; `None` admits all.
    admission: Option<Box<dyn AdmissionGate>>,
    /// EWMA weight for the live service-time estimate; `None` keeps the
    /// plain observed mean (equivalent to a per-sample weight of `1/n`).
    service_alpha: Option<f64>,
    /// When set, the live estimate is this percentile of each shard's
    /// observed service times (P²) instead of a mean.
    service_percentile: Option<f64>,
    /// How [`run_batch_classified`](Self::run_batch_classified) chunks a
    /// batched call across dispatches.
    batch_policy: BatchPolicy,
    name: String,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Builds a fleet over the given shards.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyFleet`] when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn InferenceBackend>>) -> Result<Self, SparseNnError> {
        if shards.is_empty() {
            return Err(SparseNnError::EmptyFleet);
        }
        let n = shards.len();
        // Homogeneity means "same modelled silicon", not "same label": two
        // cycle-accurate shards with different clocks or technology nodes
        // share a name() but not timing or energy behaviour, so compare a
        // full configuration fingerprint.
        let fp = config_fingerprint(shards[0].as_ref());
        let homogeneous = shards.iter().all(|s| config_fingerprint(s.as_ref()) == fp);
        let name = if homogeneous {
            format!("fleet({}x {})", n, shards[0].name())
        } else {
            format!("fleet({n} shards)")
        };
        Ok(Self {
            shards,
            dispatch: Mutex::new(Dispatch {
                idle: (0..n).collect(),
                stats: vec![ShardStats::default(); n],
                service: vec![LatencyStat::new(); n],
                waiting: [0; 2],
                admission: AdmissionStats::default(),
            }),
            freed: Condvar::new(),
            scheduler: Box::new(FirstIdle),
            admission: None,
            service_alpha: None,
            service_percentile: None,
            batch_policy: BatchPolicy::Immediate,
            name,
        })
    }

    /// Switches the live service-time estimate from the plain observed
    /// mean to an exponentially-weighted moving average with weight
    /// `alpha` (clamped to `(0, 1]`): each served sample updates the
    /// estimate by `est += alpha × (sample − est)`. The default (no
    /// call) keeps the plain mean — exactly an EWMA whose weight decays
    /// as `1/n` — which converges on stationary workloads but lags when
    /// a shard's service distribution *shifts* (a new network, a
    /// noisy neighbour): a fixed alpha forgets old samples at a constant
    /// rate, so [`FastestCompletion`](super::FastestCompletion) re-ranks
    /// shards within `~1/alpha` samples of a shift instead of `~n`.
    ///
    /// Mutually exclusive with
    /// [`with_service_percentile`](Self::with_service_percentile) — the
    /// last builder call wins.
    pub fn with_service_alpha(mut self, alpha: f64) -> Self {
        self.service_alpha = Some(alpha.clamp(f64::MIN_POSITIVE, 1.0));
        self.service_percentile = None;
        let d = self.dispatch.get_mut().unwrap_or_else(|e| e.into_inner());
        d.service = vec![LatencyStat::new(); self.shards.len()];
        self
    }

    /// Switches the live service-time estimate to an **online
    /// percentile**: schedulers see each shard's `p`-quantile of
    /// observed service times (P² streaming estimator —
    /// [`P2Quantile`](crate::engine::P2Quantile), constant space, no
    /// samples retained) instead of a mean. `p` is clamped to
    /// `[0.01, 0.999]`; `0.95` makes
    /// [`FastestCompletion`](super::FastestCompletion) rank shards by
    /// tail latency, which is the number serving SLOs are written
    /// against — a shard whose *mean* looks fast but whose tail is
    /// heavy (occasional uv_on worst-case samples, a noisy neighbour)
    /// stops attracting traffic it will serve late. Mutually exclusive
    /// with [`with_service_alpha`](Self::with_service_alpha) — the last
    /// builder call wins. The closed ROADMAP "online percentile service
    /// estimate" item.
    pub fn with_service_percentile(mut self, p: f64) -> Self {
        self.service_percentile = Some(P2Quantile::new(p).quantile());
        self.service_alpha = None;
        let d = self.dispatch.get_mut().unwrap_or_else(|e| e.into_inner());
        d.service = vec![LatencyStat::with_quantile(p); self.shards.len()];
        self
    }

    /// The percentile the live service estimate tracks, when
    /// [`with_service_percentile`](Self::with_service_percentile) is
    /// active.
    pub fn service_percentile(&self) -> Option<f64> {
        self.service_percentile
    }

    /// Replaces the dispatch policy (default: [`FirstIdle`]). The same
    /// [`Scheduler`] implementations drive the `sparsenn-serve` simulator,
    /// so a policy can be tuned on simulated latency curves and then
    /// dropped in here. Because every shard produces bit-exact outputs,
    /// the policy never changes results — only which shard serves which
    /// request (i.e. [`shard_stats`](Self::shard_stats) and, for
    /// heterogeneous fleets, timing aggregates).
    pub fn with_scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The dispatch policy's name (`first-idle` unless replaced).
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Installs an admission gate on the live serving path. Every
    /// [`run`](InferenceBackend::run) (class [`Priority::High`]) and
    /// [`run_classified`](Self::run_classified) call consults the gate
    /// *before* waiting for a shard; a [`AdmissionDecision::Shed`]
    /// surfaces as [`SparseNnError::Overloaded`] immediately — the
    /// blocked-caller pool is the live fleet's queue, and the gate is
    /// what keeps it bounded. The same [`AdmissionGate`] trait drives the
    /// `sparsenn-frontend` virtual-time simulator, so a gate tuned
    /// against simulated overload sweeps drops in here unchanged.
    pub fn with_admission(mut self, gate: Box<dyn AdmissionGate>) -> Self {
        self.admission = Some(gate);
        self
    }

    /// The admission gate's name, when one is installed.
    pub fn admission_name(&self) -> Option<&str> {
        self.admission.as_deref().map(AdmissionGate::name)
    }

    /// Admission outcomes since construction (all zero when no gate is
    /// installed — ungated requests are not counted as admitted).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.dispatch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admission
    }

    /// Runs one request with an explicit [`Priority`] class through the
    /// admission gate (when installed) and the fleet's scheduler.
    /// [`InferenceBackend::run`] is exactly
    /// `run_classified(…, Priority::High)`.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::Overloaded`] when the gate sheds the request;
    /// otherwise whatever the serving shard returns.
    pub fn run_classified(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
        class: Priority,
    ) -> Result<RunRecord, SparseNnError> {
        if let Some(gate) = &self.admission {
            let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
            let views = self.shard_views(&d);
            let decision = gate.decide(class, d.waiting[class.index()], &views);
            match decision {
                AdmissionDecision::Admit => d.admission.admitted[class.index()] += 1,
                // No cheaper live substrate exists to switch to mid-call:
                // serve at full fidelity, record the intent.
                AdmissionDecision::Degrade => d.admission.degraded[class.index()] += 1,
                AdmissionDecision::Shed => {
                    d.admission.shed[class.index()] += 1;
                    return Err(SparseNnError::Overloaded { priority: class });
                }
            }
        }
        let guard = ShardGuard {
            fleet: self,
            shard: self.acquire(class),
        };
        let record = self.shards[guard.shard].run(net, input, mode)?;
        self.note_served(guard.shard, &record);
        Ok(record)
    }

    /// Caps how many samples one shard dispatch carries when the fleet
    /// serves batches ([`run_batch_classified`](Self::run_batch_classified)):
    /// the policy's [`max_batch`](BatchPolicy::max_batch) becomes the
    /// chunk size. The default ([`BatchPolicy::Immediate`]) sends the
    /// whole batch to one shard; `SizeOrDeadline { max, .. }` splits it
    /// into `max`-sample chunks that spread over idle shards. The
    /// *deadline* half of the policy governs queue-time decisions and is
    /// exercised by the `sparsenn-serve` virtual-time simulator — the
    /// live fleet only ever sees batches that have already formed.
    pub fn with_batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch_policy = policy;
        self
    }

    /// The installed batching policy ([`BatchPolicy::Immediate`] unless
    /// replaced).
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch_policy
    }

    /// Runs a batch of requests with an explicit [`Priority`] class: the
    /// batch is split into chunks of at most
    /// [`BatchPolicy::max_batch`] samples, each chunk passes the
    /// admission gate (counting every sample it carries), checks out
    /// *one* shard, and executes there as a true batched dispatch
    /// ([`InferenceBackend::run_batch`]) — W rows are read once per
    /// chunk on batch-native substrates. Per-sample records are
    /// bit-identical to serial [`run`](InferenceBackend::run) calls.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyBatch`] for an empty input slice;
    /// [`SparseNnError::Overloaded`] when the gate sheds a chunk (any
    /// chunks already served are discarded — the caller sees the batch
    /// fail as a unit); otherwise whatever the serving shard returns.
    pub fn run_batch_classified(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
        class: Priority,
    ) -> Result<BatchRunRecord, SparseNnError> {
        if inputs.is_empty() {
            return Err(SparseNnError::EmptyBatch);
        }
        let chunk_size = self.batch_policy.max_batch().min(inputs.len()).max(1);
        let mut folded: Option<BatchRunRecord> = None;
        for chunk in inputs.chunks(chunk_size) {
            if let Some(gate) = &self.admission {
                let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
                let views = self.shard_views(&d);
                let decision = gate.decide(class, d.waiting[class.index()], &views);
                let n = chunk.len() as u64;
                match decision {
                    AdmissionDecision::Admit => d.admission.admitted[class.index()] += n,
                    AdmissionDecision::Degrade => d.admission.degraded[class.index()] += n,
                    AdmissionDecision::Shed => {
                        d.admission.shed[class.index()] += n;
                        return Err(SparseNnError::Overloaded { priority: class });
                    }
                }
            }
            let guard = ShardGuard {
                fleet: self,
                shard: self.acquire(class),
            };
            let record = self.shards[guard.shard].run_batch(net, chunk, mode)?;
            self.note_served_batch(guard.shard, &record);
            match &mut folded {
                Some(acc) => acc.merge(record),
                None => folded = Some(record),
            }
        }
        Ok(folded.expect("non-empty input produces at least one chunk"))
    }

    /// A homogeneous fleet of `n` cycle-accurate machines, each configured
    /// identically — the sharded-datacenter setup whose batch summaries are
    /// bit-identical to a single machine's.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyFleet`] when `n == 0`.
    pub fn of_machines(n: usize, cfg: MachineConfig) -> Result<Self, SparseNnError> {
        Self::new(
            (0..n)
                .map(|_| {
                    Box::new(CycleAccurateBackend::with_config(cfg)) as Box<dyn InferenceBackend>
                })
                .collect(),
        )
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard serving statistics accumulated so far.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.dispatch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
            .clone()
    }

    /// Per-shard service-time *distributions* (mean/p50/p95/p99/max from
    /// the unified `sparsenn-obs` book) — richer than the single live
    /// estimate in [`ShardStats::service_estimate_us`]. One entry per
    /// observation fold: per sample in mean/EWMA modes, per dispatch
    /// under [`with_service_percentile`](Self::with_service_percentile).
    pub fn shard_service_stats(&self) -> Vec<LatencyStats> {
        self.dispatch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .service
            .iter()
            .map(LatencyStat::stats)
            .collect()
    }

    /// Exports the fleet's books into a [`MetricsRegistry`] under
    /// `fleet.*` names: per-shard counters (`fleet.shard0.samples`, …),
    /// service-time gauges, and the admission ledger when a gate is
    /// installed.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        let d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        for (i, (s, svc)) in d.stats.iter().zip(&d.service).enumerate() {
            let p = format!("fleet.shard{i}");
            registry.inc(&format!("{p}.samples"), s.samples);
            registry.inc(&format!("{p}.batches"), s.batches);
            registry.inc(&format!("{p}.batch_samples"), s.batch_samples);
            registry.set_gauge(&format!("{p}.busy_us"), s.busy_us);
            registry.set_gauge(&format!("{p}.max_batch"), s.max_batch as f64);
            registry.set_gauge(&format!("{p}.service_estimate_us"), s.service_estimate_us);
            registry.record_latency(&format!("{p}.service"), &svc.stats());
        }
        let a = d.admission;
        for (class, idx) in [("high", 0), ("low", 1)] {
            registry.inc(
                &format!("fleet.admission.{class}.admitted"),
                a.admitted[idx],
            );
            registry.inc(
                &format!("fleet.admission.{class}.degraded"),
                a.degraded[idx],
            );
            registry.inc(&format!("fleet.admission.{class}.shed"), a.shed[idx]);
        }
    }

    /// Checks out the shard the scheduler picks, blocking until one is
    /// usable.
    ///
    /// The live fleet has no per-shard queues — blocked callers *are* the
    /// central queue — so only an idle shard can be checked out. A pick of
    /// a busy shard (e.g. [`FastestCompletion`](super::FastestCompletion)
    /// preferring a loaded fast machine over an idle slow one) makes the
    /// caller wait for the next release and ask again; once the preferred
    /// shard frees it is idle and the pick lands. If the policy declines
    /// every shard while *nothing* is running, the lowest-indexed idle
    /// shard is used instead — no release would ever arrive, so waiting
    /// would deadlock the caller.
    fn acquire(&self, class: Priority) -> usize {
        let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = self.pick_idle(&d) {
            d.idle.retain(|&j| j != i);
            return i;
        }
        // Blocked callers are the live fleet's queue: count this one in
        // its class so the admission gate sees the true waiting depth.
        d.waiting[class.index()] += 1;
        loop {
            d = self.freed.wait(d).unwrap_or_else(|e| e.into_inner());
            if let Some(i) = self.pick_idle(&d) {
                d.idle.retain(|&j| j != i);
                d.waiting[class.index()] -= 1;
                return i;
            }
        }
    }

    /// Builds the scheduler-facing snapshot of every shard. Live shards
    /// never fail today, so they are always healthy; the `ShardView`
    /// health bit exists for the frontend simulator's fault timelines.
    fn shard_views(&self, d: &Dispatch) -> Vec<ShardView> {
        (0..self.shards.len())
            .map(|i| {
                let idle = d.idle.contains(&i);
                let s = &d.stats[i];
                // Best live estimate of this shard's service time: the
                // running estimate maintained by note_served — the plain
                // mean by default, an EWMA under with_service_alpha
                // (0 before the first run).
                let est_us = s.service_estimate_us;
                ShardView {
                    healthy: true,
                    idle,
                    depth: usize::from(!idle),
                    backlog_us: if idle { 0.0 } else { est_us },
                    service_us: est_us,
                }
            })
            .collect()
    }

    /// Asks the scheduler for a shard and validates the pick against the
    /// idle set. `None` means "wait and re-ask after the next release".
    fn pick_idle(&self, d: &Dispatch) -> Option<usize> {
        if d.idle.is_empty() {
            return None;
        }
        let views = self.shard_views(d);
        match self.scheduler.pick(&views) {
            Some(i) if views.get(i).is_some_and(|v| v.idle) => Some(i),
            // The pick is busy or invalid. Legitimate to wait while some
            // shard is running (its release re-triggers the pick); with
            // every shard idle nothing will ever be released, so fall
            // back to the first idle shard to guarantee progress.
            _ if d.idle.len() == self.shards.len() => d.idle.iter().min().copied(),
            _ => None,
        }
    }

    /// Returns a shard to the idle pool.
    fn release(&self, shard: usize) {
        let mut d = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        d.idle.push(shard);
        drop(d);
        // All waiters re-run the pick: a selective scheduler may have a
        // waiter declining this shard while another would take it, so a
        // single wake-up could stall behind the wrong waiter.
        self.freed.notify_all();
    }

    /// Credits a successfully served sample to a shard's statistics and
    /// folds its service time into the live estimate (plain mean, EWMA
    /// under [`with_service_alpha`](Self::with_service_alpha), or an
    /// online percentile under
    /// [`with_service_percentile`](Self::with_service_percentile)).
    fn note_served(&self, shard: usize, record: &RunRecord) {
        let mut guard = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        let d = &mut *guard;
        let x = record.time_us();
        d.service[shard].observe(x);
        let s = &mut d.stats[shard];
        s.samples += 1;
        s.busy_us += x;
        s.service_estimate_us = if self.service_percentile.is_some() {
            d.service[shard].quantile_estimate().unwrap_or(0.0)
        } else if let Some(alpha) = self.service_alpha {
            let alpha = if s.samples == 1 {
                1.0 // seed the estimate with the first observation
            } else {
                alpha
            };
            s.service_estimate_us + alpha * (x - s.service_estimate_us)
        } else {
            // Plain mean — the exact running mean the shared book keeps.
            d.service[shard].mean_us()
        };
    }

    /// Credits a batched dispatch to a shard's statistics. Each sample
    /// contributes the batch's *amortized* per-sample latency
    /// ([`BatchRunRecord::mean_time_us`]) to the service estimate — that
    /// is what the next request dispatched to this shard will observe —
    /// so under the plain-mean default the estimate stays the observed
    /// mean of per-sample service times, exactly as if `note_served` had
    /// seen each sample individually at the amortized latency.
    fn note_served_batch(&self, shard: usize, record: &BatchRunRecord) {
        let b = record.batch_size() as u64;
        if b == 0 {
            return;
        }
        let per_sample_us = record.mean_time_us();
        let mut guard = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        let d = &mut *guard;
        if self.service_percentile.is_some() {
            // One dispatch = one observation of the amortized latency:
            // the tail the tracker models is over dispatches, which is
            // what a queued request actually waits behind.
            d.service[shard].observe(per_sample_us);
        } else {
            // Every sample in the dispatch observed the amortized
            // latency — the book's mean stays the observed per-sample
            // mean, exactly as if each sample were noted individually.
            d.service[shard].observe_weighted(per_sample_us, b);
        }
        let s = &mut d.stats[shard];
        let first = s.samples == 0;
        s.samples += b;
        s.busy_us += record.batch_time_us;
        s.service_estimate_us = if self.service_percentile.is_some() {
            d.service[shard].quantile_estimate().unwrap_or(0.0)
        } else if let Some(alpha) = self.service_alpha {
            let weight = if first {
                1.0 // seed the estimate with the first dispatch
            } else {
                alpha
            };
            s.service_estimate_us + weight * (per_sample_us - s.service_estimate_us)
        } else {
            d.service[shard].mean_us()
        };
        s.batches += 1;
        s.batch_samples += b;
        s.max_batch = s.max_batch.max(b);
    }
}

/// The identity a [`Fleet`] considers for homogeneity: substrate name,
/// technology node and (when present) the full machine configuration —
/// two shards agreeing on all three are interchangeable for timing and
/// energy, not just for outputs.
fn config_fingerprint(shard: &dyn InferenceBackend) -> String {
    format!(
        "{}|{}nm|{:?}",
        shard.name(),
        shard.tech_node().nm(),
        shard.machine_config()
    )
}

/// Returns the shard on drop, so neither an error return nor a panicking
/// shard backend can leak serving capacity (the session converts the panic
/// into [`SparseNnError::WorkerPanicked`], and the fleet stays whole).
struct ShardGuard<'a> {
    fleet: &'a Fleet,
    shard: usize,
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.fleet.release(self.shard);
    }
}

impl InferenceBackend for Fleet {
    fn name(&self) -> &str {
        &self.name
    }

    /// The first shard's machine configuration (for a homogeneous fleet,
    /// every shard's). In a *mixed* fleet the other shards' events are
    /// priced on this configuration too — see
    /// [`tech_node`](Self::tech_node) for the caveat.
    fn machine_config(&self) -> Option<&MachineConfig> {
        self.shards[0].machine_config()
    }

    /// The first shard's technology node. Batch summaries price the whole
    /// fleet's events at this node, which is only physically meaningful
    /// when every shard models the same silicon — for a fleet mixing
    /// nodes (say DNN-Engine at 28 nm beside the 65 nm machine), outputs
    /// and accuracy stay exact but the energy aggregate follows whichever
    /// shard is listed first. Keep fleets homogeneous
    /// ([`Fleet::of_machines`]) when the power numbers matter.
    fn tech_node(&self) -> TechNode {
        self.shards[0].tech_node()
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        self.run_classified(net, input, mode, Priority::High)
    }

    /// Batches route through the fleet's chunking path
    /// ([`run_batch_classified`](Fleet::run_batch_classified) at
    /// [`Priority::High`]) instead of the serial default, so each chunk
    /// reaches a shard as one true batched dispatch.
    fn run_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> Result<BatchRunRecord, SparseNnError> {
        self.run_batch_classified(net, inputs, mode, Priority::High)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::backends::GoldenBackend;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn net_and_input() -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(7);
        let mlp = Mlp::random(&[24, 48, 10], &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, 3, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.17).sin()).collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(
            Fleet::new(Vec::new()).unwrap_err(),
            SparseNnError::EmptyFleet
        );
        assert_eq!(
            Fleet::of_machines(0, MachineConfig::default()).unwrap_err(),
            SparseNnError::EmptyFleet
        );
    }

    #[test]
    fn fleet_matches_a_single_machine_bit_for_bit() {
        let (net, x) = net_and_input();
        let single = CycleAccurateBackend::default();
        let fleet = Fleet::of_machines(3, MachineConfig::default()).unwrap();
        for mode in [UvMode::Off, UvMode::On] {
            let a = single.run(&net, &x, mode).unwrap();
            let b = fleet.run(&net, &x, mode).unwrap();
            assert_eq!(a.layers, b.layers, "{mode:?}");
        }
    }

    #[test]
    fn names_and_config_reflect_the_shards() {
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        assert_eq!(fleet.name(), "fleet(2x cycle-accurate)");
        assert_eq!(fleet.shard_count(), 2);
        assert!(fleet.machine_config().is_some());
        assert_eq!(fleet.tech_node(), TechNode::n65());

        let mixed = Fleet::new(vec![
            Box::new(GoldenBackend::new()) as Box<dyn InferenceBackend>,
            Box::new(CycleAccurateBackend::default()),
        ])
        .unwrap();
        assert_eq!(mixed.name(), "fleet(2 shards)");
    }

    /// Regression: two machine shards sharing a name but not a clock (or
    /// any other config field) are *not* homogeneous — comparing `name()`
    /// alone used to misclassify them.
    #[test]
    fn same_name_different_config_is_not_homogeneous() {
        let slow = MachineConfig {
            clock_ns: 10.0,
            ..MachineConfig::default()
        };
        let mixed_clock = Fleet::new(vec![
            Box::new(CycleAccurateBackend::default()) as Box<dyn InferenceBackend>,
            Box::new(CycleAccurateBackend::with_config(slow)),
        ])
        .unwrap();
        assert_eq!(
            mixed_clock.name(),
            "fleet(2 shards)",
            "differing clocks must not be labelled homogeneous"
        );
        // Identical configs still collapse to the homogeneous label.
        let twins = Fleet::of_machines(2, slow).unwrap();
        assert_eq!(twins.name(), "fleet(2x cycle-accurate)");
    }

    #[test]
    fn scheduler_is_pluggable_and_default_is_first_idle() {
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        assert_eq!(fleet.scheduler_name(), "first-idle");
        let fleet = fleet.with_scheduler(Box::new(crate::engine::FastestCompletion));
        assert_eq!(fleet.scheduler_name(), "fastest-completion");
    }

    /// With fastest-expected-completion, serial callers spread over the
    /// fleet by modelled speed: once shard 0 has a measured mean service
    /// time, the still-unmeasured (estimate 0) shard 1 looks faster, and
    /// once both are measured the genuinely faster shard wins.
    #[test]
    fn fastest_completion_routes_to_the_faster_shard() {
        let (net, x) = net_and_input();
        let slow = MachineConfig {
            clock_ns: 20.0,
            ..MachineConfig::default()
        };
        let fleet = Fleet::new(vec![
            Box::new(CycleAccurateBackend::with_config(slow)) as Box<dyn InferenceBackend>,
            Box::new(CycleAccurateBackend::default()),
        ])
        .unwrap()
        .with_scheduler(Box::new(crate::engine::FastestCompletion));
        for _ in 0..6 {
            fleet.run(&net, &x, UvMode::On).unwrap();
        }
        let stats = fleet.shard_stats();
        assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 6);
        // Warm-up probes each shard once; every later call lands on the
        // 2 ns shard, never again on the 20 ns one.
        assert_eq!(stats[0].samples, 1, "slow shard serves only its probe");
        assert_eq!(stats[1].samples, 5);
    }

    /// A record whose only layer models `us` microseconds of service.
    fn timed_record(us: f64) -> RunRecord {
        RunRecord {
            backend: "test".into(),
            layers: vec![crate::engine::LayerRecord {
                output: vec![Q6_10::ZERO],
                mask: None,
                cycles: 0,
                vu_cycles: 0,
                w_cycles: 0,
                time_us: us,
                events: sparsenn_sim::MachineEvents::default(),
            }],
        }
    }

    /// The ROADMAP follow-up: under a *shifted* service distribution the
    /// plain observed mean lags for as many samples as it has history,
    /// while a fixed-alpha EWMA re-converges at a constant rate — so
    /// FastestCompletion re-ranks shards promptly after the shift.
    #[test]
    fn ewma_tracks_a_shifted_service_distribution_where_the_mean_lags() {
        let mean_fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        let ewma_fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_service_alpha(0.3);
        // 50 samples at 10 µs, then the distribution shifts to 100 µs.
        for fleet in [&mean_fleet, &ewma_fleet] {
            for _ in 0..50 {
                fleet.note_served(0, &timed_record(10.0));
            }
            for _ in 0..10 {
                fleet.note_served(0, &timed_record(100.0));
            }
        }
        let mean_est = mean_fleet.shard_stats()[0].service_estimate_us;
        let ewma_est = ewma_fleet.shard_stats()[0].service_estimate_us;
        // After 10 post-shift samples the EWMA is nearly converged…
        assert!(
            ewma_est > 90.0,
            "EWMA estimate {ewma_est:.1} should track the shift"
        );
        // …while the plain mean is still dominated by stale history.
        assert!(mean_est < 30.0, "plain mean {mean_est:.1} should lag");
        // And without a shift the default estimate equals the mean.
        assert!(
            (mean_fleet.shard_stats()[0].busy_us / 60.0 - mean_est).abs() < 1e-9,
            "default estimate is the plain observed mean"
        );
    }

    /// The ROADMAP open item: an online *percentile* estimate. A shard
    /// with a fast mean but a heavy tail must rank by its tail under
    /// `with_service_percentile` — the mean hides exactly the samples an
    /// SLO is written against.
    #[test]
    fn percentile_estimate_sees_the_tail_the_mean_hides() {
        let mean_fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        let p95_fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_service_percentile(0.95);
        assert_eq!(p95_fleet.service_percentile(), Some(0.95));
        assert_eq!(mean_fleet.service_percentile(), None);
        // 19 of 20 samples at 10 µs, 1 at 500 µs (uv_on worst case).
        for fleet in [&mean_fleet, &p95_fleet] {
            for i in 0..200 {
                let us = if i % 20 == 19 { 500.0 } else { 10.0 };
                fleet.note_served(0, &timed_record(us));
            }
        }
        let mean_est = mean_fleet.shard_stats()[0].service_estimate_us;
        let p95_est = p95_fleet.shard_stats()[0].service_estimate_us;
        assert!(
            (mean_est - 34.5).abs() < 1.0,
            "mean ≈ 34.5 µs, got {mean_est}"
        );
        assert!(
            p95_est > 100.0,
            "p95 {p95_est} must reflect the 500 µs tail"
        );
        // Sample accounting is unchanged by the estimator choice.
        assert_eq!(p95_fleet.shard_stats()[0].samples, 200);
        assert!(
            (p95_fleet.shard_stats()[0].busy_us - mean_fleet.shard_stats()[0].busy_us).abs() < 1e-9
        );
    }

    /// The percentile estimate flows into `ShardView::service_us`, so
    /// FastestCompletion ranks by tail latency.
    #[test]
    fn percentile_estimate_drives_dispatch() {
        let (net, x) = net_and_input();
        let fleet = Fleet::of_machines(2, MachineConfig::default())
            .unwrap()
            .with_service_percentile(0.9)
            .with_scheduler(Box::new(crate::engine::FastestCompletion));
        for _ in 0..4 {
            fleet.run(&net, &x, UvMode::On).unwrap();
        }
        let stats = fleet.shard_stats();
        assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 4);
        // Identical shards: the estimates agree wherever both served.
        for s in &stats {
            if s.samples > 0 {
                assert!(s.service_estimate_us > 0.0);
            }
        }
    }

    /// The two estimator builders are mutually exclusive: the last call
    /// decides which estimator `note_served` feeds.
    #[test]
    fn estimator_builders_last_call_wins() {
        let alpha_last = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_service_percentile(0.95)
            .with_service_alpha(0.5);
        assert_eq!(alpha_last.service_percentile(), None);
        for us in [10.0, 10.0, 100.0] {
            alpha_last.note_served(0, &timed_record(us));
        }
        // EWMA(0.5): 10, 10, 55 — a percentile tracker would report a
        // marker height, never this interpolation.
        assert!((alpha_last.shard_stats()[0].service_estimate_us - 55.0).abs() < 1e-9);

        let pct_last = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_service_alpha(0.5)
            .with_service_percentile(0.5);
        assert_eq!(pct_last.service_percentile(), Some(0.5));
        for us in [30.0, 10.0, 20.0] {
            pct_last.note_served(0, &timed_record(us));
        }
        assert_eq!(
            pct_last.shard_stats()[0].service_estimate_us,
            20.0,
            "median of the warmup buffer, not an EWMA"
        );
    }

    #[test]
    fn first_sample_seeds_the_ewma_estimate() {
        let fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_service_alpha(0.1);
        fleet.note_served(0, &timed_record(40.0));
        assert_eq!(fleet.shard_stats()[0].service_estimate_us, 40.0);
    }

    #[test]
    fn stats_account_for_every_served_sample() {
        let (net, x) = net_and_input();
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        for _ in 0..5 {
            fleet.run(&net, &x, UvMode::On).unwrap();
        }
        let stats = fleet.shard_stats();
        assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 5);
        // Serial callers always find shard 0 idle first.
        assert_eq!(stats[0].samples, 5);
        assert!(stats[0].busy_us > 0.0);
        assert_eq!(stats[1], ShardStats::default());
    }

    /// Admission on the live path: a zero-budget gate sheds every call
    /// as a typed `Overloaded` error; an open gate admits and counts.
    #[test]
    fn admission_gate_sheds_on_the_live_path() {
        use crate::engine::admission::{AdmissionDecision, AdmissionGate, BoundedQueues, Priority};

        let (net, x) = net_and_input();
        // waiting(0) >= cap(0): every request sheds immediately.
        struct ShedEverything;
        impl AdmissionGate for ShedEverything {
            fn name(&self) -> &str {
                "shed-everything"
            }
            fn decide(&self, _: Priority, _: usize, _: &[ShardView]) -> AdmissionDecision {
                AdmissionDecision::Shed
            }
        }
        let fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_admission(Box::new(ShedEverything));
        assert_eq!(fleet.admission_name(), Some("shed-everything"));
        assert_eq!(
            fleet.run(&net, &x, UvMode::On).unwrap_err(),
            SparseNnError::Overloaded {
                priority: Priority::High
            }
        );
        assert_eq!(
            fleet
                .run_classified(&net, &x, UvMode::On, Priority::Low)
                .unwrap_err(),
            SparseNnError::Overloaded {
                priority: Priority::Low
            }
        );
        let stats = fleet.admission_stats();
        assert_eq!(stats.shed, [1, 1]);
        assert_eq!(stats.admitted, [0, 0]);
        assert_eq!(fleet.shard_stats()[0].samples, 0, "nothing was served");

        // A generous bounded gate admits serial callers (nothing waits).
        let open = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_admission(Box::new(BoundedQueues::new(4, 4)));
        for _ in 0..3 {
            open.run(&net, &x, UvMode::On).unwrap();
        }
        let stats = open.admission_stats();
        assert_eq!(stats.admitted, [3, 0]);
        assert_eq!(stats.shed, [0, 0]);
        assert_eq!(open.shard_stats()[0].samples, 3);
    }

    /// Without a gate nothing is counted and `run` serves as before.
    #[test]
    fn ungated_fleet_reports_zero_admission_stats() {
        let (net, x) = net_and_input();
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        assert_eq!(fleet.admission_name(), None);
        fleet.run(&net, &x, UvMode::On).unwrap();
        assert_eq!(fleet.admission_stats(), AdmissionStats::default());
    }

    fn batch_inputs(net: &FixedNetwork, b: usize) -> Vec<Vec<Q6_10>> {
        (0..b)
            .map(|s| {
                let x: Vec<f32> = (0..24)
                    .map(|i| {
                        if (i + s) % 3 == 0 {
                            0.0
                        } else {
                            ((i + s) as f32 * 0.17).sin()
                        }
                    })
                    .collect();
                net.quantize_input(&x)
            })
            .collect()
    }

    /// The fleet's batched path returns per-sample records bit-identical
    /// to serial runs and accounts for the dispatch in the batch stats.
    #[test]
    fn batched_fleet_runs_are_bit_identical_and_accounted() {
        let (net, _) = net_and_input();
        let inputs = batch_inputs(&net, 5);
        let fleet = Fleet::of_machines(2, MachineConfig::default()).unwrap();
        assert_eq!(fleet.batch_policy(), BatchPolicy::Immediate);
        let batch = fleet.run_batch(&net, &inputs, UvMode::On).unwrap();
        assert_eq!(batch.batch_size(), 5);
        let single = CycleAccurateBackend::default();
        for (x, rec) in inputs.iter().zip(&batch.records) {
            assert_eq!(rec, &single.run(&net, x, UvMode::On).unwrap());
        }
        assert!(batch.batch_time_us <= batch.serial_time_us() + 1e-9);
        // Immediate policy: the whole batch is one dispatch on shard 0.
        let stats = fleet.shard_stats();
        assert_eq!(stats[0].batches, 1);
        assert_eq!(stats[0].batch_samples, 5);
        assert_eq!(stats[0].max_batch, 5);
        assert!((stats[0].mean_batch() - 5.0).abs() < 1e-12);
        assert_eq!(stats[0].samples, 5);
        assert!((stats[0].busy_us - batch.batch_time_us).abs() < 1e-9);
        assert_eq!(stats[1], ShardStats::default());
        // The service estimate is the amortized per-sample latency.
        assert!((stats[0].service_estimate_us - batch.mean_time_us()).abs() < 1e-9);
    }

    /// A size-capped policy chunks the batch into dispatches of at most
    /// `max` samples.
    #[test]
    fn batch_policy_caps_the_dispatch_size() {
        let (net, _) = net_and_input();
        let inputs = batch_inputs(&net, 7);
        let fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_batch_policy(BatchPolicy::SizeOrDeadline {
                max: 3,
                deadline_us: 100.0,
            });
        let batch = fleet.run_batch(&net, &inputs, UvMode::Off).unwrap();
        assert_eq!(batch.batch_size(), 7);
        let s = fleet.shard_stats()[0];
        assert_eq!(s.batches, 3, "7 samples in chunks of 3: 3+3+1");
        assert_eq!(s.batch_samples, 7);
        assert_eq!(s.max_batch, 3);
        assert!((s.mean_batch() - 7.0 / 3.0).abs() < 1e-12);
    }

    /// Single-sample runs leave the batch accounting untouched.
    #[test]
    fn single_runs_do_not_count_as_batches() {
        let (net, x) = net_and_input();
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        fleet.run(&net, &x, UvMode::On).unwrap();
        let s = fleet.shard_stats()[0];
        assert_eq!(s.samples, 1);
        assert_eq!((s.batches, s.batch_samples, s.max_batch), (0, 0, 0));
        assert_eq!(s.mean_batch(), 0.0);
    }

    /// The batched path consults the admission gate per chunk, counting
    /// every sample the chunk carries.
    #[test]
    fn batched_admission_counts_samples() {
        let (net, _) = net_and_input();
        let inputs = batch_inputs(&net, 4);
        let fleet = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_admission(Box::new(crate::engine::admission::BoundedQueues::new(4, 4)));
        fleet.run_batch(&net, &inputs, UvMode::Off).unwrap();
        assert_eq!(fleet.admission_stats().admitted, [4, 0]);

        struct ShedEverything;
        impl AdmissionGate for ShedEverything {
            fn name(&self) -> &str {
                "shed-everything"
            }
            fn decide(&self, _: Priority, _: usize, _: &[ShardView]) -> AdmissionDecision {
                AdmissionDecision::Shed
            }
        }
        let gated = Fleet::of_machines(1, MachineConfig::default())
            .unwrap()
            .with_admission(Box::new(ShedEverything));
        assert_eq!(
            gated
                .run_batch_classified(&net, &inputs, UvMode::Off, Priority::Low)
                .unwrap_err(),
            SparseNnError::Overloaded {
                priority: Priority::Low
            }
        );
        assert_eq!(gated.admission_stats().shed, [0, 4]);
        assert_eq!(gated.shard_stats()[0].samples, 0);
    }

    #[test]
    fn empty_batch_through_the_fleet_is_a_typed_error() {
        let (net, _) = net_and_input();
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        assert_eq!(
            fleet.run_batch(&net, &[], UvMode::On).unwrap_err(),
            SparseNnError::EmptyBatch
        );
    }

    /// Under the plain-mean default, interleaving batched and single
    /// dispatches keeps the estimate equal to the observed per-sample
    /// mean.
    #[test]
    fn batched_estimate_stays_the_observed_mean() {
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        fleet.note_served(0, &timed_record(10.0));
        fleet.note_served(0, &timed_record(20.0));
        // A 2-sample dispatch at 15 µs total: 7.5 µs amortized each.
        let batch = BatchRunRecord {
            records: vec![timed_record(10.0), timed_record(5.0)],
            batch_time_us: 15.0,
            batch_events: sparsenn_sim::MachineEvents::default(),
            w_reads_serial: 0,
            w_reads_amortized: 0,
        };
        fleet.note_served_batch(0, &batch);
        let s = fleet.shard_stats()[0];
        assert_eq!(s.samples, 4);
        assert!((s.busy_us - 45.0).abs() < 1e-12);
        // Mean of the per-sample service times seen: (10+20+7.5+7.5)/4.
        assert!(
            (s.service_estimate_us - 45.0 / 4.0).abs() < 1e-9,
            "estimate {} must equal the observed per-sample mean",
            s.service_estimate_us
        );
        assert_eq!(s.batches, 1);
        assert_eq!(s.max_batch, 2);
    }

    #[test]
    fn failed_runs_do_not_count_as_served() {
        let (net, _) = net_and_input();
        let fleet = Fleet::of_machines(1, MachineConfig::default()).unwrap();
        let short = vec![Q6_10::ZERO; 3];
        assert!(fleet.run(&net, &short, UvMode::On).is_err());
        assert_eq!(fleet.shard_stats()[0], ShardStats::default());
        // And the shard went back to the pool: a good run still succeeds.
        let (net, x) = net_and_input();
        assert!(fleet.run(&net, &x, UvMode::On).is_ok());
        assert_eq!(fleet.shard_stats()[0].samples, 1);
    }
}
