//! Admission control: who gets into the fleet, and at what fidelity.
//!
//! A serving system at its modelled capacity has exactly three options for
//! the next arriving request: queue it (and pay the latency), serve a
//! cheaper **degraded** answer, or **shed** it outright. Queueing forever
//! is the one option that helps nobody — under sustained overload every
//! queued request eventually misses its SLO, so unbounded queues convert
//! an overload into a full outage. An [`AdmissionGate`] makes the choice
//! explicit, per [`Priority`] class, *before* a request touches a shard.
//!
//! The trait is shared the same way [`Scheduler`](super::Scheduler) is:
//! the live [`Fleet`](super::Fleet) consults it on every
//! [`run`](super::InferenceBackend::run) (via
//! [`Fleet::with_admission`](super::Fleet::with_admission)), and the
//! `sparsenn-frontend` virtual-time simulator consults the identical
//! trait object when replaying traffic — a gate tuned against simulated
//! overload sweeps drops into real serving unchanged.

use crate::engine::scheduler::ShardView;

/// Request priority class.
///
/// Two classes keep the policy space legible: `High` is traffic an SLO is
/// written against (interactive users); `Low` is deferrable work (batch
/// backfills, prefetch) that exists to be shed first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; shed last.
    High,
    /// Deferrable traffic; degraded or shed first under overload.
    Low,
}

impl Priority {
    /// Both classes, `High` first — iteration order for per-class stats.
    pub const ALL: [Priority; 2] = [Priority::High, Priority::Low];

    /// Dense index for per-class arrays: `High` → 0, `Low` → 1.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Low => 1,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Low => "low",
        })
    }
}

/// What the gate decided for one arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Serve at full fidelity.
    Admit,
    /// Serve a cheaper answer (the caller decides what "cheaper" means —
    /// the frontend simulator models it as a service-time discount; the
    /// live fleet serves at full fidelity but records the intent).
    Degrade,
    /// Reject now, so the caller can fail fast instead of queueing into
    /// a missed deadline.
    Shed,
}

/// An admission policy over the fleet's instantaneous state.
///
/// Implementations must be `Send + Sync`: the live fleet consults one
/// gate from every worker thread.
pub trait AdmissionGate: Send + Sync {
    /// Policy name (shows up in reports and sweep labels).
    fn name(&self) -> &str;

    /// Decides the fate of one arriving request of class `class`, given
    /// each shard's [`ShardView`] and the number of *same-class* requests
    /// already waiting (queued but not in service) fleet-wide.
    fn decide(
        &self,
        class: Priority,
        waiting_same_class: usize,
        views: &[ShardView],
    ) -> AdmissionDecision;
}

/// The null gate: every request is admitted. Unbounded queueing — the
/// baseline the overload sweeps exist to indict.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitAll;

impl AdmissionGate for AdmitAll {
    fn name(&self) -> &str {
        "admit-all"
    }

    fn decide(&self, _: Priority, _: usize, _: &[ShardView]) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
}

/// Bounded per-class queues with optional low-priority degradation.
///
/// A request is shed when its class already has `cap` requests waiting;
/// before that point, low-priority requests are degraded once their
/// waiting count reaches `degrade_low_beyond` (when set). High-priority
/// traffic is never degraded — its cap should be sized so it is rarely
/// shed either; the whole point of the split is that low-priority
/// traffic absorbs the overload first.
#[derive(Clone, Copy, Debug)]
pub struct BoundedQueues {
    /// Maximum waiting high-priority requests before shedding.
    pub high_cap: usize,
    /// Maximum waiting low-priority requests before shedding.
    pub low_cap: usize,
    /// Waiting low-priority count at which low traffic degrades instead
    /// of serving at full fidelity (`None`: never degrade, only shed).
    pub degrade_low_beyond: Option<usize>,
}

impl BoundedQueues {
    /// A gate with the given per-class caps and no degradation tier.
    pub fn new(high_cap: usize, low_cap: usize) -> Self {
        Self {
            high_cap,
            low_cap,
            degrade_low_beyond: None,
        }
    }

    /// Adds a degradation tier: low-priority requests arriving with at
    /// least `waiting` of their class already queued are served degraded.
    pub fn degrade_low_beyond(mut self, waiting: usize) -> Self {
        self.degrade_low_beyond = Some(waiting);
        self
    }

    fn cap(&self, class: Priority) -> usize {
        match class {
            Priority::High => self.high_cap,
            Priority::Low => self.low_cap,
        }
    }
}

impl AdmissionGate for BoundedQueues {
    fn name(&self) -> &str {
        "bounded"
    }

    fn decide(
        &self,
        class: Priority,
        waiting_same_class: usize,
        _views: &[ShardView],
    ) -> AdmissionDecision {
        if waiting_same_class >= self.cap(class) {
            return AdmissionDecision::Shed;
        }
        if class == Priority::Low {
            if let Some(beyond) = self.degrade_low_beyond {
                if waiting_same_class >= beyond {
                    return AdmissionDecision::Degrade;
                }
            }
        }
        AdmissionDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_dense_and_ordered() {
        assert_eq!(Priority::High.index(), 0);
        assert_eq!(Priority::Low.index(), 1);
        assert_eq!(Priority::ALL[0], Priority::High);
        assert_eq!(format!("{}/{}", Priority::High, Priority::Low), "high/low");
    }

    #[test]
    fn admit_all_never_sheds() {
        for class in Priority::ALL {
            assert_eq!(
                AdmitAll.decide(class, usize::MAX, &[]),
                AdmissionDecision::Admit
            );
        }
        assert_eq!(AdmitAll.name(), "admit-all");
    }

    #[test]
    fn bounded_queues_shed_at_their_caps() {
        let gate = BoundedQueues::new(10, 4);
        assert_eq!(
            gate.decide(Priority::High, 9, &[]),
            AdmissionDecision::Admit
        );
        assert_eq!(
            gate.decide(Priority::High, 10, &[]),
            AdmissionDecision::Shed
        );
        assert_eq!(gate.decide(Priority::Low, 3, &[]), AdmissionDecision::Admit);
        assert_eq!(gate.decide(Priority::Low, 4, &[]), AdmissionDecision::Shed);
        assert_eq!(gate.name(), "bounded");
    }

    #[test]
    fn degrade_tier_applies_only_to_low_priority() {
        let gate = BoundedQueues::new(10, 8).degrade_low_beyond(2);
        assert_eq!(gate.decide(Priority::Low, 1, &[]), AdmissionDecision::Admit);
        assert_eq!(
            gate.decide(Priority::Low, 2, &[]),
            AdmissionDecision::Degrade
        );
        assert_eq!(
            gate.decide(Priority::Low, 7, &[]),
            AdmissionDecision::Degrade
        );
        assert_eq!(gate.decide(Priority::Low, 8, &[]), AdmissionDecision::Shed);
        // High priority passes straight through the degrade band.
        assert_eq!(
            gate.decide(Priority::High, 5, &[]),
            AdmissionDecision::Admit
        );
    }
}
