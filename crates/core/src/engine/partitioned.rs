//! Model-parallel execution: one network served by several
//! NoC-connected cycle-accurate chips.
//!
//! A [`PartitionedMachine`] is the execution side of
//! [`sparsenn_partition`]: given a [`PartitionPlan`] that tiles each
//! layer's output rows across chips, it runs every tile on an unmodified
//! cycle-accurate [`Machine`], broadcasts the (sparse) input activations
//! to all chips and gathers the per-chip output slices over a chip-level
//! interconnect costed by [`InterChipConfig`]. This is how the serving
//! stack holds networks bigger than one chip's 8 MB W memory.
//!
//! **Determinism and bit-exactness.** Row arithmetic is row-local: a
//! chip computing row `r` of a layer performs exactly the operand-level
//! work the single big machine would (same zero-skipping, same
//! full-precision accumulate, same round-to-nearest-even writeback), and
//! a tiled predictor carries the whole V factor, so the quantized `V·a`
//! — and hence every predictor bit — matches too. The gathered outputs
//! and masks are therefore **bit-identical** to a single-chip
//! [`Machine`] run for any network that fits one chip (the oracle the
//! integration tests enforce).
//!
//! **Time and energy accounting.** Per layer, under the default
//! [`PipelineMode::Serialized`] schedule:
//!
//! * `time_us` is the modelled critical path — the input broadcast, plus
//!   the *slowest* chip's tile (chips run in parallel), plus the output
//!   gather, each term on its own clock (chip cycles at the machine's
//!   clock, transfer cycles at the interconnect's link clock);
//! * `cycles`/`vu_cycles` carry the slowest chip's counts (the latency
//!   view), while [`LayerRecord::events`] *sums* every chip's activity
//!   and the interconnect's flit-hops (the energy view: all silicon
//!   toggles, wherever it is), so batch power estimates price total
//!   multi-chip activity.
//!
//! **Wavefront pipelining** ([`PipelineMode::Wavefront`]) replaces the
//! serialized stage chain with a virtual-clock wavefront executor: each
//! chip's output slice starts crossing the fabric as its rows become
//! final (the [`LayerRun::row_ready`](sparsenn_sim::LayerRun::row_ready)
//! availability profile from the staged machine core), the root feeds
//! each gathered slice straight into the downward broadcast, and every
//! chip starts layer *l+1* the moment the last slice of layer *l* lands
//! on it — so inter-chip communication overlaps the compute of slower
//! chips instead of serializing behind the whole layer. Pipelining
//! reorders *time only*: outputs, masks and energy/event sums are
//! bit-identical across both modes (the same tile simulations run; only
//! the layer `time_us` differs), wavefront latency is never above
//! serialized latency, and never below the
//! [`InterChipConfig::free`]-link lower bound — the invariants the
//! `prop_pipeline` suite pins down.
//!
//! Only nonzero activations cross chips — the interconnect extends the
//! machine's input-sparsity skipping to the fabric, so UV-predicted
//! output sparsity also cuts inter-chip traffic.

use crate::engine::backends::{validate_shapes, InferenceBackend};
use crate::engine::record::{LayerRecord, RunRecord};
use crate::error::SparseNnError;
use sparsenn_model::fixedpoint::{FixedMatrix, FixedNetwork, FixedPredictor, UvMode};
use sparsenn_numeric::Q6_10;
use sparsenn_obs::{track, AttrKey, Span, SpanKind, TraceSink};
use sparsenn_partition::{
    plan as plan_network, InterChipConfig, PartitionPlan, PipelineMode, SliceTransfer,
};
use sparsenn_sim::{LayerRun, Machine, MachineConfig, MachineEvents};
use std::sync::{Arc, Mutex};

/// Where a traced run's spans go and how they are placed: every span is
/// stamped with `trace_id` (correlating chip work to the request that
/// caused it) and offset by `t0_us` (the request's position on the
/// caller's virtual clock — the machine's own clock starts at 0 per
/// run).
struct TraceCtx<'a> {
    sink: &'a dyn TraceSink,
    trace_id: u64,
    t0_us: f64,
}

impl TraceCtx<'_> {
    fn emit(&self, span: Span) {
        self.sink.record(span);
    }
}

/// Emits one chip's two phase spans for one layer — the vector-unit
/// (predictor) pass, then the W read/MAC pass, back to back on the
/// chip's lane: the same `vu_cycles`/`w_cycles` split the staged machine
/// core reports, with the chip's activity counters as span attributes.
fn emit_chip_spans(
    ctx: &TraceCtx<'_>,
    cfg: &MachineConfig,
    layer: usize,
    chip: usize,
    start_us: f64,
    run: &LayerRun,
) {
    let vu_end_us = start_us + cfg.time_us(run.vu_cycles);
    let end_us = start_us + cfg.time_us(run.cycles);
    let tid = chip as u32 + 1;
    ctx.emit(
        Span::new(
            ctx.trace_id,
            SpanKind::Vu,
            track::MACHINE,
            tid,
            ctx.t0_us + start_us,
            ctx.t0_us + vu_end_us,
        )
        .attr(AttrKey::Layer, layer as u64)
        .attr(AttrKey::Chip, chip as u64)
        .attr(AttrKey::VuCycles, run.vu_cycles),
    );
    ctx.emit(
        Span::new(
            ctx.trace_id,
            SpanKind::W,
            track::MACHINE,
            tid,
            ctx.t0_us + vu_end_us,
            ctx.t0_us + end_us,
        )
        .attr(AttrKey::Layer, layer as u64)
        .attr(AttrKey::WCycles, run.w_cycles)
        .attr(AttrKey::WReads, run.events.w_reads)
        .attr(AttrKey::Macs, run.events.macs),
    );
}

/// One chip's share of one layer: its global row indices, its weight
/// tile, and (for predicted layers) its predictor tile.
struct ChipTile {
    rows: Vec<usize>,
    w: FixedMatrix,
    predictor: Option<FixedPredictor>,
}

/// Tiles cut for a network other than the planned one (same shapes,
/// different weights) — cached so serving a batch re-cuts once, not
/// once per sample. Single entry: alternating between several foreign
/// networks re-cuts on each switch.
struct ForeignTiles {
    net: FixedNetwork,
    tiles: Arc<Vec<Vec<ChipTile>>>,
}

/// Several cycle-accurate chips serving one (possibly oversized) network
/// under a [`PartitionPlan`]. See the [module docs](self) for the
/// execution, determinism and accounting model.
///
/// # Example
///
/// ```
/// use sparsenn_core::engine::{InferenceBackend, PartitionedMachine};
/// use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
/// use sparsenn_core::model::Mlp;
/// use sparsenn_core::linalg::init::seeded_rng;
/// use sparsenn_core::partition::InterChipConfig;
/// use sparsenn_core::sim::MachineConfig;
///
/// let net = FixedNetwork::from_mlp(&Mlp::random(&[32, 64, 10], &mut seeded_rng(3)));
/// let chip = MachineConfig::default();
/// let pm = PartitionedMachine::new(&net, chip, 2, InterChipConfig::default()).unwrap();
/// let x = net.quantize_input(&vec![0.25f32; 32]);
/// let record = pm.run(&net, &x, UvMode::Off).unwrap();
/// assert_eq!(record.layers.len(), 2);
/// ```
pub struct PartitionedMachine {
    chip: Machine,
    interchip: InterChipConfig,
    pipeline: PipelineMode,
    plan: PartitionPlan,
    /// The network the tiles were cut from; `run` uses the precomputed
    /// tiles only when the served network is this exact network.
    planned: FixedNetwork,
    tiles: Vec<Vec<ChipTile>>,
    /// Lazily-cut tiles for a *different* same-shape network being
    /// served through this backend.
    foreign: Mutex<Option<ForeignTiles>>,
    name: String,
}

impl std::fmt::Debug for PartitionedMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedMachine")
            .field("name", &self.name)
            .field("chips", &self.plan.chips())
            .finish_non_exhaustive()
    }
}

impl PartitionedMachine {
    /// Plans `net` over `chips` chips of configuration `chip` and builds
    /// the backend.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::WMemoryOverflow`] when even a best split of some
    /// layer overflows one chip, [`SparseNnError::LayerDoesNotFit`] when
    /// a layer's input width exceeds one chip's register files, and
    /// [`SparseNnError::Partition`] for zero chips.
    pub fn new(
        net: &FixedNetwork,
        chip: MachineConfig,
        chips: usize,
        interchip: InterChipConfig,
    ) -> Result<Self, SparseNnError> {
        Self::with_pipeline(net, chip, chips, interchip, PipelineMode::Serialized)
    }

    /// Like [`new`](Self::new), with an explicit execution schedule —
    /// [`PipelineMode::Wavefront`] overlaps inter-chip communication
    /// with compute (see the [module docs](self)); outputs, masks and
    /// event sums are bit-identical across modes.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_pipeline(
        net: &FixedNetwork,
        chip: MachineConfig,
        chips: usize,
        interchip: InterChipConfig,
        pipeline: PipelineMode,
    ) -> Result<Self, SparseNnError> {
        let plan = plan_network(net, &chip, chips)?;
        Self::from_plan_pipelined(net, chip, plan, interchip, pipeline)
    }

    /// Builds the backend from an existing plan (e.g. one reloaded from
    /// a plan file next to a checkpoint), on the serialized schedule.
    /// The plan is re-validated against the chip configuration and
    /// matched against the network.
    ///
    /// # Errors
    ///
    /// The plan's validation errors (see
    /// [`PartitionPlan::validate`]), or [`SparseNnError::Partition`]
    /// when the plan's layer shapes do not match `net`.
    pub fn from_plan(
        net: &FixedNetwork,
        chip: MachineConfig,
        plan: PartitionPlan,
        interchip: InterChipConfig,
    ) -> Result<Self, SparseNnError> {
        Self::from_plan_pipelined(net, chip, plan, interchip, PipelineMode::Serialized)
    }

    /// [`from_plan`](Self::from_plan) with an explicit execution
    /// schedule.
    ///
    /// # Errors
    ///
    /// As for [`from_plan`](Self::from_plan).
    pub fn from_plan_pipelined(
        net: &FixedNetwork,
        chip: MachineConfig,
        plan: PartitionPlan,
        interchip: InterChipConfig,
        pipeline: PipelineMode,
    ) -> Result<Self, SparseNnError> {
        plan.validate(&chip)?;
        if !plan.matches(net) {
            return Err(SparseNnError::Partition {
                message: "partition plan layer shapes do not match the network".into(),
            });
        }
        let tiles = cut_tiles(net, &plan);
        let name = match pipeline {
            PipelineMode::Serialized => {
                format!("partitioned({} chips x cycle-accurate)", plan.chips())
            }
            PipelineMode::Wavefront => format!(
                "partitioned({} chips x cycle-accurate, wavefront)",
                plan.chips()
            ),
        };
        Ok(Self {
            chip: Machine::new(chip),
            interchip,
            pipeline,
            plan,
            planned: net.clone(),
            tiles,
            foreign: Mutex::new(None),
            name,
        })
    }

    /// The plan this backend executes.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// The chip-level interconnect cost model.
    pub fn interchip(&self) -> &InterChipConfig {
        &self.interchip
    }

    /// The execution schedule this backend times layers with.
    pub fn pipeline(&self) -> PipelineMode {
        self.pipeline
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.plan.chips()
    }

    /// Runs `net` exactly like [`run`](InferenceBackend::run) while
    /// emitting per-layer, per-chip trace spans to `sink`: the input
    /// broadcast, each chip's VU and W passes (with cycle and activity
    /// counters as attributes), and the output gather — placed on the
    /// caller's virtual clock at `t0_us` and correlated to the request
    /// by `trace_id`. With a disabled sink this *is* `run`: no span is
    /// built, and the record is bit-identical either way.
    pub fn run_traced(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
        trace_id: u64,
        t0_us: f64,
        sink: &dyn TraceSink,
    ) -> Result<RunRecord, SparseNnError> {
        if !sink.enabled() {
            return self.run_inner(net, input, mode, None);
        }
        let ctx = TraceCtx {
            sink,
            trace_id,
            t0_us,
        };
        self.run_inner(net, input, mode, Some(&ctx))
    }

    /// Runs the layers of `net` over `tiles`, folding per-chip runs into
    /// per-layer records (summed events; latency per the configured
    /// [`PipelineMode`]). Arithmetic is identical in both modes — the
    /// schedule only decides how the per-chip runs and their transfers
    /// are placed on the virtual clock.
    fn run_tiled(
        &self,
        net: &FixedNetwork,
        tiles: &[Vec<ChipTile>],
        input: &[Q6_10],
        mode: UvMode,
        trace: Option<&TraceCtx<'_>>,
    ) -> Result<Vec<LayerRecord>, SparseNnError> {
        let chips = self.plan.chips();
        let cfg = self.chip.config();
        let icc = &self.interchip;
        let mut acts = input.to_vec();
        let mut layers = Vec::with_capacity(net.num_layers());
        // Serialized-schedule clock for trace placement only: layer
        // stages are chained end to end, so spans sit at the cumulative
        // offset (the timing model itself needs no cursor).
        let mut serial_cursor_us = 0.0f64;
        // Wavefront virtual clock: when each chip finishes its previous
        // tile, when the current layer's input has fully landed on the
        // chips, and the previous layer's gather-complete milestone
        // (per-layer `time_us` is the span between milestones, so the
        // layer times sum to the overlapped end-to-end critical path).
        let mut chip_free_us = vec![0.0f64; chips];
        let mut input_ready_us = 0.0f64;
        let mut prev_end_us = 0.0f64;
        for (l, layer_tiles) in tiles.iter().enumerate() {
            let is_hidden = l + 1 < net.num_layers();
            let rows = net.layers()[l].rows();
            let nnz_in = acts.iter().filter(|v| !v.is_zero()).count();
            let broadcast_cycles = icc.broadcast_cycles(chips, nnz_in);
            let mut flit_hops = icc.broadcast_flit_hops(chips, nnz_in);
            if l == 0 {
                // The host broadcasts the sample input whole before any
                // chip can start — common to both schedules.
                input_ready_us = icc.time_us(broadcast_cycles);
            }

            let predicted = mode == UvMode::On && is_hidden && l < net.predictors().len();
            let mut output = vec![Q6_10::ZERO; rows];
            let mut mask = predicted.then(|| vec![false; rows]);
            let mut events = MachineEvents::default();
            // The whole layer is paced by the slowest chip; the phase
            // breakdown is that chip's own vu/w split (mixing maxima
            // from different chips would describe no chip at all).
            let (mut max_cycles, mut crit_vu) = (0u64, 0u64);
            // Per-chip runs are retained only for the wavefront clock;
            // the serialized schedule needs nothing past the fold above.
            let keep_runs = self.pipeline == PipelineMode::Wavefront;
            let mut runs: Vec<Option<LayerRun>> = Vec::with_capacity(chips);
            // Serialized chip spans start after this layer's broadcast;
            // wavefront spans are placed later, when each chip's actual
            // start is known.
            let serial_start_us = serial_cursor_us + icc.time_us(broadcast_cycles);
            for (c, tile) in layer_tiles.iter().enumerate() {
                if tile.rows.is_empty() {
                    runs.push(None);
                    continue;
                }
                let run = self
                    .chip
                    .try_run_layer(&tile.w, tile.predictor.as_ref(), &acts, is_hidden, mode)
                    .map_err(|e| relabel_layer(e.into(), l))?;
                if let (Some(ctx), PipelineMode::Serialized) = (trace, self.pipeline) {
                    emit_chip_spans(ctx, cfg, l, c, serial_start_us, &run);
                }
                for (local, &global) in tile.rows.iter().enumerate() {
                    output[global] = run.output[local];
                }
                if let (Some(mask), Some(tile_mask)) = (&mut mask, &run.mask) {
                    for (local, &global) in tile.rows.iter().enumerate() {
                        mask[global] = tile_mask[local];
                    }
                }
                if run.cycles > max_cycles {
                    max_cycles = run.cycles;
                    crit_vu = run.vu_cycles;
                }
                events.merge(&run.events);
                runs.push(keep_runs.then_some(run));
            }

            let nnz_out = output.iter().filter(|v| !v.is_zero()).count();
            let gather_cycles = icc.gather_cycles(chips, nnz_out);
            flit_hops += icc.gather_flit_hops(chips, nnz_out);
            events.interchip_flit_hops += flit_hops;

            let time_us = match self.pipeline {
                // Stage chain end-to-end: broadcast, slowest chip,
                // gather — the PR-4 model, untouched.
                PipelineMode::Serialized => {
                    let span =
                        cfg.time_us(max_cycles) + icc.time_us(broadcast_cycles + gather_cycles);
                    if let Some(ctx) = trace {
                        ctx.emit(
                            Span::new(
                                ctx.trace_id,
                                SpanKind::Broadcast,
                                track::MACHINE,
                                track::BROADCAST,
                                ctx.t0_us + serial_cursor_us,
                                ctx.t0_us + serial_start_us,
                            )
                            .attr(AttrKey::Layer, l as u64)
                            .attr(AttrKey::NnzIn, nnz_in as u64),
                        );
                        let compute_end_us = serial_start_us + cfg.time_us(max_cycles);
                        ctx.emit(
                            Span::new(
                                ctx.trace_id,
                                SpanKind::Gather,
                                track::MACHINE,
                                track::GATHER,
                                ctx.t0_us + compute_end_us,
                                ctx.t0_us + compute_end_us + icc.time_us(gather_cycles),
                            )
                            .attr(AttrKey::Layer, l as u64)
                            .attr(AttrKey::NnzOut, nnz_out as u64),
                        );
                    }
                    serial_cursor_us += span;
                    span
                }
                PipelineMode::Wavefront => {
                    // Each chip starts the moment its input landed and
                    // it is free; its slice enters the fabric value by
                    // value as rows become final (the row_ready
                    // profile).
                    if let Some(ctx) = trace {
                        if l == 0 {
                            ctx.emit(
                                Span::new(
                                    ctx.trace_id,
                                    SpanKind::Broadcast,
                                    track::MACHINE,
                                    track::BROADCAST,
                                    ctx.t0_us,
                                    ctx.t0_us + input_ready_us,
                                )
                                .attr(AttrKey::Layer, 0u64)
                                .attr(AttrKey::NnzIn, nnz_in as u64),
                            );
                        }
                    }
                    let mut slices = Vec::with_capacity(chips);
                    for (c, run) in runs.iter().enumerate() {
                        let Some(run) = run else { continue };
                        let start = input_ready_us.max(chip_free_us[c]);
                        if let Some(ctx) = trace {
                            emit_chip_spans(ctx, cfg, l, c, start, run);
                        }
                        chip_free_us[c] = start + cfg.time_us(run.cycles);
                        slices.push(SliceTransfer {
                            ready_us: run
                                .row_ready
                                .iter()
                                .zip(&run.output)
                                .filter(|(_, v)| !v.is_zero())
                                .map(|(&t, _)| start + cfg.time_us(t))
                                .collect(),
                            decided_us: start + cfg.time_us(run.last_ready()),
                        });
                    }
                    let arrivals = icc.gather_schedule(chips, &slices);
                    // Gather complete = this layer's milestone.
                    let end = arrivals.iter().copied().fold(prev_end_us, f64::max);
                    if let Some(ctx) = trace {
                        // The gather lane is busy from the first value
                        // entering the fabric to the last arrival.
                        let first_us = slices
                            .iter()
                            .flat_map(|s| s.ready_us.iter().copied())
                            .fold(end, f64::min);
                        ctx.emit(
                            Span::new(
                                ctx.trace_id,
                                SpanKind::Gather,
                                track::MACHINE,
                                track::GATHER,
                                ctx.t0_us + first_us,
                                ctx.t0_us + end,
                            )
                            .attr(AttrKey::Layer, l as u64)
                            .attr(AttrKey::NnzOut, nnz_out as u64),
                        );
                    }
                    if is_hidden {
                        // The root streams each gathered slice straight
                        // into the downward broadcast; the next layer
                        // starts once the last slice lands.
                        let down: Vec<SliceTransfer> = slices
                            .iter()
                            .zip(&arrivals)
                            .map(|(s, &a)| SliceTransfer::ready_at(a, s.values()))
                            .collect();
                        let lands = icc.broadcast_schedule(chips, &down);
                        input_ready_us = lands.iter().copied().fold(end, f64::max);
                        if let Some(ctx) = trace {
                            // Slices stream downward as they arrive at
                            // the root, so the lane is busy from the
                            // first arrival to the last landing.
                            let first_us = arrivals.iter().copied().fold(input_ready_us, f64::min);
                            ctx.emit(
                                Span::new(
                                    ctx.trace_id,
                                    SpanKind::Broadcast,
                                    track::MACHINE,
                                    track::BROADCAST,
                                    ctx.t0_us + first_us,
                                    ctx.t0_us + input_ready_us,
                                )
                                .attr(AttrKey::Layer, l as u64 + 1)
                                .attr(AttrKey::NnzIn, nnz_out as u64),
                            );
                        }
                    }
                    let span = end - prev_end_us;
                    prev_end_us = end;
                    span
                }
            };
            layers.push(LayerRecord {
                output: output.clone(),
                mask,
                cycles: max_cycles,
                vu_cycles: crit_vu,
                w_cycles: max_cycles - crit_vu,
                time_us,
                events,
            });
            acts = output;
        }
        Ok(layers)
    }
}

/// Re-labels a per-tile error (reported as layer 0 by the stand-alone
/// layer run) with the network-level layer index.
fn relabel_layer(e: SparseNnError, l: usize) -> SparseNnError {
    match e {
        SparseNnError::LayerDoesNotFit { reason, .. } => {
            SparseNnError::LayerDoesNotFit { layer: l, reason }
        }
        SparseNnError::WMemoryOverflow {
            words, capacity, ..
        } => SparseNnError::WMemoryOverflow {
            layer: l,
            words,
            capacity,
        },
        other => other,
    }
}

/// Cuts per-chip weight and predictor tiles for every layer of `net`
/// under `plan` (which must match the network's shapes).
fn cut_tiles(net: &FixedNetwork, plan: &PartitionPlan) -> Vec<Vec<ChipTile>> {
    plan.layers()
        .iter()
        .enumerate()
        .map(|(l, layer)| {
            let w = &net.layers()[l];
            let is_hidden = l + 1 < net.num_layers();
            let predictor = if is_hidden {
                net.predictors().get(l)
            } else {
                None
            };
            layer
                .tiles
                .iter()
                .map(|rows| ChipTile {
                    rows: rows.clone(),
                    w: w.select_rows(rows),
                    predictor: predictor.map(|p| p.select_rows(rows)),
                })
                .collect()
        })
        .collect()
}

impl InferenceBackend for PartitionedMachine {
    fn name(&self) -> &str {
        &self.name
    }

    /// The per-chip machine configuration (every chip is identical).
    /// Batch summaries price events on it; because a partitioned
    /// record's events *sum* all chips' activity plus the interconnect's
    /// flit-hops, the energy estimate covers the whole multi-chip
    /// system.
    fn machine_config(&self) -> Option<&MachineConfig> {
        Some(self.chip.config())
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        self.run_inner(net, input, mode, None)
    }
}

impl PartitionedMachine {
    /// The shared body of [`run`](InferenceBackend::run) and
    /// [`run_traced`](Self::run_traced) — tile resolution (planned or
    /// cached foreign cut) plus the tiled executor.
    fn run_inner(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
        trace: Option<&TraceCtx<'_>>,
    ) -> Result<RunRecord, SparseNnError> {
        validate_shapes(net, input)?;
        let layers = if *net == self.planned {
            self.run_tiled(net, &self.tiles, input, mode, trace)?
        } else {
            // A different network than the one planned for: the plan
            // still applies if the shapes agree (capacity depends only
            // on shape), so cut tiles from the network actually being
            // served — never silently compute with stale weights. The
            // cut is cached, so a batch over a foreign network pays it
            // once, not once per sample.
            if !self.plan.matches(net) {
                return Err(SparseNnError::Partition {
                    message: "served network does not match the partition plan's layer shapes"
                        .into(),
                });
            }
            let tiles = {
                let mut cache = self.foreign.lock().unwrap_or_else(|e| e.into_inner());
                match &*cache {
                    Some(f) if f.net == *net => Arc::clone(&f.tiles),
                    _ => {
                        let tiles = Arc::new(cut_tiles(net, &self.plan));
                        *cache = Some(ForeignTiles {
                            net: net.clone(),
                            tiles: Arc::clone(&tiles),
                        });
                        tiles
                    }
                }
            };
            self.run_tiled(net, &tiles, input, mode, trace)?
        };
        Ok(RunRecord {
            backend: self.name.clone(),
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::backends::CycleAccurateBackend;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn net_and_input(dims: &[usize], rank: usize, seed: u64) -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(dims, &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..dims[0])
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.29).sin().abs()
                }
            })
            .collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn oracle_bit_identical_to_single_chip_machine() {
        let (net, x) = net_and_input(&[36, 96, 48, 10], 4, 11);
        let cfg = MachineConfig::default();
        let single = CycleAccurateBackend::with_config(cfg);
        for chips in [1usize, 2, 4] {
            let pm = PartitionedMachine::new(&net, cfg, chips, InterChipConfig::default())
                .expect("plannable");
            for mode in [UvMode::Off, UvMode::On] {
                let want = single.run(&net, &x, mode).unwrap();
                let got = pm.run(&net, &x, mode).unwrap();
                assert_eq!(got.layers.len(), want.layers.len());
                for (l, (g, w)) in got.layers.iter().zip(&want.layers).enumerate() {
                    assert_eq!(g.output, w.output, "{chips} chips, layer {l}, {mode:?}");
                    assert_eq!(g.mask, w.mask, "{chips} chips, layer {l} mask, {mode:?}");
                }
            }
        }
    }

    #[test]
    fn one_chip_with_free_links_reproduces_the_machine_record_exactly() {
        let (net, x) = net_and_input(&[32, 64, 10], 3, 5);
        let cfg = MachineConfig::default();
        let pm = PartitionedMachine::new(&net, cfg, 1, InterChipConfig::free()).unwrap();
        let single = CycleAccurateBackend::with_config(cfg);
        let a = pm.run(&net, &x, UvMode::On).unwrap();
        let b = single.run(&net, &x, UvMode::On).unwrap();
        // One chip holds every row: same cycles, same time, same events.
        for (g, w) in a.layers.iter().zip(&b.layers) {
            assert_eq!(g.cycles, w.cycles);
            assert_eq!(g.events, w.events);
            assert!((g.time_us - w.time_us).abs() < 1e-12);
        }
    }

    #[test]
    fn oversized_network_runs_on_two_chips_with_comm_in_the_record() {
        // 512×784 needs 6272 words/PE against a 4096-word chip.
        let chip = MachineConfig {
            w_mem_bytes: 8 * 1024,
            ..MachineConfig::default()
        };
        let (net, x) = net_and_input(&[784, 512, 10], 4, 7);
        assert!(matches!(
            CycleAccurateBackend::with_config(chip).run(&net, &x, UvMode::On),
            Err(SparseNnError::WMemoryOverflow { layer: 0, .. })
        ));
        assert!(matches!(
            PartitionedMachine::new(&net, chip, 1, InterChipConfig::default()),
            Err(SparseNnError::WMemoryOverflow { layer: 0, .. })
        ));
        let pm = PartitionedMachine::new(&net, chip, 2, InterChipConfig::default()).unwrap();
        let record = pm.run(&net, &x, UvMode::On).unwrap();
        assert!(record.time_us() > 0.0);
        assert!(record.total_events().interchip_flit_hops > 0);
        // Communication is part of the modelled latency: free links are
        // strictly faster.
        let free = PartitionedMachine::new(&net, chip, 2, InterChipConfig::free()).unwrap();
        let free_record = free.run(&net, &x, UvMode::On).unwrap();
        assert_eq!(
            free_record.output(),
            record.output(),
            "comm never changes bits"
        );
        assert!(free_record.time_us() < record.time_us());
        assert_eq!(free_record.total_events().interchip_flit_hops, 0);
    }

    #[test]
    fn serving_a_different_same_shape_network_uses_its_weights() {
        let (net_a, x) = net_and_input(&[24, 48, 10], 3, 1);
        let (net_b, _) = net_and_input(&[24, 48, 10], 3, 2);
        let cfg = MachineConfig::default();
        let pm = PartitionedMachine::new(&net_a, cfg, 2, InterChipConfig::default()).unwrap();
        let single = CycleAccurateBackend::with_config(cfg);
        let got = pm.run(&net_b, &x, UvMode::Off).unwrap();
        let want = single.run(&net_b, &x, UvMode::Off).unwrap();
        assert_eq!(got.output(), want.output(), "must serve the passed network");
        // Repeat runs hit the foreign-tile cache and stay correct, as
        // does switching back to the planned network and out again.
        assert_eq!(
            pm.run(&net_b, &x, UvMode::Off).unwrap().output(),
            want.output()
        );
        assert_eq!(
            pm.run(&net_a, &x, UvMode::Off).unwrap().output(),
            single.run(&net_a, &x, UvMode::Off).unwrap().output()
        );
        assert_eq!(
            pm.run(&net_b, &x, UvMode::Off).unwrap().output(),
            want.output()
        );
        // A different *shape* is rejected, not mis-served.
        let (net_c, _) = net_and_input(&[24, 32, 10], 3, 3);
        assert!(matches!(
            pm.run(&net_c, &x, UvMode::Off),
            Err(SparseNnError::Partition { .. })
        ));
    }

    #[test]
    fn events_sum_chips_while_cycles_take_the_critical_path() {
        let (net, x) = net_and_input(&[48, 128, 10], 4, 9);
        let cfg = MachineConfig::default();
        let single = CycleAccurateBackend::with_config(cfg)
            .run(&net, &x, UvMode::Off)
            .unwrap();
        let pm = PartitionedMachine::new(&net, cfg, 4, InterChipConfig::default()).unwrap();
        let got = pm.run(&net, &x, UvMode::Off).unwrap();
        // Workload counters are conserved: the same MACs and W reads
        // happen, just spread over chips.
        assert_eq!(
            got.total_events().w_reads,
            single.total_events().w_reads,
            "row tiling conserves W traffic"
        );
        assert_eq!(got.total_events().macs, single.total_events().macs);
        // Each chip computes a quarter of the rows over the same input:
        // its W phase is shorter than the big machine's.
        assert!(got.layers[0].cycles <= single.layers[0].cycles);
    }

    #[test]
    fn wavefront_reorders_time_never_arithmetic() {
        // 512×784 overflows the shrunken chip: a genuine multi-chip
        // serve, where gather/broadcast are worth overlapping.
        let chip = MachineConfig {
            w_mem_bytes: 8 * 1024,
            ..MachineConfig::default()
        };
        let (net, x) = net_and_input(&[784, 512, 10], 4, 17);
        for chips in [2usize, 4] {
            let serialized =
                PartitionedMachine::new(&net, chip, chips, InterChipConfig::default()).unwrap();
            let wavefront = PartitionedMachine::with_pipeline(
                &net,
                chip,
                chips,
                InterChipConfig::default(),
                PipelineMode::Wavefront,
            )
            .unwrap();
            for mode in [UvMode::Off, UvMode::On] {
                let a = serialized.run(&net, &x, mode).unwrap();
                let b = wavefront.run(&net, &x, mode).unwrap();
                for (l, (s, w)) in a.layers.iter().zip(&b.layers).enumerate() {
                    assert_eq!(s.output, w.output, "{chips} chips layer {l} {mode:?}");
                    assert_eq!(s.mask, w.mask, "{chips} chips layer {l} mask");
                    assert_eq!(s.events, w.events, "{chips} chips layer {l} events");
                    assert_eq!(s.cycles, w.cycles, "{chips} chips layer {l} cycles");
                }
                // Pipelining hides comm latency; it cannot create time.
                assert!(
                    b.time_us() < a.time_us(),
                    "{chips} chips {mode:?}: wavefront {} vs serialized {}",
                    b.time_us(),
                    a.time_us()
                );
                // …and never dips below the free-link lower bound.
                let free = PartitionedMachine::with_pipeline(
                    &net,
                    chip,
                    chips,
                    InterChipConfig::free(),
                    PipelineMode::Wavefront,
                )
                .unwrap()
                .run(&net, &x, mode)
                .unwrap();
                assert!(b.time_us() >= free.time_us() - 1e-9);
            }
        }
    }

    #[test]
    fn wavefront_backend_is_named_and_introspectable() {
        let (net, _) = net_and_input(&[24, 48, 10], 3, 8);
        let cfg = MachineConfig::default();
        let wf = PartitionedMachine::with_pipeline(
            &net,
            cfg,
            2,
            InterChipConfig::default(),
            PipelineMode::Wavefront,
        )
        .unwrap();
        assert_eq!(wf.pipeline(), PipelineMode::Wavefront);
        assert_eq!(
            wf.name(),
            "partitioned(2 chips x cycle-accurate, wavefront)"
        );
        let serialized = PartitionedMachine::new(&net, cfg, 2, InterChipConfig::default()).unwrap();
        assert_eq!(serialized.pipeline(), PipelineMode::Serialized);
        assert_eq!(serialized.name(), "partitioned(2 chips x cycle-accurate)");
    }

    #[test]
    fn plan_accessors_expose_the_partition() {
        let (net, _) = net_and_input(&[16, 64, 10], 2, 4);
        let pm = PartitionedMachine::new(
            &net,
            MachineConfig::default(),
            4,
            InterChipConfig::default(),
        )
        .unwrap();
        assert_eq!(pm.chips(), 4);
        assert_eq!(pm.plan().layers().len(), 2);
        assert_eq!(pm.interchip().radix, 2);
        assert!(pm.name().starts_with("partitioned(4 chips"));
        assert!(pm.machine_config().is_some());
    }

    /// Tracing is an observer: the traced record is bit-identical to
    /// the untraced one in both schedules, the recorded spans cover
    /// broadcast/VU/W/gather on every layer, carry the caller's trace
    /// id and offset, stay inside the record's total time, and repeat
    /// byte-for-byte across runs.
    #[test]
    fn traced_run_matches_untraced_and_emits_chip_spans() {
        use sparsenn_obs::{NullSink, RingRecorder, SpanKind};
        let (net, x) = net_and_input(&[24, 48, 10], 3, 8);
        for pipeline in [PipelineMode::Serialized, PipelineMode::Wavefront] {
            let pm = PartitionedMachine::with_pipeline(
                &net,
                MachineConfig::default(),
                2,
                InterChipConfig::default(),
                pipeline,
            )
            .unwrap();
            let plain = pm.run(&net, &x, UvMode::On).unwrap();
            let rec = RingRecorder::new(4096);
            let t0 = 125.0;
            let traced = pm.run_traced(&net, &x, UvMode::On, 42, t0, &rec).unwrap();
            assert_eq!(
                plain, traced,
                "{pipeline:?}: tracing must not perturb the run"
            );
            let null = pm
                .run_traced(&net, &x, UvMode::On, 42, t0, &NullSink)
                .unwrap();
            assert_eq!(plain, null, "{pipeline:?}: disabled sink is exactly run()");

            let spans = rec.spans();
            assert!(!spans.is_empty());
            let total_us: f64 = traced.layers.iter().map(|l| l.time_us).sum();
            for s in &spans {
                assert_eq!(s.trace_id, 42);
                assert!(s.start_us >= t0 - 1e-9, "{pipeline:?}: span before t0");
                assert!(
                    s.end_us <= t0 + total_us + 1e-6,
                    "{pipeline:?}: span past the record's total time"
                );
            }
            for kind in [
                SpanKind::Broadcast,
                SpanKind::Vu,
                SpanKind::W,
                SpanKind::Gather,
            ] {
                assert!(
                    spans.iter().any(|s| s.kind == kind),
                    "{pipeline:?}: missing {kind:?} span"
                );
            }
            // Every layer shows up in the W spans of some chip.
            for l in 0..net.num_layers() as u64 {
                assert!(spans.iter().any(|s| {
                    s.kind == SpanKind::W
                        && s.attrs.iter().any(|(k, v)| {
                            k == AttrKey::Layer && v == sparsenn_obs::AttrValue::U64(l)
                        })
                }));
            }
            // Determinism: a second traced run records identical spans.
            let rec2 = RingRecorder::new(4096);
            pm.run_traced(&net, &x, UvMode::On, 42, t0, &rec2).unwrap();
            assert_eq!(spans, rec2.spans());
        }
    }
}
