//! The serving front end: batched, parallel inference over one backend.

use crate::engine::backends::InferenceBackend;
use crate::engine::record::RunRecord;
use crate::error::SparseNnError;
use crate::system::{LayerSummary, SimulationSummary, TrainedSystem};
use sparsenn_energy::PowerModel;
use sparsenn_model::fixedpoint::UvMode;
use sparsenn_sim::MachineEvents;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Default worker-pool size for batch runs: `SPARSENN_WORKERS` when set to
/// a positive integer, else `std::thread::available_parallelism`. The
/// single source of truth for both [`Session`] pools and the bench
/// harness's recorded configuration.
pub fn default_worker_count() -> usize {
    std::env::var("SPARSENN_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A serving session: one trained system, one execution substrate, a
/// worker pool for batches.
///
/// Built from a [`TrainedSystem`] via [`TrainedSystem::session`] (the
/// cycle-accurate machine) or [`TrainedSystem::session_with`] (any
/// backend). The session borrows the quantized network and test split and
/// owns the backend.
///
/// Batch runs fan samples out over `std::thread::scope` workers — one per
/// available core, capped by the batch size (override with the
/// `SPARSENN_WORKERS` environment variable) — and fold per-sample
/// [`RunRecord`]s into a [`SimulationSummary`] in sample order, so the
/// parallel summary is bit-identical to the serial one.
pub struct Session<'a> {
    system: &'a TrainedSystem,
    backend: Box<dyn InferenceBackend>,
    workers: Option<usize>,
}

impl<'a> Session<'a> {
    /// Creates a session over an explicit backend.
    pub fn new(system: &'a TrainedSystem, backend: Box<dyn InferenceBackend>) -> Self {
        Self {
            system,
            backend,
            workers: None,
        }
    }

    /// Pins the batch worker-pool size (at least 1), overriding both the
    /// `SPARSENN_WORKERS` environment variable and the
    /// `available_parallelism` default. Useful for reproducible scheduling
    /// and for exercising the parallel path on single-core machines.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The substrate name this session serves from.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// The system the session serves.
    pub fn system(&self) -> &TrainedSystem {
        self.system
    }

    /// Runs one raw (float) input through the backend.
    ///
    /// # Errors
    ///
    /// Backend shape errors ([`SparseNnError::InputWidthMismatch`],
    /// [`SparseNnError::LayerDoesNotFit`], [`SparseNnError::EmptyNetwork`]).
    pub fn run_input(&self, x: &[f32], mode: UvMode) -> Result<RunRecord, SparseNnError> {
        let xq = self.system.fixed().quantize_input(x);
        self.backend.run(self.system.fixed(), &xq, mode)
    }

    /// Runs test sample `i` through the backend.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::SampleOutOfRange`] if `i` is not in the test set,
    /// plus any backend shape error.
    pub fn run_sample(&self, i: usize, mode: UvMode) -> Result<RunRecord, SparseNnError> {
        let test = &self.system.split().test;
        if i >= test.len() {
            return Err(SparseNnError::SampleOutOfRange {
                index: i,
                len: test.len(),
            });
        }
        self.run_input(test.image(i), mode)
    }

    /// Simulates the first `samples` test images (clamped to the test-set
    /// size) in parallel and aggregates per-layer cycles, events and power.
    ///
    /// An empty batch (`samples == 0` or an empty test set) yields a
    /// well-defined summary: one zeroed [`LayerSummary`] per layer,
    /// `samples == 0`, `fixed_accuracy == 0.0`.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing sample, if any.
    pub fn simulate_batch(
        &self,
        samples: usize,
        mode: UvMode,
    ) -> Result<SimulationSummary, SparseNnError> {
        self.stream_batch(samples, mode, |_, _| {})
    }

    /// Serial reference implementation of [`simulate_batch`]
    /// (identical folding, no worker pool) — the equivalence oracle for
    /// the parallel path.
    ///
    /// [`simulate_batch`]: Session::simulate_batch
    ///
    /// # Errors
    ///
    /// As for [`simulate_batch`](Session::simulate_batch).
    pub fn simulate_batch_serial(
        &self,
        samples: usize,
        mode: UvMode,
    ) -> Result<SimulationSummary, SparseNnError> {
        let samples = samples.min(self.system.split().test.len());
        let mut acc = BatchAccumulator::new(self.system.fixed().num_layers());
        for i in 0..samples {
            let record = self.run_sample(i, mode)?;
            acc.fold(&record, self.is_correct(i, &record))?;
        }
        Ok(acc.finish(&self.power_model(), samples))
    }

    /// Like [`simulate_batch`](Session::simulate_batch), additionally
    /// streaming every per-sample [`RunRecord`] to `on_sample` **in sample
    /// order** while workers run ahead.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing sample; `on_sample` has
    /// then been called exactly for all samples before the failing index.
    pub fn stream_batch(
        &self,
        samples: usize,
        mode: UvMode,
        mut on_sample: impl FnMut(usize, &RunRecord),
    ) -> Result<SimulationSummary, SparseNnError> {
        let samples = samples.min(self.system.split().test.len());
        let workers = self.worker_count(samples);
        if workers <= 1 {
            // Serial fast path (also: scoped threads have nothing to do).
            let mut acc = BatchAccumulator::new(self.system.fixed().num_layers());
            for i in 0..samples {
                let record = self.run_sample(i, mode)?;
                acc.fold(&record, self.is_correct(i, &record))?;
                on_sample(i, &record);
            }
            return Ok(acc.finish(&self.power_model(), samples));
        }

        let next = AtomicUsize::new(0);
        // A window of `2 × workers` permits bounds how far workers run
        // ahead of the in-order fold: one slow sample cannot pile the rest
        // of the batch up in the reorder buffer — in-flight records stay
        // O(workers), not O(batch).
        let window = 2 * workers;
        let (permit_tx, permit_rx) = mpsc::channel::<()>();
        for _ in 0..window {
            let _ = permit_tx.send(());
        }
        let permit_rx = std::sync::Mutex::new(permit_rx);
        let (tx, rx) = mpsc::sync_channel::<(usize, Result<RunRecord, SparseNnError>)>(window);
        std::thread::scope(|scope| {
            // The collector owns the permit source: when this closure exits
            // (normal or early-error), dropping it unblocks every worker
            // waiting for a permit — otherwise the scope's implicit join
            // would deadlock against them.
            let permit_tx = permit_tx;
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let permit_rx = &permit_rx;
                scope.spawn(move || loop {
                    // Acquire a permit first; the collector returns one per
                    // folded sample and drops the source on exit (normal or
                    // early-error), unblocking everyone.
                    let permit = permit_rx.lock().map(|rx| rx.recv());
                    if !matches!(permit, Ok(Ok(()))) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= samples {
                        break;
                    }
                    // Contain a panicking backend: an unwinding worker
                    // would keep its permit forever and deadlock the pool,
                    // so convert the panic into an error result instead.
                    // (Session holds no state a backend run half-mutates,
                    // so resuming after the unwind is sound.)
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.run_sample(i, mode)
                    }))
                    .unwrap_or(Err(SparseNnError::WorkerPanicked));
                    // A send error means the collector stopped early
                    // (first failure wins); just wind the worker down.
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Collect out-of-order completions, fold in sample order so the
            // summary (and the streaming callback) match the serial path.
            let mut acc = BatchAccumulator::new(self.system.fixed().num_layers());
            let mut pending: BTreeMap<usize, Result<RunRecord, SparseNnError>> = BTreeMap::new();
            let mut expected = 0usize;
            while expected < samples {
                match rx.recv() {
                    Ok((i, result)) => {
                        pending.insert(i, result);
                        while let Some(result) = pending.remove(&expected) {
                            let record = result?;
                            acc.fold(&record, self.is_correct(expected, &record))?;
                            on_sample(expected, &record);
                            expected += 1;
                            // Return the permit so a worker may claim the
                            // next sample beyond the window.
                            let _ = permit_tx.send(());
                        }
                    }
                    // All senders gone before all samples arrived — cannot
                    // happen while workers follow the protocol (panics are
                    // caught and reported as results); purely defensive.
                    Err(mpsc::RecvError) => return Err(SparseNnError::WorkerPanicked),
                }
            }
            Ok(acc.finish(&self.power_model(), samples))
        })
    }

    /// The power model pricing this session's events: the backend's own
    /// machine configuration when it has one (else the serving system's
    /// machine), at the backend's own technology node — so a 28 nm
    /// substrate's events are not billed at the paper's 65 nm.
    fn power_model(&self) -> PowerModel {
        let cfg = self
            .backend
            .machine_config()
            .unwrap_or_else(|| self.system.machine().config());
        PowerModel::at_node(cfg, self.backend.tech_node())
    }

    fn worker_count(&self, samples: usize) -> usize {
        self.workers
            .unwrap_or_else(default_worker_count)
            .min(samples)
    }

    fn is_correct(&self, i: usize, record: &RunRecord) -> bool {
        record.classify() == self.system.split().test.label(i) as usize
    }
}

/// Order-insensitive per-layer aggregation shared by the serial and
/// parallel batch paths (cycle/event counters are `u64` sums and the
/// latency sum folds in sample order, so both paths produce bit-identical
/// summaries).
struct BatchAccumulator {
    cycles: Vec<u64>,
    vu_cycles: Vec<u64>,
    time_us: Vec<f64>,
    events: Vec<MachineEvents>,
    correct: usize,
}

impl BatchAccumulator {
    fn new(num_layers: usize) -> Self {
        Self {
            cycles: vec![0; num_layers],
            vu_cycles: vec![0; num_layers],
            time_us: vec![0.0; num_layers],
            events: vec![MachineEvents::default(); num_layers],
            correct: 0,
        }
    }

    /// Folds one sample's record into the per-layer sums.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::LayerCountMismatch`] when the record does not carry
    /// exactly one entry per accumulated layer — a silently truncated fold
    /// would under-report cycles and energy for the extra layers.
    fn fold(&mut self, record: &RunRecord, correct: bool) -> Result<(), SparseNnError> {
        if record.layers.len() != self.events.len() {
            return Err(SparseNnError::LayerCountMismatch {
                expected: self.events.len(),
                got: record.layers.len(),
            });
        }
        if correct {
            self.correct += 1;
        }
        for (l, layer) in record.layers.iter().enumerate() {
            self.cycles[l] += layer.cycles;
            self.vu_cycles[l] += layer.vu_cycles;
            self.time_us[l] += layer.time_us;
            self.events[l].merge(&layer.events);
        }
        Ok(())
    }

    /// Produces the summary. Units are stated per field on
    /// [`LayerSummary`]: `cycles`, `vu_cycles`, `time_us` and `energy_uj`
    /// are per-sample means; `events` and `power` cover the whole batch
    /// (power *rates* in `power` are batch-size invariant, but
    /// `power.time_us` / `power.energy_uj` are batch totals).
    fn finish(self, model: &PowerModel, samples: usize) -> SimulationSummary {
        let per_sample = samples.max(1) as f64;
        let layers = self
            .cycles
            .iter()
            .zip(&self.vu_cycles)
            .zip(&self.time_us)
            .zip(&self.events)
            .map(|(((&cycles, &vu_cycles), &time_us), events)| {
                let power = model.estimate(events);
                LayerSummary {
                    cycles: cycles as f64 / per_sample,
                    vu_cycles: vu_cycles as f64 / per_sample,
                    time_us: time_us / per_sample,
                    energy_uj: power.energy_uj / per_sample,
                    events: *events,
                    power,
                }
            })
            .collect();
        SimulationSummary {
            layers,
            samples,
            fixed_accuracy: if samples == 0 {
                0.0
            } else {
                self.correct as f32 / samples as f32
            },
        }
    }
}
