//! Cross-request batching policy: when a shard should dispatch the
//! requests queued for it as one batch.
//!
//! Batching trades latency for throughput: each extra sample in a batch
//! rides the same W-memory sweep (see
//! [`InferenceBackend::run_batch`](super::InferenceBackend::run_batch)),
//! so throughput per shard rises with batch size — but the first request
//! in the batch waits for the last to arrive. [`BatchPolicy`] names the
//! two classic points on that curve: dispatch immediately with whatever
//! is queued, or hold until the batch fills or a deadline expires.

/// When to dispatch queued requests as one batch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum BatchPolicy {
    /// Dispatch as soon as a shard is free, batching whatever is queued
    /// at that moment (batch-of-1 under light load). Lowest latency;
    /// amortization only happens under backlog. The default.
    #[default]
    Immediate,
    /// Hold queued requests until `max` are waiting or the oldest has
    /// waited `deadline_us`, then dispatch. Highest amortization; adds
    /// up to `deadline_us` of queueing latency under light load.
    SizeOrDeadline {
        /// Batch size that triggers dispatch (≥ 1).
        max: usize,
        /// Oldest-request wait, microseconds, that triggers dispatch
        /// even when the batch is not full (finite, ≥ 0).
        deadline_us: f64,
    },
}

impl BatchPolicy {
    /// Short stable name for labels and fingerprints.
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Immediate => "immediate",
            BatchPolicy::SizeOrDeadline { .. } => "size-or-deadline",
        }
    }

    /// Largest batch this policy ever dispatches
    /// (`usize::MAX` for [`Immediate`](Self::Immediate): it takes the
    /// whole queue).
    pub fn max_batch(&self) -> usize {
        match self {
            BatchPolicy::Immediate => usize::MAX,
            BatchPolicy::SizeOrDeadline { max, .. } => (*max).max(1),
        }
    }

    /// Should a shard that is free right now dispatch, given `queued`
    /// waiting requests whose oldest has waited `oldest_wait_us`?
    pub fn should_dispatch(&self, queued: usize, oldest_wait_us: f64) -> bool {
        match self {
            BatchPolicy::Immediate => queued > 0,
            BatchPolicy::SizeOrDeadline { max, deadline_us } => {
                queued >= (*max).max(1) || (queued > 0 && oldest_wait_us >= *deadline_us)
            }
        }
    }

    /// Checks the policy's parameters, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if let BatchPolicy::SizeOrDeadline { max, deadline_us } = self {
            if *max == 0 {
                return Err("batch size must be at least 1".into());
            }
            if !deadline_us.is_finite() || *deadline_us < 0.0 {
                return Err(format!(
                    "batch deadline must be finite and non-negative, got {deadline_us}"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchPolicy::Immediate => f.write_str("immediate"),
            BatchPolicy::SizeOrDeadline { max, deadline_us } => {
                write!(f, "size-or-deadline(max={max}, deadline={deadline_us}us)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_dispatches_any_backlog() {
        let p = BatchPolicy::Immediate;
        assert!(!p.should_dispatch(0, 0.0));
        assert!(p.should_dispatch(1, 0.0));
        assert!(p.should_dispatch(100, 0.0));
        assert_eq!(p.max_batch(), usize::MAX);
        assert_eq!(p.name(), "immediate");
        assert!(p.validate().is_ok());
        assert_eq!(p, BatchPolicy::default());
    }

    #[test]
    fn size_or_deadline_fills_or_times_out() {
        let p = BatchPolicy::SizeOrDeadline {
            max: 4,
            deadline_us: 200.0,
        };
        assert!(!p.should_dispatch(0, 1e9), "empty queue never dispatches");
        assert!(!p.should_dispatch(3, 100.0), "under-full and under-age");
        assert!(p.should_dispatch(4, 0.0), "full batch dispatches at once");
        assert!(
            p.should_dispatch(1, 200.0),
            "deadline releases a partial batch"
        );
        assert_eq!(p.max_batch(), 4);
        assert_eq!(p.name(), "size-or-deadline");
        assert!(p.to_string().contains("max=4"));
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(BatchPolicy::SizeOrDeadline {
            max: 0,
            deadline_us: 1.0
        }
        .validate()
        .is_err());
        assert!(BatchPolicy::SizeOrDeadline {
            max: 2,
            deadline_us: f64::NAN
        }
        .validate()
        .is_err());
        assert!(BatchPolicy::SizeOrDeadline {
            max: 2,
            deadline_us: -1.0
        }
        .validate()
        .is_err());
        assert!(BatchPolicy::SizeOrDeadline {
            max: 1,
            deadline_us: 0.0
        }
        .validate()
        .is_ok());
        // A zero max still behaves as 1 in the accessors.
        let p = BatchPolicy::SizeOrDeadline {
            max: 0,
            deadline_us: 1.0,
        };
        assert_eq!(p.max_batch(), 1);
        assert!(p.should_dispatch(1, 0.0));
    }
}
