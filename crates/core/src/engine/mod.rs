//! The inference engine: one trait, three execution substrates, one
//! parallel serving front end.
//!
//! The paper's evaluation is a single workload pushed through
//! interchangeable execution substrates — the SparseNN accelerator, the
//! UV-disabled EIE baseline, and the SIMD platforms of Table IV. This
//! module gives the reproduction the same shape:
//!
//! * [`InferenceBackend`] — the substrate abstraction. Implemented by
//!   [`CycleAccurateBackend`] (the 64-PE cycle-level machine),
//!   [`GoldenBackend`] (the timing-free fixed-point golden model),
//!   [`SimdBackend`] (the analytic SIMD platform models of Table IV) and
//!   [`KernelBackend`] (the native prescan + block-skip CPU kernel of
//!   `sparsenn-kernel` — the one substrate whose speed is *measured*, not
//!   modelled). Every backend returns the same [`RunRecord`] — outputs,
//!   per-layer cycles and activity events — so an experiment swaps
//!   substrates by changing one constructor call.
//! * [`Session`] — a serving front end built from a
//!   [`TrainedSystem`](crate::TrainedSystem): owns a backend, borrows the
//!   quantized network and test set, and runs batched inference on a
//!   `std::thread::scope` worker pool sized by
//!   `std::thread::available_parallelism`. Batch results fold into the
//!   same [`SimulationSummary`](crate::SimulationSummary) the serial path
//!   produces — bit for bit.
//! * [`PartitionedMachine`] — model parallelism: one network tiled row-wise
//!   across several chips under a `sparsenn_partition::PartitionPlan`,
//!   with input broadcast / output gather costed by a chip-level
//!   interconnect. Serves networks bigger than one chip's W memory;
//!   bit-identical to a single chip whenever the network fits one.
//! * [`Fleet`] — sharded serving: N independent accelerator instances
//!   (each an [`InferenceBackend`]) behind one backend. Dispatch is a
//!   pluggable [`Scheduler`] ([`FirstIdle`] by default; [`LeastQueued`]
//!   and [`FastestCompletion`] ship too) — the same trait the
//!   `sparsenn-serve` virtual-time simulator drives, so a policy tuned
//!   against simulated latency-vs-load curves drops into real serving
//!   unchanged. Plugged into a [`Session`], the session's worker pool
//!   becomes the shared request queue; a fleet of identical shards keeps
//!   batch summaries bit-identical to a single machine's. An
//!   [`AdmissionGate`] ([`Fleet::with_admission`]) bounds that queue:
//!   under overload it sheds or degrades low-[`Priority`] traffic
//!   (typed [`Overloaded`](crate::SparseNnError::Overloaded) errors)
//!   instead of queueing forever — the same gate trait the
//!   `sparsenn-frontend` production-front-end simulator sweeps.
//! * **Cross-request batching** — every backend serves batches through
//!   [`InferenceBackend::run_batch`] (a serial loop by default; the
//!   cycle-accurate machine overrides it with a true batched core that
//!   reads each W row once per batch). Results come back as a
//!   [`BatchRunRecord`]: per-sample records bit-identical to serial
//!   [`run`](InferenceBackend::run) calls, plus the batch-amortized
//!   clock/energy book. A [`BatchPolicy`]
//!   ([`Fleet::with_batch_policy`]) decides how the fleet chunks
//!   batches across shards; the same policy drives the
//!   `sparsenn-serve` queue-aware batching simulator.
//!
//! Every backend also stamps its records with a modelled wall-clock
//! latency ([`RunRecord::time_us`]) from its own clock model — the
//! machine's 2 ns cycle, a SIMD platform's published frequency, or zero
//! for the timing-free golden model — so Table IV can compare latency, not
//! just cycles, across substrates.
//!
//! All entry points return `Result<_, `[`SparseNnError`]`>`; no input can
//! panic the engine.
//!
//! # Example
//!
//! ```
//! use sparsenn_core::engine::{GoldenBackend, InferenceBackend};
//! use sparsenn_core::datasets::DatasetKind;
//! use sparsenn_core::model::fixedpoint::UvMode;
//! use sparsenn_core::{SystemBuilder, TrainingAlgorithm};
//!
//! let system = SystemBuilder::new(DatasetKind::Basic)
//!     .dims(&[784, 24, 10])
//!     .rank(4)
//!     .train_samples(60)
//!     .test_samples(20)
//!     .epochs(1)
//!     .build();
//!
//! // Serve through the golden model instead of the cycle simulator —
//! // same Session API, same RunRecord shape.
//! let session = system.session_with(Box::new(GoldenBackend::new()));
//! let record = session.run_sample(0, UvMode::On).unwrap();
//! assert_eq!(record.layers.len(), 2);
//! assert!(session.run_sample(1_000_000, UvMode::On).is_err());
//! ```
//!
//! [`SparseNnError`]: crate::SparseNnError

mod admission;
mod backends;
mod batch;
mod fleet;
mod kernel;
mod partitioned;
mod record;
mod scheduler;
mod session;

pub use admission::{AdmissionDecision, AdmissionGate, AdmitAll, BoundedQueues, Priority};
pub use backends::{CycleAccurateBackend, GoldenBackend, InferenceBackend, SimdBackend};
pub use batch::BatchPolicy;
pub use fleet::{AdmissionStats, Fleet, ShardStats};
pub use kernel::KernelBackend;
pub use partitioned::PartitionedMachine;
pub use record::{BatchRunRecord, LayerRecord, RunRecord};
pub use scheduler::{FastestCompletion, FirstIdle, LeastQueued, Scheduler, ShardView};
pub use session::{default_worker_count, Session};
/// Re-export: the P² streaming quantile estimator now lives in the
/// observability crate (`sparsenn-obs`), alongside the unified
/// [`LatencyStat`](sparsenn_obs::LatencyStat) accumulator built on it.
pub use sparsenn_obs::P2Quantile;
