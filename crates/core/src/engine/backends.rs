//! The three execution substrates behind [`InferenceBackend`].

use crate::engine::record::{BatchRunRecord, LayerRecord, RunRecord};
use crate::error::SparseNnError;
use sparsenn_energy::TechNode;
use sparsenn_model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_numeric::Q6_10;
use sparsenn_sim::simd::SimdPlatform;
use sparsenn_sim::{Machine, MachineConfig, MachineEvents};

/// An execution substrate for quantized SparseNN inference.
///
/// Implementations must be `Send + Sync`: a [`Session`](super::Session)
/// shares one backend across its worker pool.
pub trait InferenceBackend: Send + Sync {
    /// Human-readable substrate name (shows up in [`RunRecord::backend`]).
    fn name(&self) -> &str;

    /// The machine configuration whose power model applies to this
    /// backend's event counts, when the substrate has one. Batch summaries
    /// estimate power with it; `None` (analytic and timing-free backends)
    /// falls back to the serving system's machine configuration — i.e. the
    /// events are priced as "what the SparseNN machine would consume
    /// executing this activity".
    fn machine_config(&self) -> Option<&MachineConfig> {
        None
    }

    /// The CMOS technology node this backend's silicon is modelled at.
    /// Batch summaries price the backend's events at this node (via
    /// [`PowerModel::at_node`](sparsenn_energy::PowerModel::at_node)), so a
    /// 28 nm platform's energy is not silently billed at the paper's 65 nm.
    fn tech_node(&self) -> TechNode {
        TechNode::n65()
    }

    /// Runs one quantized input through the network.
    ///
    /// All implementations produce bit-exact outputs (the golden
    /// fixed-point arithmetic); they differ in how cycles and events are
    /// modelled.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyNetwork`] for a zero-layer network,
    /// [`SparseNnError::InputWidthMismatch`] when `input` does not match
    /// the first layer, and backend-specific
    /// [`SparseNnError::LayerDoesNotFit`] when a layer exceeds a substrate
    /// limit.
    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError>;

    /// Runs a batch of quantized inputs in one dispatch.
    ///
    /// The default is a serial loop of [`run`](Self::run) — correct for
    /// every substrate, amortizing nothing. Substrates with a real
    /// batched core (the cycle-accurate machine) override it to share
    /// W-memory reads across the batch; the per-sample records stay
    /// **bit-identical** to serial execution either way (the
    /// [`BatchRunRecord`] contract), so batching is purely a
    /// timing/energy decision.
    ///
    /// # Errors
    ///
    /// [`SparseNnError::EmptyBatch`] for zero inputs, else as
    /// [`run`](Self::run).
    fn run_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> Result<BatchRunRecord, SparseNnError> {
        if inputs.is_empty() {
            return Err(SparseNnError::EmptyBatch);
        }
        let mut records = Vec::with_capacity(inputs.len());
        for input in inputs {
            records.push(self.run(net, input, mode)?);
        }
        Ok(BatchRunRecord::from_serial(records))
    }
}

/// Checks the layer chain is non-empty and consistent with the input, so
/// the golden model's internal asserts are unreachable. Shared with the
/// partitioned backend.
pub(crate) fn validate_shapes(net: &FixedNetwork, input: &[Q6_10]) -> Result<(), SparseNnError> {
    if net.num_layers() == 0 {
        return Err(SparseNnError::EmptyNetwork);
    }
    let mut width = input.len();
    for (l, w) in net.layers().iter().enumerate() {
        if w.cols() != width {
            if l == 0 {
                return Err(SparseNnError::InputWidthMismatch {
                    expected: w.cols(),
                    got: width,
                });
            }
            return Err(SparseNnError::LayerDoesNotFit {
                layer: l,
                reason: format!(
                    "layer expects {} inputs but the previous layer produces {width}",
                    w.cols()
                ),
            });
        }
        width = w.rows();
    }
    Ok(())
}

fn nnz(xs: &[Q6_10]) -> u64 {
    xs.iter().filter(|v| !v.is_zero()).count() as u64
}

/// The cycle-accurate 64-PE machine (the reproduction's RTL stand-in).
///
/// Cycles and events are exact per the micro-architectural model;
/// [`UvMode::Off`] is the EIE baseline.
#[derive(Clone, Debug, Default)]
pub struct CycleAccurateBackend {
    machine: Machine,
}

impl CycleAccurateBackend {
    /// Wraps a configured machine.
    pub fn new(machine: Machine) -> Self {
        Self { machine }
    }

    /// A machine with the paper's Table II configuration.
    pub fn with_config(cfg: MachineConfig) -> Self {
        Self {
            machine: Machine::new(cfg),
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl InferenceBackend for CycleAccurateBackend {
    fn name(&self) -> &str {
        "cycle-accurate"
    }

    fn machine_config(&self) -> Option<&MachineConfig> {
        Some(self.machine.config())
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        let run = self.machine.try_run_network(net, input, mode)?;
        Ok(RunRecord::from_network_run(
            self.name(),
            run,
            self.machine.config(),
        ))
    }

    /// The true batched core: one W pass per layer serves the whole
    /// batch ([`Machine::try_run_network_batch`]), so the batch clock and
    /// W-read book amortize while every per-sample record stays
    /// bit-identical to a serial [`run`](InferenceBackend::run).
    fn run_batch(
        &self,
        net: &FixedNetwork,
        inputs: &[Vec<Q6_10>],
        mode: UvMode,
    ) -> Result<BatchRunRecord, SparseNnError> {
        let run = self.machine.try_run_network_batch(net, inputs, mode)?;
        let cfg = self.machine.config();
        let batch_time_us = run.layers.iter().map(|l| cfg.time_us(l.batch.cycles)).sum();
        let (w_reads_serial, w_reads_amortized) = run.w_read_totals();
        let batch_events = run.total_events();
        let records = run
            .sample_runs()
            .into_iter()
            .map(|r| RunRecord::from_network_run(self.name(), r, cfg))
            .collect();
        Ok(BatchRunRecord {
            records,
            batch_time_us,
            batch_events,
            w_reads_serial,
            w_reads_amortized,
        })
    }
}

/// The timing-free fixed-point golden model.
///
/// Outputs are the reference bits every other backend must match. Cycle
/// counts are zero; events carry *functional* counts (memory words an
/// ideal implementation must read, MACs it must execute), which makes the
/// golden backend a lower-bound workload model as well as a correctness
/// oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct GoldenBackend;

impl GoldenBackend {
    /// Creates the golden backend.
    pub fn new() -> Self {
        Self
    }
}

impl InferenceBackend for GoldenBackend {
    fn name(&self) -> &str {
        "golden-fixed-point"
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        validate_shapes(net, input)?;
        let mut acts = input.to_vec();
        let mut layers = Vec::with_capacity(net.num_layers());
        for l in 0..net.num_layers() {
            let golden = net.forward_layer(l, &acts, mode);
            let m = net.layers()[l].rows() as u64;
            let nnz_in = nnz(&acts);
            let mut ev = MachineEvents::default();
            if let (Some(v_result), Some(mask)) = (&golden.v_result, &golden.mask) {
                let r = v_result.len() as u64;
                // V phase: r rows, zero activations skipped exactly.
                ev.v_reads = r * nnz_in;
                ev.macs += r * nnz_in;
                // U phase: m rows over the nonzero V results.
                let nnz_v = nnz(v_result);
                ev.u_reads = m * nnz_v;
                ev.macs += m * nnz_v;
                ev.pred_writes = mask.len() as u64;
            }
            let active = golden
                .mask
                .as_ref()
                .map_or(m, |mask| mask.iter().filter(|&&b| b).count() as u64);
            ev.w_reads = active * nnz_in;
            ev.macs += active * nnz_in;
            ev.src_reads = nnz_in;
            ev.dst_writes = active;
            layers.push(LayerRecord {
                mask: golden.mask,
                cycles: 0,
                vu_cycles: 0,
                w_cycles: 0,
                time_us: 0.0,
                events: ev,
                output: golden.output.clone(),
            });
            acts = golden.output;
        }
        Ok(RunRecord {
            backend: self.name().into(),
            layers,
        })
    }
}

/// An analytic SIMD comparison platform of Table IV.
///
/// Outputs come from the golden fixed-point arithmetic (so results stay
/// comparable across substrates); cycles follow the paper's own
/// `work / SIMD width` methodology via [`SimdPlatform::layer_cycles`].
/// With [`UvMode::On`], a platform carrying an output predictor
/// (LRADNN) bypasses the rows the network's own mask marks inactive; with
/// [`UvMode::Off`] the platform is modelled without output prediction.
#[derive(Clone, Copy, Debug)]
pub struct SimdBackend {
    platform: SimdPlatform,
}

impl SimdBackend {
    /// Wraps a platform model.
    pub fn new(platform: SimdPlatform) -> Self {
        Self { platform }
    }

    /// The wrapped platform model.
    pub fn platform(&self) -> &SimdPlatform {
        &self.platform
    }
}

impl InferenceBackend for SimdBackend {
    fn name(&self) -> &str {
        self.platform.name
    }

    fn tech_node(&self) -> TechNode {
        TechNode::new(self.platform.tech_nm)
    }

    fn run(
        &self,
        net: &FixedNetwork,
        input: &[Q6_10],
        mode: UvMode,
    ) -> Result<RunRecord, SparseNnError> {
        validate_shapes(net, input)?;
        let width = self.platform.simd_width as u64;
        let mut acts = input.to_vec();
        let mut layers = Vec::with_capacity(net.num_layers());
        for l in 0..net.num_layers() {
            let golden = net.forward_layer(l, &acts, mode);
            let w = &net.layers()[l];
            let (m, n) = (w.rows(), w.cols());
            let nnz_in = nnz(&acts) as usize;
            // The platform's predictor only covers layers the network
            // predicts (hidden layers in UvMode::On).
            let platform = if golden.mask.is_some() {
                self.platform
            } else {
                SimdPlatform {
                    output_predictor_rank: None,
                    ..self.platform
                }
            };
            let active = golden
                .mask
                .as_ref()
                .map_or(m, |mask| mask.iter().filter(|&&b| b).count());
            let cycles = platform.layer_cycles(m, n, nnz_in, active);
            let vu_cycles = platform
                .output_predictor_rank
                .map_or(0, |r| ((r * (m + n)) as u64).div_ceil(width));
            let n_eff = if platform.skips_input_zeros {
                nnz_in
            } else {
                n
            };
            let m_eff = if platform.output_predictor_rank.is_some() {
                active
            } else {
                m
            };
            let ev = MachineEvents {
                cycles,
                vu_cycles,
                w_cycles: cycles - vu_cycles,
                w_reads: (m_eff * n_eff) as u64,
                macs: (m_eff * n_eff) as u64
                    + platform
                        .output_predictor_rank
                        .map_or(0, |r| (r * (m + n)) as u64),
                src_reads: nnz_in as u64,
                dst_writes: m_eff as u64,
                ..MachineEvents::default()
            };
            layers.push(LayerRecord {
                mask: golden.mask,
                cycles,
                vu_cycles,
                w_cycles: cycles - vu_cycles,
                time_us: self.platform.time_us(cycles),
                events: ev,
                output: golden.output.clone(),
            });
            acts = golden.output;
        }
        Ok(RunRecord {
            backend: self.name().into(),
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::{Mlp, PredictedNetwork};

    fn net_and_input(dims: &[usize], rank: usize) -> (FixedNetwork, Vec<Q6_10>) {
        let mut rng = seeded_rng(11);
        let mlp = Mlp::random(dims, &mut rng);
        let net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
        let fixed = FixedNetwork::from_float(&net);
        let x: Vec<f32> = (0..dims[0])
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.31).sin().abs()
                }
            })
            .collect();
        let xq = fixed.quantize_input(&x);
        (fixed, xq)
    }

    #[test]
    fn all_backends_agree_on_outputs_and_masks() {
        let (net, x) = net_and_input(&[36, 72, 48, 10], 4);
        let backends: Vec<Box<dyn InferenceBackend>> = vec![
            Box::new(CycleAccurateBackend::default()),
            Box::new(GoldenBackend::new()),
            Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
            Box::new(SimdBackend::new(SimdPlatform::lradnn(4))),
            Box::new(crate::engine::KernelBackend::new()),
        ];
        for mode in [UvMode::Off, UvMode::On] {
            let reference = backends[0].run(&net, &x, mode).unwrap();
            for b in &backends[1..] {
                let r = b.run(&net, &x, mode).unwrap();
                for (l, (got, want)) in r.layers.iter().zip(&reference.layers).enumerate() {
                    assert_eq!(got.output, want.output, "{}: layer {l} {mode:?}", b.name());
                    assert_eq!(got.mask, want.mask, "{}: layer {l} mask {mode:?}", b.name());
                }
            }
        }
    }

    fn batch_of(net: &FixedNetwork, dims0: usize, b: usize) -> Vec<Vec<Q6_10>> {
        (0..b)
            .map(|s| {
                let x: Vec<f32> = (0..dims0)
                    .map(|i| {
                        if (i + s) % 4 == 0 {
                            0.0
                        } else {
                            ((i as f32 + s as f32) * 0.31).sin().abs()
                        }
                    })
                    .collect();
                net.quantize_input(&x)
            })
            .collect()
    }

    #[test]
    fn run_batch_is_bit_identical_to_serial_on_every_backend() {
        let (net, _) = net_and_input(&[36, 72, 48, 10], 4);
        let inputs = batch_of(&net, 36, 3);
        let backends: Vec<Box<dyn InferenceBackend>> = vec![
            Box::new(CycleAccurateBackend::default()),
            Box::new(GoldenBackend::new()),
            Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
            Box::new(crate::engine::KernelBackend::new()),
        ];
        for b in &backends {
            for mode in [UvMode::Off, UvMode::On] {
                let batch = b.run_batch(&net, &inputs, mode).unwrap();
                assert_eq!(batch.batch_size(), 3, "{}", b.name());
                for (s, x) in inputs.iter().enumerate() {
                    let serial = b.run(&net, x, mode).unwrap();
                    assert_eq!(
                        batch.records[s],
                        serial,
                        "{} sample {s} {mode:?}: batching must not change records",
                        b.name()
                    );
                }
                assert!(
                    batch.batch_time_us <= batch.serial_time_us() + 1e-9,
                    "{}: batch never slower than serial",
                    b.name()
                );
                assert!(
                    batch.w_reads_amortized <= batch.w_reads_serial,
                    "{}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn machine_run_batch_amortizes_w_reads() {
        let (net, x) = net_and_input(&[48, 128, 10], 4);
        let b = CycleAccurateBackend::default();
        // Identical samples: the union W pass is one serial pass.
        let inputs = vec![x; 4];
        let batch = b.run_batch(&net, &inputs, UvMode::On).unwrap();
        assert!((batch.w_read_amortization() - 4.0).abs() < 1e-12);
        assert!(batch.batch_time_us < batch.serial_time_us());
        assert!(batch.mean_time_us() < batch.records[0].time_us());
        // The default serial loop (golden) amortizes nothing.
        let golden = GoldenBackend::new()
            .run_batch(&net, &inputs, UvMode::On)
            .unwrap();
        assert!((golden.w_read_amortization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_a_typed_error_on_every_backend() {
        let (net, _) = net_and_input(&[36, 72, 10], 4);
        let backends: Vec<Box<dyn InferenceBackend>> = vec![
            Box::new(CycleAccurateBackend::default()),
            Box::new(GoldenBackend::new()),
        ];
        for b in &backends {
            assert_eq!(
                b.run_batch(&net, &[], UvMode::On).unwrap_err(),
                SparseNnError::EmptyBatch,
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn width_mismatch_is_an_error_on_every_backend() {
        let (net, _) = net_and_input(&[36, 72, 10], 4);
        let short = vec![Q6_10::ZERO; 12];
        let backends: Vec<Box<dyn InferenceBackend>> = vec![
            Box::new(CycleAccurateBackend::default()),
            Box::new(GoldenBackend::new()),
            Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
        ];
        for b in &backends {
            assert_eq!(
                b.run(&net, &short, UvMode::On).unwrap_err(),
                SparseNnError::InputWidthMismatch {
                    expected: 36,
                    got: 12
                },
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn oversized_layer_is_an_error_not_a_panic() {
        let (net, x) = net_and_input(&[40, 4096, 10], 2);
        // 4096×40 fits the register files but the width used here is fine;
        // shrink the machine instead to force the limit.
        let tiny = MachineConfig {
            act_regs_per_pe: 4,
            ..MachineConfig::default()
        };
        let b = CycleAccurateBackend::with_config(tiny);
        match b.run(&net, &x, UvMode::Off) {
            Err(SparseNnError::LayerDoesNotFit { .. }) => {}
            other => panic!("expected LayerDoesNotFit, got {other:?}"),
        }
    }

    #[test]
    fn golden_functional_counts_match_machine_uv_off() {
        let (net, x) = net_and_input(&[32, 128, 10], 4);
        let golden = GoldenBackend::new().run(&net, &x, UvMode::Off).unwrap();
        let machine = CycleAccurateBackend::default()
            .run(&net, &x, UvMode::Off)
            .unwrap();
        // W-memory traffic and MACs are workload properties, identical
        // between the functional and cycle-accurate models.
        assert_eq!(
            golden.layers[0].events.w_reads,
            machine.layers[0].events.w_reads
        );
        assert_eq!(golden.layers[0].events.macs, machine.layers[0].events.macs);
        assert_eq!(golden.total_cycles(), 0, "golden backend is timing-free");
        assert!(machine.total_cycles() > 0);
    }

    #[test]
    fn latency_follows_each_backends_own_clock_model() {
        let (net, x) = net_and_input(&[36, 72, 10], 4);
        let machine = CycleAccurateBackend::default();
        let run = machine.run(&net, &x, UvMode::On).unwrap();
        let want: f64 = run
            .layers
            .iter()
            .map(|l| machine.machine().config().time_us(l.cycles))
            .sum();
        assert!(run.time_us() > 0.0);
        assert!((run.time_us() - want).abs() < 1e-12);

        let golden = GoldenBackend::new().run(&net, &x, UvMode::On).unwrap();
        assert_eq!(golden.time_us(), 0.0, "golden backend is timing-free");

        let engine = SimdBackend::new(SimdPlatform::dnn_engine());
        let run = engine.run(&net, &x, UvMode::On).unwrap();
        let want: f64 = run
            .layers
            .iter()
            .map(|l| engine.platform().time_us(l.cycles))
            .sum();
        assert!(run.time_us() > 0.0);
        assert!((run.time_us() - want).abs() < 1e-12);
    }

    #[test]
    fn backends_report_their_own_technology_node() {
        assert_eq!(CycleAccurateBackend::default().tech_node(), TechNode::n65());
        assert_eq!(GoldenBackend::new().tech_node(), TechNode::n65());
        assert_eq!(
            SimdBackend::new(SimdPlatform::dnn_engine()).tech_node(),
            TechNode::n28()
        );
        assert_eq!(
            SimdBackend::new(SimdPlatform::lradnn(4)).tech_node(),
            TechNode::n65()
        );
    }

    #[test]
    fn simd_platforms_model_their_published_behaviour() {
        let (net, x) = net_and_input(&[64, 256, 10], 4);
        let engine = SimdBackend::new(SimdPlatform::dnn_engine());
        let run = engine.run(&net, &x, UvMode::Off).unwrap();
        // DNN-Engine skips zero inputs: cycles = m·nnz / 8 per layer.
        let nnz0 = x.iter().filter(|v| !v.is_zero()).count();
        assert_eq!(run.layers[0].cycles, ((256 * nnz0) as u64).div_ceil(8));
        // LRADNN pays its predictor but computes fewer rows in UvMode::On.
        let lradnn = SimdBackend::new(SimdPlatform::lradnn(4));
        let on = lradnn.run(&net, &x, UvMode::On).unwrap();
        let off = lradnn.run(&net, &x, UvMode::Off).unwrap();
        assert!(on.layers[0].vu_cycles > 0);
        assert_eq!(off.layers[0].vu_cycles, 0);
    }
}
