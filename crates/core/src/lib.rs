//! High-level API of the SparseNN reproduction.
//!
//! This crate ties the whole system together: synthetic datasets →
//! predictor training → 16-bit quantization → cycle-level accelerator
//! simulation → power/area estimation. The lower-level crates are
//! re-exported as modules so one dependency gives access to everything.
//!
//! # Quickstart
//!
//! ```
//! use sparsenn_core::{SystemBuilder, TrainingAlgorithm};
//! use sparsenn_core::datasets::DatasetKind;
//! use sparsenn_core::model::fixedpoint::UvMode;
//!
//! // Train a small end-to-end predictor network on synthetic MNIST-BASIC
//! // and run one test image through the simulated accelerator.
//! let system = SystemBuilder::new(DatasetKind::Basic)
//!     .dims(&[784, 64, 10])
//!     .rank(8)
//!     .train_samples(120)
//!     .test_samples(40)
//!     .epochs(2)
//!     .build();
//! let ter = system.test_error_rate();
//! assert!(ter <= 100.0);
//! let run = system.simulate_sample(0, UvMode::On).unwrap();
//! assert!(run.total_cycles() > 0);
//! ```
//!
//! # The engine
//!
//! Inference is served through the [`engine`] module: every execution
//! substrate — the cycle-accurate machine, the golden fixed-point model,
//! the analytic SIMD platforms of Table IV — implements
//! [`engine::InferenceBackend`], and [`engine::Session`] batches samples
//! over a worker pool. All public inference entry points return
//! `Result<_, `[`SparseNnError`]`>`; nothing panics on bad input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fixed-point arithmetic (re-export of `sparsenn-numeric`).
pub use sparsenn_numeric as numeric;

/// Linear algebra and SVD (re-export of `sparsenn-linalg`).
pub use sparsenn_linalg as linalg;

/// Synthetic datasets (re-export of `sparsenn-datasets`).
pub use sparsenn_datasets as datasets;

/// Model and golden fixed-point inference (re-export of `sparsenn-model`).
pub use sparsenn_model as model;

/// Training algorithms (re-export of `sparsenn-train`).
pub use sparsenn_train as train;

/// On-chip network models (re-export of `sparsenn-noc`).
pub use sparsenn_noc as noc;

/// Cycle-level accelerator simulator (re-export of `sparsenn-sim`).
pub use sparsenn_sim as sim;

/// Energy, power and area models (re-export of `sparsenn-energy`).
pub use sparsenn_energy as energy;

/// Model-parallel partitioning: planner, plans and the chip-level
/// interconnect cost model (re-export of `sparsenn-partition`). The
/// execution side is [`engine::PartitionedMachine`].
pub use sparsenn_partition as partition;

/// Native CPU inference kernels — prescan + block-skip, measured
/// wall-clock (re-export of `sparsenn-kernel`). The backend side is
/// [`engine::KernelBackend`].
pub use sparsenn_kernel as kernel;

pub mod engine;
mod error;
mod profile;
mod system;

pub use error::SparseNnError;
pub use profile::Profile;
pub use system::{
    LayerSummary, SimulationSummary, SystemBuilder, TrainedSystem, TrainingAlgorithm,
};
