//! Property tests of the staged timing model — the ISSUE-5 contract:
//!
//! 1. wavefront pipelining reorders *time, never arithmetic*: outputs,
//!    masks and event sums are bit-identical to the serialized schedule
//!    for random networks and chip counts;
//! 2. wavefront `time_us` is never above serialized `time_us` (overlap
//!    can only hide latency) and never below the free-link lower bound
//!    (overlap cannot beat a zero-cost interconnect).

use proptest::prelude::*;
use sparsenn_core::engine::{InferenceBackend, PartitionedMachine};
use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn_core::model::{Mlp, PredictedNetwork};
use sparsenn_core::partition::{InterChipConfig, PipelineMode};
use sparsenn_core::sim::MachineConfig;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_numeric::Q6_10;

fn random_case(seed: u64, dims: &[usize], zero_every: usize) -> (FixedNetwork, Vec<Q6_10>) {
    let mut rng = seeded_rng(seed);
    let mlp = Mlp::random(dims, &mut rng);
    let net = PredictedNetwork::with_random_predictors(mlp, 3, &mut rng);
    let fixed = FixedNetwork::from_float(&net);
    let x: Vec<f32> = (0..dims[0])
        .map(|i| {
            if i % zero_every == 0 {
                0.0
            } else {
                ((i as f32) * 0.37 + seed as f32 * 0.11).sin()
            }
        })
        .collect();
    let xq = fixed.quantize_input(&x);
    (fixed, xq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) Outputs, masks and summed events are bit-identical between
    /// the serialized and wavefront schedules, for random networks,
    /// chip counts and both uv modes.
    #[test]
    fn wavefront_is_bit_identical_to_serialized(
        seed in 0u64..1_000,
        input_dim in 8usize..40,
        hidden in 16usize..96,
        out in 4usize..12,
        chips in 1usize..=6,
        zero_every in 2usize..5,
        uv_on in any::<bool>(),
    ) {
        let dims = [input_dim, hidden, out];
        let (net, x) = random_case(seed, &dims, zero_every);
        let cfg = MachineConfig::default();
        let icc = InterChipConfig::default();
        let serialized = PartitionedMachine::new(&net, cfg, chips, icc).unwrap();
        let wavefront =
            PartitionedMachine::with_pipeline(&net, cfg, chips, icc, PipelineMode::Wavefront)
                .unwrap();
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let a = serialized.run(&net, &x, mode).unwrap();
        let b = wavefront.run(&net, &x, mode).unwrap();
        prop_assert_eq!(a.layers.len(), b.layers.len());
        for (l, (s, w)) in a.layers.iter().zip(&b.layers).enumerate() {
            prop_assert_eq!(&s.output, &w.output, "layer {} output", l);
            prop_assert_eq!(&s.mask, &w.mask, "layer {} mask", l);
            prop_assert_eq!(&s.events, &w.events, "layer {} events", l);
            prop_assert_eq!(s.cycles, w.cycles, "layer {} cycles", l);
        }
        prop_assert_eq!(a.total_events(), b.total_events());
    }

    /// (b) The wavefront schedule is bounded on both sides: never above
    /// serialized, never below the `InterChipConfig::free()` no-comm
    /// lower bound.
    #[test]
    fn wavefront_time_is_bracketed(
        seed in 0u64..1_000,
        input_dim in 8usize..40,
        hidden in 16usize..96,
        hidden2 in 8usize..48,
        chips in 1usize..=6,
        zero_every in 2usize..5,
        uv_on in any::<bool>(),
    ) {
        let dims = [input_dim, hidden, hidden2, 8];
        let (net, x) = random_case(seed, &dims, zero_every);
        let cfg = MachineConfig::default();
        let mode = if uv_on { UvMode::On } else { UvMode::Off };
        let run = |icc: InterChipConfig, pipeline: PipelineMode| {
            PartitionedMachine::with_pipeline(&net, cfg, chips, icc, pipeline)
                .unwrap()
                .run(&net, &x, mode)
                .unwrap()
                .time_us()
        };
        let serialized = run(InterChipConfig::default(), PipelineMode::Serialized);
        let wavefront = run(InterChipConfig::default(), PipelineMode::Wavefront);
        let free = run(InterChipConfig::free(), PipelineMode::Wavefront);
        let eps = 1e-9 * serialized.max(1.0);
        prop_assert!(
            wavefront <= serialized + eps,
            "wavefront {} must not exceed serialized {} ({} chips)",
            wavefront, serialized, chips
        );
        prop_assert!(
            wavefront + eps >= free,
            "wavefront {} must not beat the free-link bound {} ({} chips)",
            wavefront, free, chips
        );
        // Per-layer spans are non-negative in every schedule.
        prop_assert!(serialized >= 0.0 && wavefront >= 0.0 && free >= 0.0);
    }
}
