//! Wall-clock profiling hooks.
//!
//! Everything else in this crate measures *virtual* time — the clock
//! the simulators advance. The profiler measures *wall* time: how long
//! the host CPU actually spends inside a phase of the simulation. This
//! is the hook ROADMAP item 3 asks for — before optimizing the sim's
//! hot loop we need to know what fraction of a sweep it really is.

use std::time::Instant;

use crate::registry::MetricsRegistry;

/// Accumulates wall time per named phase across repeated calls.
///
/// Phases are keyed by `&'static str` and stored in call order (first
/// occurrence wins the position), so reports list phases the way the
/// code runs them.
#[derive(Clone, Debug, Default)]
pub struct WallProfiler {
    phases: Vec<(&'static str, PhaseStat)>,
}

/// Accumulated wall time for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStat {
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall time across calls, µs.
    pub total_us: f64,
    /// Longest single call, µs.
    pub max_us: f64,
}

impl WallProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, charging its wall time to `phase`.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_secs_f64() * 1e6);
        out
    }

    /// Charges `elapsed_us` of wall time to `phase` directly — for
    /// call sites where a closure boundary is awkward.
    pub fn add(&mut self, phase: &'static str, elapsed_us: f64) {
        let stat = match self.phases.iter_mut().find(|(name, _)| *name == phase) {
            Some((_, stat)) => stat,
            None => {
                self.phases.push((phase, PhaseStat::default()));
                &mut self.phases.last_mut().expect("just pushed").1
            }
        };
        stat.calls += 1;
        stat.total_us += elapsed_us;
        stat.max_us = stat.max_us.max(elapsed_us);
    }

    /// Phases in first-call order with their accumulated stats.
    pub fn phases(&self) -> &[(&'static str, PhaseStat)] {
        &self.phases
    }

    /// Total wall time across all phases, µs.
    pub fn total_us(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s.total_us).sum()
    }

    /// Exports every phase as `profile.<phase>.{calls,total_us,max_us}`
    /// into the registry.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        for (name, stat) in &self.phases {
            registry.inc(&format!("profile.{name}.calls"), stat.calls);
            registry.set_gauge(&format!("profile.{name}.total_us"), stat.total_us);
            registry.set_gauge(&format!("profile.{name}.max_us"), stat.max_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_charges_the_named_phase() {
        let mut prof = WallProfiler::new();
        let out = prof.time("hot_loop", || {
            // A little real work so elapsed > 0 on any clock resolution.
            (0..10_000u64).map(|i| i.wrapping_mul(i)).sum::<u64>()
        });
        assert!(out > 0);
        let (name, stat) = prof.phases()[0];
        assert_eq!(name, "hot_loop");
        assert_eq!(stat.calls, 1);
        assert!(stat.total_us >= 0.0 && stat.max_us <= stat.total_us + 1e-9);
    }

    #[test]
    fn phases_keep_first_call_order_and_accumulate() {
        let mut prof = WallProfiler::new();
        prof.add("b", 5.0);
        prof.add("a", 3.0);
        prof.add("b", 7.0);
        let names: Vec<&str> = prof.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "a"]);
        let b = prof.phases()[0].1;
        assert_eq!(b.calls, 2);
        assert!((b.total_us - 12.0).abs() < 1e-12);
        assert_eq!(b.max_us, 7.0);
        assert!((prof.total_us() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn export_writes_registry_entries() {
        let mut prof = WallProfiler::new();
        prof.add("w_pass", 100.0);
        prof.add("w_pass", 50.0);
        let mut reg = MetricsRegistry::new();
        prof.export_metrics(&mut reg);
        assert_eq!(reg.counter("profile.w_pass.calls"), 2);
        assert_eq!(reg.gauge("profile.w_pass.total_us"), Some(150.0));
        assert_eq!(reg.gauge("profile.w_pass.max_us"), Some(100.0));
    }
}
