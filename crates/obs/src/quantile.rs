//! Online quantile estimation for live service times.
//!
//! The fleet's schedulers see one number per shard (the live
//! `ShardView::service_us` estimate); the mean (or EWMA) is a fine
//! centre estimate but says nothing about the tail — and tail latency is
//! what serving SLOs are written against. Storing every observation to
//! compute a real percentile would grow without bound under heavy
//! traffic, so the serving stack uses the **P² algorithm**
//! (Jain & Chlamtac, 1985): a constant-space estimator that tracks one
//! quantile with five *markers* — height/position pairs that are nudged
//! toward their ideal rank positions with every observation, using a
//! piecewise-parabolic (hence "P²") interpolation between neighbours.
//! Five floats of state, O(1) per sample, no samples retained.

/// A streaming estimate of one quantile of an unbounded observation
/// sequence (the P² algorithm — constant space, one update per sample).
///
/// # Example
///
/// ```
/// use sparsenn_obs::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 0..101 {
///     q.observe(f64::from(i));
/// }
/// let est = q.estimate();
/// assert!((est - 50.0).abs() < 5.0, "median of 0..=100 is 50, got {est}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct P2Quantile {
    /// The tracked quantile, in `(0, 1)`.
    p: f64,
    /// Observations seen so far.
    count: u64,
    /// Marker heights (the first `count` entries, sorted, during warmup).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
}

impl P2Quantile {
    /// Builds a tracker for quantile `p` (clamped to `[0.01, 0.999]`).
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.01, 0.999);
        Self {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Forgets every observation, keeping the tracked quantile — the
    /// tracker behaves exactly like a fresh [`P2Quantile::new`] with the
    /// same `p`. The autoscaler resets its latency tracker at every epoch
    /// boundary so each scale decision sees only the epoch it judges,
    /// not the whole run's history.
    pub fn reset(&mut self) {
        *self = Self::new(self.p);
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation into the estimate.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Warmup: keep the first five observations sorted in place.
            let mut i = self.count as usize;
            self.q[i] = x;
            while i > 0 && self.q[i - 1] > self.q[i] {
                self.q.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        self.count += 1;
        // Cell k the observation falls into; extremes absorb outliers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x.max(self.q[4]);
            3
        } else {
            // q[k] <= x < q[k+1] for some k in 0..=3.
            (0..4).rfind(|&i| self.q[i] <= x).unwrap_or(0)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let dnp = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (np, d) in self.np.iter_mut().zip(dnp) {
            *np += d;
        }
        // Nudge the three middle markers toward their desired ranks.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// Folds another tracker's state into this one, as if (approximately)
    /// this tracker had seen both observation streams.
    ///
    /// Exactness contract (the basis of `LatencyStat::merge`
    /// aggregation, see `crates/obs/src/latency.rs`):
    ///
    /// * the merged `count` is exact;
    /// * the merged extremes are exact — P²'s outer markers are running
    ///   min/max, so the merged `q[0]`/`q[4]` are the true min/max of
    ///   the union;
    /// * when either side is still in its warm-up buffer (< 5 samples),
    ///   its raw samples are replayed into the other side — no
    ///   information is lost;
    /// * when both sides are warmed, the middle markers are rebuilt by
    ///   **weighted-marker interpolation**: each side's five markers
    ///   become mass points (marker height, observations it stands for),
    ///   the ten points are sorted by height, and the merged marker
    ///   heights are read off the piecewise-linear weighted quantile
    ///   function at the ideal P² rank positions for the combined count.
    ///   This is a documented approximation — quantile sketches cannot
    ///   merge exactly in constant space — but it is deterministic,
    ///   keeps markers monotone, and converges with the same error
    ///   profile as the underlying P² estimate.
    ///
    /// Both trackers should track the same quantile; merging trackers
    /// with different `p` keeps `self`'s target and is best-effort.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            // Adopt the other side's markers wholesale (its np targets
            // are the ideal positions for a same-p tracker).
            self.q = other.q;
            self.n = other.n;
            self.np = other.np;
            self.count = other.count;
            return;
        }
        if other.count < 5 {
            // The other side never left warm-up: replay its raw samples.
            for &x in &other.q[..other.count as usize] {
                self.observe(x);
            }
            return;
        }
        if self.count < 5 {
            // Symmetric case: adopt the warmed side, replay our buffer.
            let (buf, len) = (self.q, self.count as usize);
            self.q = other.q;
            self.n = other.n;
            self.np = other.np;
            self.count = other.count;
            for &x in &buf[..len] {
                self.observe(x);
            }
            return;
        }
        // Both warmed: weighted-marker interpolation. Marker i stands
        // for the observations between the rank midpoints of its
        // neighbours, so the five weights of one tracker sum to its
        // count.
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(10);
        let mut push_markers = |q: &[f64; 5], n: &[f64; 5]| {
            let b = [
                (n[0] + n[1]) / 2.0,
                (n[1] + n[2]) / 2.0,
                (n[2] + n[3]) / 2.0,
                (n[3] + n[4]) / 2.0,
            ];
            let w = [
                b[0] - (n[0] - 0.5),
                b[1] - b[0],
                b[2] - b[1],
                b[3] - b[2],
                (n[4] + 0.5) - b[3],
            ];
            for i in 0..5 {
                pts.push((q[i], w[i].max(0.0)));
            }
        };
        push_markers(&self.q, &self.n);
        push_markers(&other.q, &other.n);
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Cumulative mass centre of each point, for piecewise-linear
        // interpolation of the weighted quantile function.
        let mut cum = 0.0;
        let centers: Vec<(f64, f64)> = pts
            .iter()
            .map(|&(h, w)| {
                let c = cum + w / 2.0;
                cum += w;
                (c, h)
            })
            .collect();
        let height_at = |mass: f64| -> f64 {
            if mass <= centers[0].0 {
                return centers[0].1;
            }
            for pair in centers.windows(2) {
                let ((c0, h0), (c1, h1)) = (pair[0], pair[1]);
                if mass <= c1 {
                    if c1 - c0 <= f64::EPSILON {
                        return h1;
                    }
                    return h0 + (h1 - h0) * (mass - c0) / (c1 - c0);
                }
            }
            centers[centers.len() - 1].1
        };
        let total = self.count + other.count;
        let (m, p) = (total as f64, self.p);
        // Ideal P² marker rank positions for a count-m stream — exactly
        // where `observe`'s np increments would have put them.
        let ideal = [
            1.0,
            1.0 + (m - 1.0) * p / 2.0,
            1.0 + (m - 1.0) * p,
            1.0 + (m - 1.0) * (1.0 + p) / 2.0,
            m,
        ];
        let mut q = [0.0; 5];
        for i in 0..5 {
            q[i] = height_at(ideal[i] - 0.5);
        }
        // The outer markers are running extremes — take them exactly.
        q[0] = self.q[0].min(other.q[0]);
        q[4] = self.q[4].max(other.q[4]);
        for i in 1..5 {
            q[i] = q[i].max(q[i - 1]);
        }
        // Strictly increasing integer-valued positions at the ideals
        // (total >= 10 here, so there is always room).
        let mut n = [1.0, 0.0, 0.0, 0.0, m];
        for i in 1..4 {
            n[i] = ideal[i].round().clamp(n[i - 1] + 1.0, m - (4 - i) as f64);
        }
        self.q = q;
        self.n = n;
        self.np = ideal;
        self.count = total;
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola would break marker monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate.
    ///
    /// # Warm-up and degenerate streams
    ///
    /// The P² markers only exist from the fifth observation on, so the
    /// estimate has three regimes:
    ///
    /// * **0 observations** — 0.0 (there is nothing to estimate; callers
    ///   that must distinguish "no data" from "estimate 0" check
    ///   [`count`](Self::count));
    /// * **1–4 observations** — the nearest-rank quantile of the sorted
    ///   warm-up buffer (exact for the samples seen; a single sample is
    ///   every quantile);
    /// * **5+ observations** — the middle P² marker.
    ///
    /// A **constant-valued stream** collapses all five markers onto the
    /// same height; the parabolic/linear marker moves keep returning that
    /// height (marker *positions* stay distinct integers, so no division
    /// by zero), and the estimate is exactly the constant.
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            c if c < 5 => {
                let idx = ((c - 1) as f64 * self.p).round() as usize;
                self.q[idx.min(c as usize - 1)]
            }
            _ => self.q[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform stream in [0, 100).
    fn stream(n: usize) -> impl Iterator<Item = f64> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        (0..n).map(move |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
    }

    #[test]
    fn before_any_observation_the_estimate_is_zero() {
        assert_eq!(P2Quantile::new(0.95).estimate(), 0.0);
        assert_eq!(P2Quantile::new(0.95).count(), 0);
    }

    #[test]
    fn warmup_uses_the_sorted_buffer() {
        let mut q = P2Quantile::new(0.5);
        for x in [30.0, 10.0, 20.0] {
            q.observe(x);
        }
        assert_eq!(q.estimate(), 20.0, "median of {{10,20,30}}");
        let mut hi = P2Quantile::new(0.99);
        hi.observe(5.0);
        assert_eq!(hi.estimate(), 5.0, "one sample is every quantile");
    }

    #[test]
    fn converges_on_a_uniform_stream() {
        for (p, want) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
            let mut q = P2Quantile::new(p);
            for x in stream(20_000) {
                q.observe(x);
            }
            let est = q.estimate();
            assert!(
                (est - want).abs() < 3.0,
                "p{}: estimate {est} vs true {want}",
                p * 100.0
            );
        }
    }

    #[test]
    fn tracks_the_tail_not_the_mean() {
        // 95% of samples at 10, 5% at 1000: mean ≈ 59.5, p99 ≈ 1000.
        let mut p99 = P2Quantile::new(0.99);
        let mut mean = 0.0;
        for i in 0..2000 {
            let x = if i % 20 == 19 { 1000.0 } else { 10.0 };
            p99.observe(x);
            mean += x / 2000.0;
        }
        assert!(mean < 70.0);
        assert!(
            p99.estimate() > 500.0,
            "p99 {} must sit in the tail",
            p99.estimate()
        );
    }

    #[test]
    fn quantile_is_clamped_and_exposed() {
        assert_eq!(P2Quantile::new(2.0).quantile(), 0.999);
        assert_eq!(P2Quantile::new(-1.0).quantile(), 0.01);
        assert_eq!(P2Quantile::new(0.9).quantile(), 0.9);
    }

    /// The documented warm-up regime: exact nearest-rank estimates for
    /// every sample count below five, across quantiles.
    #[test]
    fn warmup_below_five_samples_is_exact_nearest_rank() {
        let samples = [40.0, 10.0, 30.0, 20.0];
        for n in 1..=4usize {
            let mut sorted: Vec<f64> = samples[..n].to_vec();
            sorted.sort_by(f64::total_cmp);
            for p in [0.01, 0.5, 0.95, 0.99] {
                let mut q = P2Quantile::new(p);
                for &x in &samples[..n] {
                    q.observe(x);
                }
                let idx = ((n - 1) as f64 * p).round() as usize;
                assert_eq!(
                    q.estimate(),
                    sorted[idx.min(n - 1)],
                    "n={n} p={p}: warm-up estimate must be the nearest-rank \
                     quantile of the sorted buffer"
                );
            }
        }
    }

    /// A constant-valued stream collapses every marker to the constant:
    /// the estimate is exact, no marker move divides by zero, and the
    /// positions stay strictly increasing integers.
    #[test]
    fn constant_stream_collapses_markers_without_breaking() {
        for p in [0.5, 0.9, 0.99] {
            let mut q = P2Quantile::new(p);
            for _ in 0..10_000 {
                q.observe(42.0);
                let est = q.estimate();
                assert!(est.is_finite(), "p{p}: estimate must stay finite");
                assert_eq!(est, 42.0, "p{p}: constant stream estimates the constant");
            }
            for w in q.n.windows(2) {
                assert!(
                    w[0] < w[1],
                    "marker positions must stay strictly increasing: {:?}",
                    q.n
                );
            }
            // A late outlier is absorbed without disturbing the middle.
            q.observe(1e9);
            assert!(q.estimate().is_finite());
        }
    }

    /// `reset` returns the tracker to its pristine state (the autoscaler
    /// reuses one allocation across epochs).
    #[test]
    fn reset_restores_a_pristine_tracker() {
        let mut q = P2Quantile::new(0.95);
        for x in stream(1000) {
            q.observe(x);
        }
        assert!(q.count() == 1000 && q.estimate() > 0.0);
        q.reset();
        assert_eq!(q, P2Quantile::new(0.95), "reset == fresh tracker");
        assert_eq!(q.count(), 0);
        assert_eq!(q.estimate(), 0.0);
        assert_eq!(q.quantile(), 0.95, "the tracked quantile survives");
        // The reused tracker estimates the new epoch, not the old one.
        for _ in 0..100 {
            q.observe(7.0);
        }
        assert_eq!(q.estimate(), 7.0);
    }

    #[test]
    fn merge_with_empty_sides_is_lossless() {
        let mut full = P2Quantile::new(0.9);
        for x in stream(500) {
            full.observe(x);
        }
        let mut a = full;
        a.merge(&P2Quantile::new(0.9));
        assert_eq!(a, full, "merging an empty tracker changes nothing");
        let mut b = P2Quantile::new(0.9);
        b.merge(&full);
        assert_eq!(b.count(), full.count());
        assert_eq!(b.estimate(), full.estimate(), "empty adopts the full side");
    }

    #[test]
    fn merge_replays_warmup_buffers_exactly() {
        // other in warm-up: its raw samples are replayed (the warm-up
        // buffer is kept sorted, so the replay order is sorted), so the
        // merge equals observing those samples directly.
        let mut merged = P2Quantile::new(0.5);
        let mut direct = P2Quantile::new(0.5);
        for x in stream(100) {
            merged.observe(x);
            direct.observe(x);
        }
        let mut small = P2Quantile::new(0.5);
        for x in [3.0, 1.0, 2.0] {
            small.observe(x);
        }
        for x in [1.0, 2.0, 3.0] {
            direct.observe(x);
        }
        merged.merge(&small);
        assert_eq!(merged, direct, "warm-up replay is sample-exact");
        // self in warm-up, other warmed: counts and extremes survive.
        let mut tiny = P2Quantile::new(0.5);
        tiny.observe(-50.0);
        let mut big = P2Quantile::new(0.5);
        for x in stream(64) {
            big.observe(x);
        }
        tiny.merge(&big);
        assert_eq!(tiny.count(), 65);
        assert_eq!(tiny.q[0], -50.0, "replayed minimum lands in q[0]");
    }

    /// The documented merge contract on warmed trackers: exact count and
    /// extremes, estimate close to the single-stream estimate.
    #[test]
    fn merge_of_two_halves_tracks_the_single_stream() {
        for p in [0.5, 0.9, 0.99] {
            let all: Vec<f64> = stream(20_000).collect();
            let mut single = P2Quantile::new(p);
            let mut lo = P2Quantile::new(p);
            let mut hi = P2Quantile::new(p);
            for (i, &x) in all.iter().enumerate() {
                single.observe(x);
                if i % 2 == 0 {
                    lo.observe(x);
                } else {
                    hi.observe(x);
                }
            }
            let mut merged = lo;
            merged.merge(&hi);
            assert_eq!(merged.count(), single.count(), "count is exact");
            assert_eq!(merged.q[0], single.q[0], "min is exact");
            assert_eq!(merged.q[4], single.q[4], "max is exact");
            let (est, want) = (merged.estimate(), p * 100.0);
            assert!(
                (est - want).abs() < 4.0,
                "p{}: merged estimate {est} strays from true {want}",
                p * 100.0
            );
            for w in merged.n.windows(2) {
                assert!(w[0] < w[1], "positions stay strictly increasing");
            }
            for w in merged.q.windows(2) {
                assert!(w[0] <= w[1], "heights stay monotone");
            }
            // The merged tracker keeps estimating sanely as a stream.
            for x in stream(1000) {
                merged.observe(x);
            }
            assert!((merged.estimate() - want).abs() < 5.0);
        }
    }

    #[test]
    fn markers_stay_ordered_under_adversarial_input() {
        let mut q = P2Quantile::new(0.9);
        // Alternating extremes with a drifting ramp.
        for i in 0..5000 {
            let x = match i % 3 {
                0 => f64::from(i),
                1 => 0.0,
                _ => 1e6,
            };
            q.observe(x);
            if q.count() >= 5 {
                for w in q.q.windows(2) {
                    assert!(w[0] <= w[1], "marker heights out of order: {:?}", q.q);
                }
            }
        }
    }
}
