//! Fixed-capacity time-windowed metric rings.
//!
//! A [`WindowSeries`] buckets a stream of timestamped observations into
//! consecutive virtual-time windows of a fixed width, keeping per-window
//! counter deltas (events, good events) and a [`LatencyStat`] snapshot
//! of any latency samples that landed in the window. Capacity is fixed
//! at construction: when a new window opens beyond it, the oldest
//! bucket is evicted (counted, like `RingRecorder`'s drop counter, so
//! truncation is visible). The ring is what the burn-rate monitor
//! (`BurnRateMonitor`, in the sibling `slo` module) reads its fast/slow
//! windows from, and what a dashboard would render as a rate/latency
//! time series.

use crate::latency::LatencyStat;

/// One window's worth of accumulated observations.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowBucket {
    /// Window index: the bucket covers
    /// `[index * window_us, (index + 1) * window_us)` of virtual time.
    pub index: u64,
    /// Events observed in the window.
    pub events: u64,
    /// Events flagged good (e.g. deadline met) in the window.
    pub good: u64,
    /// Latency samples that carried a measurement (may be fewer than
    /// `events` — counter-only observations don't feed the stat).
    pub latency: LatencyStat,
}

impl WindowBucket {
    fn new(index: u64) -> Self {
        Self {
            index,
            events: 0,
            good: 0,
            latency: LatencyStat::new(),
        }
    }

    /// Events not flagged good.
    pub fn missed(&self) -> u64 {
        self.events - self.good
    }
}

/// A bounded ring of consecutive time windows (see module docs).
#[derive(Clone, Debug)]
pub struct WindowSeries {
    window_us: f64,
    capacity: usize,
    /// Buckets in strictly increasing `index` order. Only touched
    /// windows materialize — quiet gaps cost nothing.
    buckets: Vec<WindowBucket>,
    evicted: u64,
    late: u64,
}

impl WindowSeries {
    /// A series of `window_us`-wide buckets keeping at most `capacity`
    /// of them (minimum 1 each; the window width is clamped to a
    /// positive minimum so indexing stays finite).
    pub fn new(window_us: f64, capacity: usize) -> Self {
        Self {
            window_us: if window_us.is_finite() && window_us > 1e-9 {
                window_us
            } else {
                1e-9
            },
            capacity: capacity.max(1),
            buckets: Vec::new(),
            evicted: 0,
            late: 0,
        }
    }

    /// The bucket width, µs.
    pub fn window_us(&self) -> f64 {
        self.window_us
    }

    /// Most buckets retained at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Window index a timestamp falls into.
    pub fn index_of(&self, t_us: f64) -> u64 {
        (t_us.max(0.0) / self.window_us) as u64
    }

    /// Folds in one event at `t_us` with a latency measurement.
    pub fn observe(&mut self, t_us: f64, latency_us: f64, good: bool) {
        if let Some(bucket) = self.bucket_at(self.index_of(t_us)) {
            bucket.events += 1;
            bucket.good += u64::from(good);
            bucket.latency.observe(latency_us);
        }
    }

    /// Folds in one counter-only event at `t_us` (no latency sample).
    pub fn count(&mut self, t_us: f64, good: bool) {
        if let Some(bucket) = self.bucket_at(self.index_of(t_us)) {
            bucket.events += 1;
            bucket.good += u64::from(good);
        }
    }

    /// The bucket for `index`, creating (and evicting) as needed.
    /// Returns `None` — and counts the event as late — when `index`
    /// predates the oldest retained bucket, which can only happen after
    /// an eviction (the virtual clocks driving a series are
    /// non-decreasing per stream, but two streams may interleave).
    fn bucket_at(&mut self, index: u64) -> Option<&mut WindowBucket> {
        if let Some(oldest) = self.buckets.first() {
            if index < oldest.index {
                self.late += 1;
                return None;
            }
        }
        // Find the insertion point from the back — observations arrive
        // in (nearly) non-decreasing time order, so this is O(1) on the
        // hot path.
        let mut pos = self.buckets.len();
        while pos > 0 && self.buckets[pos - 1].index > index {
            pos -= 1;
        }
        if pos == 0 || self.buckets[pos - 1].index != index {
            self.buckets.insert(pos, WindowBucket::new(index));
            if self.buckets.len() > self.capacity {
                self.buckets.remove(0);
                self.evicted += 1;
                if pos == 0 {
                    // The bucket we just made was the one evicted.
                    self.late += 1;
                    return None;
                }
                pos -= 1;
            }
        } else {
            pos -= 1;
        }
        Some(&mut self.buckets[pos])
    }

    /// Retained buckets, oldest first.
    pub fn buckets(&self) -> &[WindowBucket] {
        &self.buckets
    }

    /// Buckets evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Observations dropped because their window was already evicted.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// `(events, good)` summed over the retained buckets that overlap
    /// `[now_us - span_us, now_us]` — the sliding-window read the burn
    /// monitor takes. Bucketed, so the window edge quantizes to bucket
    /// boundaries: a bucket counts when it ends after the window start
    /// and starts at or before `now_us`.
    pub fn window_totals(&self, now_us: f64, span_us: f64) -> (u64, u64) {
        let from = now_us - span_us.max(0.0);
        let (mut events, mut good) = (0, 0);
        for b in &self.buckets {
            let start = b.index as f64 * self.window_us;
            let end = start + self.window_us;
            if end > from && start <= now_us {
                events += b.events;
                good += b.good;
            }
        }
        (events, good)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_their_windows() {
        let mut s = WindowSeries::new(10.0, 8);
        s.observe(0.0, 5.0, true);
        s.observe(9.999, 7.0, false);
        s.observe(10.0, 3.0, true);
        s.count(25.0, true);
        let b = s.buckets();
        assert_eq!(b.len(), 3);
        assert_eq!((b[0].index, b[0].events, b[0].good), (0, 2, 1));
        assert_eq!(b[0].missed(), 1);
        assert_eq!(b[0].latency.count(), 2);
        assert_eq!((b[1].index, b[1].events), (1, 1));
        assert_eq!((b[2].index, b[2].events), (2, 1));
        assert_eq!(b[2].latency.count(), 0, "counter-only event");
        assert_eq!(s.evicted(), 0);
        assert_eq!(s.late(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_late_arrivals() {
        let mut s = WindowSeries::new(1.0, 3);
        for t in 0..5 {
            s.count(t as f64, true);
        }
        let kept: Vec<u64> = s.buckets().iter().map(|b| b.index).collect();
        assert_eq!(kept, vec![2, 3, 4], "newest three windows survive");
        assert_eq!(s.evicted(), 2);
        s.count(0.5, true); // window 0 is long gone
        assert_eq!(s.late(), 1);
        assert_eq!(s.buckets().len(), 3, "late arrival creates nothing");
    }

    #[test]
    fn quiet_gaps_cost_no_buckets() {
        let mut s = WindowSeries::new(1.0, 4);
        s.count(0.0, true);
        s.count(1000.0, true);
        assert_eq!(s.buckets().len(), 2, "only touched windows materialize");
        assert_eq!(s.evicted(), 0, "a gap is not an eviction");
    }

    #[test]
    fn window_totals_slide_over_the_ring() {
        let mut s = WindowSeries::new(10.0, 16);
        for i in 0..10u64 {
            let good = i % 2 == 0;
            s.count(i as f64 * 10.0 + 5.0, good);
        }
        assert_eq!(s.window_totals(95.0, 1000.0), (10, 5), "everything");
        // Span 30 ending at 95: window start 65 falls inside bucket 6
        // ([60, 70)), and edges quantize to whole buckets — 6..=9.
        assert_eq!(s.window_totals(95.0, 30.0), (4, 2));
        assert_eq!(s.window_totals(95.0, 0.0), (1, 0), "just the live bucket");
        assert_eq!(s.window_totals(-5.0, 10.0), (0, 0), "before time zero");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let s = WindowSeries::new(0.0, 0);
        assert!(s.window_us() > 0.0);
        assert_eq!(s.capacity(), 1);
        let mut s = WindowSeries::new(f64::NAN, 2);
        s.count(1.0, true); // finite indexing even with a NaN width ask
        assert_eq!(s.buckets().len(), 1);
    }
}
