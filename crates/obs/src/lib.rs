//! # sparsenn-obs — the observability plane
//!
//! Every other crate in this workspace *simulates*; this one *watches*.
//! It is the common vocabulary for what a run did — typed trace spans
//! on the virtual clock, unified latency statistics, a named metrics
//! registry, wall-clock profiling — and the exporters that turn a run
//! into artifacts (a Perfetto-loadable Chrome trace, a flat metrics
//! snapshot) a person or a CI job can read.
//!
//! The crate depends on nothing in the workspace, so every layer can
//! emit into it: the front end traces admission → hedge → completion,
//! the serving simulator traces arrival → batch → service, the fleet
//! traces per-shard attempts, and the partitioned machine traces
//! per-chip broadcast/VU/W/gather slices — all correlated by one
//! `trace_id` per request.
//!
//! ## Capturing a trace
//!
//! ```
//! use sparsenn_obs::{chrome_trace, AttrKey, RingRecorder, Span, SpanKind, TraceSink, track};
//!
//! let recorder = RingRecorder::new(1 << 16);
//! if recorder.enabled() {
//!     recorder.record(
//!         Span::new(1, SpanKind::Attempt, track::FLEET, 1, 0.0, 42.0).attr(AttrKey::Shard, 0u64),
//!     );
//! }
//! let trace = chrome_trace(&recorder.spans());
//! assert!(trace.contains("\"ph\":\"X\""));
//! // Write `trace` to a .json file and open it at https://ui.perfetto.dev
//! ```
//!
//! Instrumented entry points take a `&dyn TraceSink`; passing
//! [`NullSink`] disables tracing at the cost of one virtual call per
//! would-be span (the obs bench holds that to ≤ 1% overhead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod exemplar;
mod export;
mod latency;
mod quantile;
mod registry;
mod series;
mod sink;
mod slo;
mod span;
mod timer;

pub use analyze::{
    analyze, breakdown_report, ChipDetail, LatencyBreakdown, PathStep, Phase, RequestBreakdown,
    TraceAnalysis, PHASES,
};
pub use exemplar::{offline_top_k, Exemplar, TailExemplars};
pub use export::{check_nesting, chrome_trace};
pub use latency::{LatencyStat, LatencyStats};
pub use quantile::P2Quantile;
pub use registry::MetricsRegistry;
pub use series::{WindowBucket, WindowSeries};
pub use sink::{NullSink, RingRecorder, SpanBuffer, Tee, TraceSink};
pub use slo::{AlertKind, BurnAlert, BurnConfig, BurnRateMonitor};
pub use span::{track, AttrKey, AttrValue, Attrs, Span, SpanKind, MAX_ATTRS};
pub use timer::{PhaseStat, WallProfiler};
