//! Tail exemplars: the K slowest requests' full span sets, online.
//!
//! A p99 number says the tail is slow; an **exemplar** explains it with
//! a concrete trace. [`TailExemplars`] is a `TraceSink` that watches a
//! span stream live and keeps, in bounded memory, the complete span
//! sets of the K slowest requests seen so far — exact, not sampled:
//! the kept set always equals what an offline sort of every request by
//! latency would keep ([`offline_top_k`] is that oracle, and the bench
//! asserts the two match span for span).
//!
//! Mechanics: spans for an in-flight request accumulate in a pending
//! table until its `Request` span arrives (request spans are emitted at
//! the terminal outcome, so the request's duration — its latency — is
//! known at that moment). The finished set then competes for a
//! reservoir slot ordered by (latency desc, trace id asc); outside the
//! top K it is discarded on the spot. Spans arriving *after* their
//! request closed (the machine re-run traces chip detail post hoc)
//! append to the kept exemplar if the request survived. The pending
//! table is itself bounded, evicting oldest-first with a drop counter —
//! the same discipline as `RingRecorder` — so batch-keyed spans that
//! never see a `Request` span cannot grow it without bound.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::sink::TraceSink;
use crate::span::{Span, SpanKind};

/// One kept exemplar: a finished request's latency and full span set.
#[derive(Clone, Debug, PartialEq)]
pub struct Exemplar {
    /// The request's trace id.
    pub trace_id: u64,
    /// The request span's duration, µs — the latency it is ranked by.
    pub latency_us: f64,
    /// Every span recorded for the trace id, in arrival order (the
    /// `Request` span sits where it arrived — last, for live streams).
    pub spans: Vec<Span>,
}

/// Reservoir ordering: slowest first, ties broken by trace id so the
/// kept set is a total order independent of arrival order.
fn rank(latency_us: f64, trace_id: u64, e: &Exemplar) -> std::cmp::Ordering {
    // Ordering of element `e` against the candidate in the reservoir's
    // sort order (latency desc, id asc): a slower element sorts first.
    latency_us
        .total_cmp(&e.latency_us)
        .then(e.trace_id.cmp(&trace_id))
}

/// The online top-K reservoir (see module docs). Interior-mutable, so
/// it records through `&self` like every other sink.
#[derive(Debug)]
pub struct TailExemplars {
    inner: Mutex<State>,
}

#[derive(Debug)]
struct State {
    k: usize,
    max_pending: usize,
    /// In-flight span sets, keyed by trace id.
    pending: BTreeMap<u64, Vec<Span>>,
    /// Pending insertion order, for oldest-first eviction. May hold
    /// stale ids (finished requests); eviction skips them.
    order: VecDeque<u64>,
    /// The reservoir, sorted slowest-first (ties: trace id asc).
    kept: Vec<Exemplar>,
    dropped_pending: u64,
}

impl TailExemplars {
    /// A reservoir keeping the `k` slowest requests (minimum 1). The
    /// pending table defaults to `max(4096, 4k)` in-flight requests;
    /// tune with [`with_pending_capacity`](Self::with_pending_capacity).
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Self {
            inner: Mutex::new(State {
                k,
                max_pending: 4096.max(4 * k),
                pending: BTreeMap::new(),
                order: VecDeque::new(),
                kept: Vec::with_capacity(k + 1),
                dropped_pending: 0,
            }),
        }
    }

    /// Bounds the pending table at `cap` in-flight requests (minimum 1).
    #[must_use]
    pub fn with_pending_capacity(self, cap: usize) -> Self {
        self.inner.lock().expect("exemplars poisoned").max_pending = cap.max(1);
        self
    }

    /// The reservoir size K.
    pub fn k(&self) -> usize {
        self.inner.lock().expect("exemplars poisoned").k
    }

    /// Exemplars kept so far, slowest first (ties: trace id asc). A
    /// snapshot — recording can continue afterwards.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.inner.lock().expect("exemplars poisoned").kept.clone()
    }

    /// Finished requests currently kept (≤ K).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("exemplars poisoned").kept.len()
    }

    /// Whether no request has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latency a new request must beat to enter a full reservoir
    /// (0 while it still has room).
    pub fn threshold_us(&self) -> f64 {
        let state = self.inner.lock().expect("exemplars poisoned");
        if state.kept.len() < state.k {
            0.0
        } else {
            state.kept.last().map_or(0.0, |e| e.latency_us)
        }
    }

    /// In-flight span sets evicted because the pending table was full
    /// (spans lost before their request finished).
    pub fn dropped_pending(&self) -> u64 {
        self.inner
            .lock()
            .expect("exemplars poisoned")
            .dropped_pending
    }
}

impl State {
    fn handle(&mut self, span: Span) {
        if span.kind == SpanKind::Request {
            let mut spans = self.pending.remove(&span.trace_id).unwrap_or_default();
            let (trace_id, latency_us) = (span.trace_id, span.duration_us());
            spans.push(span);
            let exemplar = Exemplar {
                trace_id,
                latency_us,
                spans,
            };
            let pos = self
                .kept
                .binary_search_by(|e| rank(latency_us, trace_id, e))
                .unwrap_or_else(|p| p);
            if pos < self.k {
                self.kept.insert(pos, exemplar);
                self.kept.truncate(self.k);
            }
            return;
        }
        if let Some(spans) = self.pending.get_mut(&span.trace_id) {
            spans.push(span);
            return;
        }
        if let Some(kept) = self.kept.iter_mut().find(|e| e.trace_id == span.trace_id) {
            // Post-completion detail (machine re-run) for a survivor.
            kept.spans.push(span);
            return;
        }
        // A new in-flight request (or a batch-keyed infrastructure span
        // that will never finish): open a pending entry, bounded.
        self.pending.insert(span.trace_id, vec![span]);
        self.order.push_back(span.trace_id);
        while self.pending.len() > self.max_pending {
            match self.order.pop_front() {
                Some(old) => {
                    if self.pending.remove(&old).is_some() {
                        self.dropped_pending += 1;
                    }
                }
                None => break,
            }
        }
    }
}

impl TraceSink for TailExemplars {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, span: Span) {
        self.inner.lock().expect("exemplars poisoned").handle(span);
    }

    fn record_many(&self, spans: &[Span]) {
        let mut state = self.inner.lock().expect("exemplars poisoned");
        for span in spans {
            state.handle(*span);
        }
    }
}

/// The offline oracle: group `spans` by trace id, rank every finished
/// request by its request-span duration, and keep the top `k` —
/// exactly the set (and order) a correct [`TailExemplars`] holds after
/// recording the same stream, provided its pending table never
/// overflowed.
pub fn offline_top_k(spans: &[Span], k: usize) -> Vec<Exemplar> {
    let mut by_id: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_id.entry(s.trace_id).or_default().push(*s);
    }
    let mut finished: Vec<Exemplar> = by_id
        .into_iter()
        .filter_map(|(trace_id, spans)| {
            let request = spans.iter().find(|s| s.kind == SpanKind::Request)?;
            Some(Exemplar {
                trace_id,
                latency_us: request.duration_us(),
                spans,
            })
        })
        .collect();
    finished.sort_by(|a, b| {
        a.latency_us
            .total_cmp(&b.latency_us)
            .reverse()
            .then(a.trace_id.cmp(&b.trace_id))
    });
    finished.truncate(k.max(1));
    finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::track;

    fn request(id: u64, start: f64, latency: f64) -> Vec<Span> {
        vec![
            Span::new(id, SpanKind::Queued, track::FRONTEND, 1, start, start + 1.0),
            Span::new(
                id,
                SpanKind::Attempt,
                track::FLEET,
                1,
                start + 1.0,
                start + latency,
            ),
            Span::new(
                id,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                start,
                start + latency,
            ),
        ]
    }

    #[test]
    fn keeps_the_k_slowest_with_full_span_sets() {
        let sink = TailExemplars::new(2);
        let latencies = [5.0, 30.0, 10.0, 20.0, 1.0];
        let mut all = Vec::new();
        for (i, &l) in latencies.iter().enumerate() {
            let spans = request(i as u64, i as f64 * 100.0, l);
            sink.record_many(&spans);
            all.extend(spans);
        }
        let kept = sink.exemplars();
        assert_eq!(kept.len(), 2);
        assert_eq!(
            (kept[0].trace_id, kept[0].latency_us),
            (1, 30.0),
            "slowest first"
        );
        assert_eq!((kept[1].trace_id, kept[1].latency_us), (3, 20.0));
        assert_eq!(kept[0].spans.len(), 3, "full span set survives");
        assert_eq!(
            kept[0].spans.last().map(|s| s.kind),
            Some(SpanKind::Request)
        );
        assert_eq!(sink.threshold_us(), 20.0);
        assert_eq!(kept, offline_top_k(&all, 2), "online == offline oracle");
        assert_eq!(sink.dropped_pending(), 0);
    }

    #[test]
    fn ties_break_on_trace_id_regardless_of_arrival_order() {
        let forward = TailExemplars::new(3);
        let backward = TailExemplars::new(3);
        let ids = [4u64, 1, 9, 2];
        for &id in &ids {
            forward.record_many(&request(id, 0.0, 10.0));
        }
        for &id in ids.iter().rev() {
            backward.record_many(&request(id, 0.0, 10.0));
        }
        let f: Vec<u64> = forward.exemplars().iter().map(|e| e.trace_id).collect();
        let b: Vec<u64> = backward.exemplars().iter().map(|e| e.trace_id).collect();
        assert_eq!(f, vec![1, 2, 4], "lowest ids win equal latencies");
        assert_eq!(f, b, "arrival order is irrelevant");
    }

    #[test]
    fn post_completion_spans_append_to_survivors_only() {
        let sink = TailExemplars::new(1);
        sink.record_many(&request(1, 0.0, 50.0));
        sink.record_many(&request(2, 0.0, 5.0)); // discarded: too fast
                                                 // Chip detail arrives after the requests closed.
        sink.record(Span::new(1, SpanKind::Vu, track::MACHINE, 1, 1.0, 2.0));
        sink.record(Span::new(2, SpanKind::Vu, track::MACHINE, 1, 1.0, 2.0));
        let kept = sink.exemplars();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].trace_id, 1);
        assert_eq!(kept[0].spans.len(), 4, "late chip span appended");
        // The id-2 chip span opened a pending entry that will never
        // finish — bounded, so that is safe, not a leak.
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn pending_table_is_bounded_with_a_drop_counter() {
        let sink = TailExemplars::new(1).with_pending_capacity(2);
        for id in 0..5u64 {
            sink.record(Span::new(
                id,
                SpanKind::Queued,
                track::FRONTEND,
                1,
                0.0,
                1.0,
            ));
        }
        assert_eq!(sink.dropped_pending(), 3, "oldest in-flight sets evicted");
        // The survivors (3, 4) can still finish.
        sink.record(Span::new(
            4,
            SpanKind::Request,
            track::FRONTEND,
            track::CONTROL,
            0.0,
            9.0,
        ));
        let kept = sink.exemplars();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].spans.len(), 2, "queued + request");
    }

    #[test]
    fn reservoir_of_k_zero_is_clamped_to_one() {
        let sink = TailExemplars::new(0);
        assert_eq!(sink.k(), 1);
        assert!(sink.is_empty());
        sink.record_many(&request(7, 0.0, 3.0));
        assert_eq!(sink.len(), 1);
        assert_eq!(offline_top_k(&request(7, 0.0, 3.0), 0).len(), 1);
    }
}
