//! Typed trace spans on the virtual clock.
//!
//! Every layer of the stack emits the same vocabulary: a [`Span`] is a
//! half-open interval `[start_us, end_us]` of virtual time, tagged with
//! a [`SpanKind`], a `trace_id` correlating it to one request (or one
//! batch / one layer, for infrastructure spans), a process/thread pair
//! locating it on a Perfetto track, and a small attribute list held
//! inline ([`Attrs`]). Spans are plain `Copy` data — recording one is
//! a memcpy behind a sink, never an allocation; the structure and
//! determinism live here, not in the recorder.

/// Which layer of the stack a span's `pid` represents. Perfetto renders
/// one process lane per value; the exporter names them.
pub mod track {
    /// The front end: admission, degrade batching, hedging, retries.
    pub const FRONTEND: u32 = 1;
    /// The serving simulator: arrival → batch assembly → service.
    pub const SERVE: u32 = 2;
    /// The fleet: per-shard attempt execution.
    pub const FLEET: u32 = 3;
    /// The partitioned machine: per-chip broadcast/VU/W/gather slices.
    pub const MACHINE: u32 = 4;

    /// Control-plane thread within a track (admission decisions, batch
    /// assembly) as opposed to per-shard / per-chip worker threads,
    /// which use `tid = 1 + index`.
    pub const CONTROL: u32 = 0;
    /// Inter-chip broadcast lane on the [`MACHINE`] track.
    pub const BROADCAST: u32 = 1000;
    /// Inter-chip gather lane on the [`MACHINE`] track.
    pub const GATHER: u32 = 1001;

    /// Human name of a process track (exporter metadata).
    pub fn name(pid: u32) -> &'static str {
        match pid {
            FRONTEND => "frontend",
            SERVE => "serve",
            FLEET => "fleet",
            MACHINE => "machine",
            _ => "unknown",
        }
    }
}

/// The kind of work a span covers. The name doubles as the Perfetto
/// event name; the category groups kinds for filtering in the UI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A request's whole life, admission to terminal outcome (async).
    Request,
    /// Zero-duration admission decision: admitted full-fidelity.
    Admit,
    /// Zero-duration admission decision: admitted degraded.
    Degrade,
    /// Zero-duration admission decision: shed at the door.
    Shed,
    /// Time an attempt waited in a queue before service (async).
    Queued,
    /// A degrade buffer's life from first arrival to flush (async).
    DegradeBatch,
    /// Zero-duration marker: a hedge attempt was issued.
    Hedge,
    /// Zero-duration marker: a queued attempt was cancelled.
    Cancel,
    /// Zero-duration marker: a retry attempt was issued after a fail.
    Retry,
    /// One attempt occupying one shard, start to completion.
    Attempt,
    /// A serve-layer batch from oldest arrival to dispatch (async).
    BatchAssembly,
    /// A serve-layer batch in service on a shard.
    Service,
    /// Inter-chip broadcast of a layer's input activations.
    Broadcast,
    /// Inter-chip gather of a layer's output slices.
    Gather,
    /// A chip's VU (vector unit) pass over one layer.
    Vu,
    /// A chip's W (weight read / MAC) pass over one layer.
    W,
}

impl SpanKind {
    /// Event name shown in Perfetto.
    pub fn name(self) -> &'static str {
        match self {
            Self::Request => "request",
            Self::Admit => "admit",
            Self::Degrade => "degrade",
            Self::Shed => "shed",
            Self::Queued => "queued",
            Self::DegradeBatch => "degrade_batch",
            Self::Hedge => "hedge",
            Self::Cancel => "cancel",
            Self::Retry => "retry",
            Self::Attempt => "attempt",
            Self::BatchAssembly => "batch_assembly",
            Self::Service => "service",
            Self::Broadcast => "broadcast",
            Self::Gather => "gather",
            Self::Vu => "vu",
            Self::W => "w",
        }
    }

    /// Perfetto category, for filtering whole families of events.
    pub fn category(self) -> &'static str {
        match self {
            Self::Request | Self::Admit | Self::Degrade | Self::Shed => "request",
            Self::Queued | Self::DegradeBatch | Self::BatchAssembly => "queue",
            Self::Hedge | Self::Cancel | Self::Retry => "recovery",
            Self::Attempt | Self::Service => "service",
            Self::Broadcast | Self::Gather => "interchip",
            Self::Vu | Self::W => "chip",
        }
    }

    /// Async kinds overlap freely on one track (a request outlives the
    /// attempts interleaved under it), so they export as Perfetto
    /// async begin/end pairs keyed by `trace_id` rather than complete
    /// duration events.
    pub fn is_async(self) -> bool {
        matches!(
            self,
            Self::Request | Self::Queued | Self::DegradeBatch | Self::BatchAssembly
        )
    }
}

/// One typed attribute value on a span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter (ids, sizes, cycle counts).
    U64(u64),
    /// Real-valued measurement (times, factors).
    F64(f64),
    /// Symbolic value (outcomes, class names).
    Str(&'static str),
}

impl From<u64> for AttrValue {
    #[inline]
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<f64> for AttrValue {
    #[inline]
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&'static str> for AttrValue {
    #[inline]
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}

/// The closed vocabulary of span attribute keys. Every emitter in the
/// stack names its attributes from this one enum, so the same concept
/// ("which shard", "which layer") is spelled identically on frontend,
/// serve, fleet, and machine spans — and a key costs one byte in the
/// span instead of a 16-byte string reference, which matters because
/// the tracing overhead oracle is bounded by span memory traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrKey {
    /// Attempt sequence number within one request (0 = primary).
    Attempt,
    /// Dispatch sequence number of the batch a request rode in.
    Batch,
    /// Requests flushed together from a degrade buffer.
    BatchSize,
    /// Chip index on a machine-track span (the analyzer attributes
    /// per-chip time without decoding thread lanes).
    Chip,
    /// Priority class of a request.
    Class,
    /// Whether a request was admitted at degraded fidelity (0/1).
    Degraded,
    /// Generic scale factor (exporter round-trip tests).
    Factor,
    /// Network layer index on a machine-track span.
    Layer,
    /// Multiply-accumulates performed in a W pass.
    Macs,
    /// Non-zero input activations entering a layer.
    NnzIn,
    /// Non-zero output activations leaving a layer.
    NnzOut,
    /// How an attempt was issued: primary, hedge, or retry.
    Origin,
    /// Terminal outcome of a request or attempt.
    Outcome,
    /// Shard index an attempt or batch landed on.
    Shard,
    /// Requests in a serve-layer batch.
    Size,
    /// Vector-unit cycles spent on a layer pass.
    VuCycles,
    /// Weight-path cycles spent on a layer pass.
    WCycles,
    /// Weight-memory reads performed in a W pass.
    WReads,
}

impl AttrKey {
    /// Key name rendered in Perfetto args.
    pub fn name(self) -> &'static str {
        match self {
            Self::Attempt => "attempt",
            Self::Batch => "batch",
            Self::BatchSize => "batch_size",
            Self::Chip => "chip",
            Self::Class => "class",
            Self::Degraded => "degraded",
            Self::Factor => "factor",
            Self::Layer => "layer",
            Self::Macs => "macs",
            Self::NnzIn => "nnz_in",
            Self::NnzOut => "nnz_out",
            Self::Origin => "origin",
            Self::Outcome => "outcome",
            Self::Shard => "shard",
            Self::Size => "size",
            Self::VuCycles => "vu_cycles",
            Self::WCycles => "w_cycles",
            Self::WReads => "w_reads",
        }
    }
}

/// Most attributes any one span carries (the widest emitter, the
/// per-chip W pass, uses all four). Bounding the list keeps [`Span`]
/// `Copy` and recording allocation-free — the overhead oracle in the
/// obs bench depends on the hot path never touching the allocator.
pub const MAX_ATTRS: usize = 4;

/// Inline attribute list: up to [`MAX_ATTRS`] `(key, value)` pairs held
/// by value, no heap. Keys and values are stored in separate arrays so
/// the one-byte [`AttrKey`]s pack together instead of each padding out
/// to a value slot. Pushes beyond the capacity are dropped (and panic
/// in debug builds) — attribute counts are static at every emit site,
/// so overflow is a bug, not a runtime condition.
#[derive(Clone, Copy, Debug)]
pub struct Attrs {
    len: u8,
    keys: [AttrKey; MAX_ATTRS],
    vals: [AttrValue; MAX_ATTRS],
}

impl Default for Attrs {
    fn default() -> Self {
        Self::new()
    }
}

impl Attrs {
    /// The empty list.
    pub fn new() -> Self {
        Self {
            len: 0,
            keys: [AttrKey::Attempt; MAX_ATTRS],
            vals: [AttrValue::U64(0); MAX_ATTRS],
        }
    }

    /// Appends one pair; silently dropped (debug-panics) when full.
    #[inline]
    pub fn push(&mut self, key: AttrKey, value: AttrValue) {
        let i = self.len as usize;
        debug_assert!(
            i < MAX_ATTRS,
            "span attribute list overflow: ({key:?}, {value:?})"
        );
        if i < MAX_ATTRS {
            self.keys[i] = key;
            self.vals[i] = value;
            self.len = self.len.saturating_add(1);
        }
    }

    /// Number of populated pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th pair in push order, if populated.
    #[inline]
    pub fn get(&self, i: usize) -> Option<(AttrKey, AttrValue)> {
        (i < self.len()).then(|| (self.keys[i], self.vals[i]))
    }

    /// The populated pairs in push order, by value.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (AttrKey, AttrValue)> + '_ {
        self.keys[..self.len()]
            .iter()
            .copied()
            .zip(self.vals[..self.len()].iter().copied())
    }
}

impl PartialEq for Attrs {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

/// One recorded interval of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Correlates the span to one request (or batch / layer for
    /// infrastructure spans) across every layer of the stack.
    pub trace_id: u64,
    /// What kind of work the interval covers.
    pub kind: SpanKind,
    /// Process track (see [`track`]).
    pub pid: u32,
    /// Thread lane within the track (shard/chip index + 1, or a
    /// [`track`] lane constant).
    pub tid: u32,
    /// Interval start, µs of virtual time.
    pub start_us: f64,
    /// Interval end, µs of virtual time (`== start_us` for markers).
    pub end_us: f64,
    /// Attribute list, rendered as Perfetto args. Static keys and the
    /// inline [`Attrs`] storage keep recording fully allocation-free.
    pub attrs: Attrs,
}

impl Span {
    /// Builds a span; `end_us` is clamped up to `start_us` so recorded
    /// durations are never negative even if a caller's clock arithmetic
    /// produces a tiny negative interval.
    #[inline]
    pub fn new(
        trace_id: u64,
        kind: SpanKind,
        pid: u32,
        tid: u32,
        start_us: f64,
        end_us: f64,
    ) -> Self {
        Self {
            trace_id,
            kind,
            pid,
            tid,
            start_us,
            end_us: end_us.max(start_us),
            attrs: Attrs::new(),
        }
    }

    /// Adds one attribute (builder-style).
    #[must_use]
    #[inline]
    pub fn attr(mut self, key: AttrKey, value: impl Into<AttrValue>) -> Self {
        self.attrs.push(key, value.into());
        self
    }

    /// Interval length, µs (never negative by construction).
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }

    /// First value recorded for `key`, if any.
    #[inline]
    pub fn attr_value(&self, key: AttrKey) -> Option<AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// First `U64` value recorded for `key` (`None` when absent or a
    /// different type).
    #[inline]
    pub fn attr_u64(&self, key: AttrKey) -> Option<u64> {
        match self.attr_value(key) {
            Some(AttrValue::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// First `Str` value recorded for `key` (`None` when absent or a
    /// different type).
    #[inline]
    pub fn attr_str(&self, key: AttrKey) -> Option<&'static str> {
        match self.attr_value(key) {
            Some(AttrValue::Str(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_clamped_non_negative() {
        let s = Span::new(7, SpanKind::Attempt, track::FLEET, 1, 10.0, 9.999);
        assert_eq!(s.duration_us(), 0.0);
        assert_eq!(s.end_us, s.start_us);
        let s = Span::new(7, SpanKind::Attempt, track::FLEET, 1, 10.0, 12.5);
        assert!((s.duration_us() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn attrs_build_in_order() {
        let s = Span::new(1, SpanKind::Service, track::SERVE, 2, 0.0, 1.0)
            .attr(AttrKey::Batch, 4u64)
            .attr(AttrKey::Outcome, "completed")
            .attr(AttrKey::Factor, 0.5f64);
        assert_eq!(s.attrs.len(), 3);
        assert!(!s.attrs.is_empty());
        assert_eq!(s.attrs.get(0), Some((AttrKey::Batch, AttrValue::U64(4))));
        assert_eq!(
            s.attrs.get(1),
            Some((AttrKey::Outcome, AttrValue::Str("completed")))
        );
        assert_eq!(s.attrs.get(2), Some((AttrKey::Factor, AttrValue::F64(0.5))));
        assert_eq!(s.attrs.get(3), None);
        let keys: Vec<&str> = s.attrs.iter().map(|(k, _)| k.name()).collect();
        assert_eq!(keys, ["batch", "outcome", "factor"]);
    }

    #[test]
    fn attr_lookup_finds_first_typed_match() {
        let s = Span::new(1, SpanKind::Attempt, track::FLEET, 1, 0.0, 1.0)
            .attr(AttrKey::Attempt, 2u64)
            .attr(AttrKey::Outcome, "completed")
            .attr(AttrKey::Shard, 3u64);
        assert_eq!(s.attr_u64(AttrKey::Attempt), Some(2));
        assert_eq!(s.attr_u64(AttrKey::Shard), Some(3));
        assert_eq!(s.attr_str(AttrKey::Outcome), Some("completed"));
        assert_eq!(s.attr_str(AttrKey::Attempt), None, "type mismatch");
        assert_eq!(s.attr_u64(AttrKey::Chip), None, "absent key");
    }

    #[test]
    fn async_kinds_are_the_overlapping_ones() {
        for k in [
            SpanKind::Request,
            SpanKind::Queued,
            SpanKind::DegradeBatch,
            SpanKind::BatchAssembly,
        ] {
            assert!(k.is_async(), "{:?}", k);
        }
        for k in [
            SpanKind::Attempt,
            SpanKind::Service,
            SpanKind::Vu,
            SpanKind::W,
        ] {
            assert!(!k.is_async(), "{:?}", k);
        }
    }

    #[test]
    fn names_and_categories_are_stable() {
        assert_eq!(SpanKind::Attempt.name(), "attempt");
        assert_eq!(SpanKind::Attempt.category(), "service");
        assert_eq!(SpanKind::Broadcast.category(), "interchip");
        assert_eq!(track::name(track::MACHINE), "machine");
        assert_eq!(track::name(99), "unknown");
    }
}
