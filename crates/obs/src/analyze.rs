//! Trace analytics: per-request critical paths and latency breakdowns.
//!
//! A recorded trace (any `TraceSink` capture) is a flat span list keyed
//! by `trace_id`. [`analyze`] reconstructs each request's span tree
//! from that key, walks the chain that actually determined the
//! response — degrade-batch hold → queue wait of the *winning* attempt
//! → that attempt's service — and attributes every microsecond of the
//! request span to one of four phases:
//!
//! * **hold** — time parked in a degrade buffer before dispatch;
//! * **queue** — the winning attempt's wait in a shard queue;
//! * **service** — the winning attempt occupying its shard;
//! * **other** — the residual (admission bookkeeping, the gap before a
//!   hedge was issued, time lost to failed attempts that the winner's
//!   chain does not cover).
//!
//! The winning attempt is the one whose outcome completed the request
//! (for failed requests, the last attempt standing); its queue span is
//! joined via the `attempt` attribute both spans carry. The **critical
//! path** is the hold → queue → service chain, clipped to the request
//! interval and de-overlapped in time order, so by construction it is
//! ≤ the request span and ≥ its longest constituent phase — the
//! invariants the bench oracles assert. Machine-track chip spans
//! (broadcast / VU / W / gather) that share the request's `trace_id`
//! are aggregated alongside as service detail.
//!
//! [`LatencyBreakdown`] aggregates the per-request breakdowns — overall,
//! per priority class, and per shard — and
//! [`breakdown_report`] renders the whole analysis as a deterministic
//! text report (fixed-precision floats, sorted keys): one seed, one
//! byte-exact report.

use std::collections::BTreeMap;

use crate::span::{AttrKey, Span, SpanKind};

/// The four request-level phases latency is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Degrade-buffer hold before dispatch.
    Hold,
    /// The winning attempt's queue wait.
    Queue,
    /// The winning attempt's service time.
    Service,
    /// Residual time the winner's chain does not cover.
    Other,
}

/// All phases, in attribution (and report) order.
pub const PHASES: [Phase; 4] = [Phase::Hold, Phase::Queue, Phase::Service, Phase::Other];

impl Phase {
    /// Stable lowercase name (report rendering, path signatures).
    pub fn name(self) -> &'static str {
        match self {
            Self::Hold => "hold",
            Self::Queue => "queue",
            Self::Service => "service",
            Self::Other => "other",
        }
    }
}

/// One step of a request's critical path: a phase occupying a clipped,
/// non-overlapping interval of the request span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStep {
    /// Which phase the step belongs to.
    pub phase: Phase,
    /// Step start, µs (≥ the request start and the previous step's end).
    pub start_us: f64,
    /// Step end, µs (≤ the request end).
    pub end_us: f64,
}

impl PathStep {
    /// Step length, µs.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Chip-level service detail: time in machine-track spans sharing the
/// request's `trace_id`, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChipDetail {
    /// Inter-chip broadcast time, µs (summed over chips/layers).
    pub broadcast_us: f64,
    /// Vector-unit pass time, µs.
    pub vu_us: f64,
    /// Weight-path pass time, µs.
    pub w_us: f64,
    /// Inter-chip gather time, µs.
    pub gather_us: f64,
}

impl ChipDetail {
    /// Total chip-attributed time, µs.
    pub fn total_us(&self) -> f64 {
        self.broadcast_us + self.vu_us + self.w_us + self.gather_us
    }
}

/// One request's latency attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestBreakdown {
    /// The request's trace id.
    pub trace_id: u64,
    /// Priority class from the request span (`"?"` when untagged).
    pub class: &'static str,
    /// Terminal outcome from the request span (`"?"` when untagged).
    pub outcome: &'static str,
    /// Shard the winning attempt ran on, when attributable.
    pub shard: Option<u32>,
    /// The request span's full duration, µs.
    pub total_us: f64,
    /// Time attributed to each of [`PHASES`], in that order. The
    /// first three clip to the request interval and never overlap, so
    /// their sum is ≤ `total_us`; `other` is the exact residual — the
    /// four always sum to `total_us`.
    pub phase_us: [f64; 4],
    /// The critical path: hold → queue → service steps with positive
    /// duration, in time order.
    pub path: Vec<PathStep>,
    /// Chip-span service detail for this trace id (zeros when the
    /// machine was not traced for this request).
    pub chip: ChipDetail,
}

impl RequestBreakdown {
    /// Critical-path length: the summed step durations, µs.
    pub fn critical_path_us(&self) -> f64 {
        self.path.iter().map(PathStep::duration_us).sum()
    }

    /// The longest single attributed phase (hold/queue/service — the
    /// path constituents), µs.
    pub fn max_phase_us(&self) -> f64 {
        self.phase_us[..3].iter().copied().fold(0.0, f64::max)
    }

    /// Sum over all four phases, µs (equals `total_us` up to rounding).
    pub fn phases_sum_us(&self) -> f64 {
        self.phase_us.iter().sum()
    }

    /// The path signature, e.g. `"hold>queue>service"` — the phases
    /// with positive duration, in order.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for step in &self.path {
            if !out.is_empty() {
                out.push('>');
            }
            out.push_str(step.phase.name());
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// Aggregated phase totals over a population of requests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Requests aggregated.
    pub requests: usize,
    /// Summed request durations, µs.
    pub total_us: f64,
    /// Summed per-phase attributions, µs, in [`PHASES`] order.
    pub phase_us: [f64; 4],
}

impl LatencyBreakdown {
    /// Folds one request in.
    pub fn add(&mut self, r: &RequestBreakdown) {
        self.requests += 1;
        self.total_us += r.total_us;
        for (acc, v) in self.phase_us.iter_mut().zip(r.phase_us) {
            *acc += v;
        }
    }

    /// A phase's share of the aggregate request time, percent (0 when
    /// the population is empty or all-zero).
    pub fn percent(&self, phase: Phase) -> f64 {
        let idx = PHASES.iter().position(|p| *p == phase).expect("in PHASES");
        if self.total_us <= 0.0 {
            0.0
        } else {
            100.0 * self.phase_us[idx] / self.total_us
        }
    }

    /// Mean request duration, µs.
    pub fn mean_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_us / self.requests as f64
        }
    }
}

/// The full analysis of one recorded trace.
#[derive(Clone, Debug, Default)]
pub struct TraceAnalysis {
    /// Per-request breakdowns, sorted by trace id.
    pub requests: Vec<RequestBreakdown>,
    /// Aggregate over every request.
    pub overall: LatencyBreakdown,
    /// Aggregates keyed by priority class (sorted — `BTreeMap`).
    pub per_class: BTreeMap<&'static str, LatencyBreakdown>,
    /// Aggregates keyed by winning shard, for requests attributable to
    /// one.
    pub per_shard: BTreeMap<u32, LatencyBreakdown>,
    /// Spans whose `trace_id` had no request span (serve-layer batch
    /// spans, machine spans of untraced requests) — counted so
    /// truncated or foreign traces are visible, never silent.
    pub orphan_spans: usize,
}

/// Reconstructs per-request span trees from a flat recording and
/// attributes every request's latency (see module docs). Deterministic:
/// the output depends only on the span list, not on map iteration or
/// timing.
pub fn analyze(spans: &[Span]) -> TraceAnalysis {
    let mut by_id: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_id.entry(s.trace_id).or_default().push(s);
    }
    let mut out = TraceAnalysis::default();
    for (trace_id, group) in by_id {
        let Some(request) = group.iter().find(|s| s.kind == SpanKind::Request) else {
            out.orphan_spans += group.len();
            continue;
        };
        let r = breakdown_one(trace_id, request, &group);
        out.overall.add(&r);
        out.per_class.entry(r.class).or_default().add(&r);
        if let Some(shard) = r.shard {
            out.per_shard.entry(shard).or_default().add(&r);
        }
        out.requests.push(r);
    }
    out
}

/// Attributes one request's latency from its span group.
fn breakdown_one(trace_id: u64, request: &Span, group: &[&Span]) -> RequestBreakdown {
    let class = request.attr_str(AttrKey::Class).unwrap_or("?");
    let outcome = request.attr_str(AttrKey::Outcome).unwrap_or("?");
    let total_us = request.duration_us();

    // The winning attempt: the one that completed the request, else the
    // last one standing (its failure is what terminated the request).
    // Ties break on the attempt sequence number, then span order.
    let winner = group
        .iter()
        .filter(|s| s.kind == SpanKind::Attempt)
        .max_by(|a, b| {
            let won = |s: &Span| s.attr_str(AttrKey::Outcome) == Some("completed");
            won(a)
                .cmp(&won(b))
                .then(a.end_us.total_cmp(&b.end_us))
                .then_with(|| {
                    // Prefer the *lower* attempt id on equal outcomes
                    // and end times (primary over hedge).
                    b.attr_u64(AttrKey::Attempt)
                        .unwrap_or(u64::MAX)
                        .cmp(&a.attr_u64(AttrKey::Attempt).unwrap_or(u64::MAX))
                })
        })
        .copied();
    // The winner's queue wait, joined on the attempt sequence number.
    let queued = winner
        .and_then(|w| {
            let id = w.attr_u64(AttrKey::Attempt)?;
            group
                .iter()
                .find(|s| s.kind == SpanKind::Queued && s.attr_u64(AttrKey::Attempt) == Some(id))
                .copied()
        })
        .or_else(|| {
            group
                .iter()
                .filter(|s| s.kind == SpanKind::Queued)
                .max_by(|a, b| a.end_us.total_cmp(&b.end_us))
                .copied()
        });
    let hold = group
        .iter()
        .find(|s| s.kind == SpanKind::DegradeBatch)
        .copied();
    let shard = winner
        .and_then(|w| {
            w.attr_u64(AttrKey::Shard)
                .or_else(|| u64::from(w.tid).checked_sub(1))
        })
        .or_else(|| queued.and_then(|q| q.attr_u64(AttrKey::Shard)))
        .or_else(|| request.attr_u64(AttrKey::Shard))
        .map(|s| s as u32);

    // Build the non-overlapping chain: each step clips to the request
    // interval and starts no earlier than the previous step's end, so
    // the path length can never exceed the request span.
    let mut path = Vec::with_capacity(3);
    let mut phase_us = [0.0; 4];
    let mut cursor = request.start_us;
    for (phase, span) in [
        (Phase::Hold, hold),
        (Phase::Queue, queued),
        (Phase::Service, winner),
    ] {
        let Some(span) = span else { continue };
        let start = span.start_us.clamp(cursor, request.end_us);
        let end = span.end_us.clamp(start, request.end_us);
        cursor = end;
        let idx = PHASES.iter().position(|p| *p == phase).expect("in PHASES");
        phase_us[idx] = end - start;
        if end > start {
            path.push(PathStep {
                phase,
                start_us: start,
                end_us: end,
            });
        }
    }
    // The residual is exact by construction (clipped phases can only
    // undershoot); clamp defends against float dust.
    phase_us[3] = (total_us - phase_us[..3].iter().sum::<f64>()).max(0.0);

    let mut chip = ChipDetail::default();
    for s in group {
        match s.kind {
            SpanKind::Broadcast => chip.broadcast_us += s.duration_us(),
            SpanKind::Vu => chip.vu_us += s.duration_us(),
            SpanKind::W => chip.w_us += s.duration_us(),
            SpanKind::Gather => chip.gather_us += s.duration_us(),
            _ => {}
        }
    }

    RequestBreakdown {
        trace_id,
        class,
        outcome,
        shard,
        total_us,
        phase_us,
        path,
        chip,
    }
}

/// Renders the analysis as a deterministic text report: the aggregate
/// phase table (with a text flamegraph bar per phase), per-class and
/// per-shard tables, path-signature counts, and the `top_n` slowest
/// requests with their critical paths. Byte-identical for identical
/// analyses — floats render at fixed precision and every table sorts.
pub fn breakdown_report(analysis: &TraceAnalysis, top_n: usize) -> String {
    let mut out = String::new();
    let overall = &analysis.overall;
    out.push_str(&format!(
        "== latency breakdown: {} requests, {:.3} us total ==\n",
        overall.requests, overall.total_us
    ));
    const BAR: usize = 40;
    for phase in PHASES {
        let pct = overall.percent(phase);
        let filled = ((pct / 100.0) * BAR as f64).round() as usize;
        out.push_str(&format!(
            "{:<8} {:>14.3} us {:>6.2}% |{:<BAR$}|\n",
            phase.name(),
            overall.phase_us[PHASES.iter().position(|p| *p == phase).expect("in PHASES")],
            pct,
            "#".repeat(filled.min(BAR)),
        ));
    }

    out.push_str("\n-- per class --\n");
    out.push_str("class    requests   mean_us   hold%  queue%  service%  other%\n");
    for (class, agg) in &analysis.per_class {
        out.push_str(&format!(
            "{:<8} {:>8} {:>9.3} {:>7.2} {:>7.2} {:>9.2} {:>7.2}\n",
            class,
            agg.requests,
            agg.mean_us(),
            agg.percent(Phase::Hold),
            agg.percent(Phase::Queue),
            agg.percent(Phase::Service),
            agg.percent(Phase::Other),
        ));
    }

    if !analysis.per_shard.is_empty() {
        out.push_str("\n-- per shard (winning attempt) --\n");
        out.push_str("shard    requests   mean_us   queue%  service%\n");
        for (shard, agg) in &analysis.per_shard {
            out.push_str(&format!(
                "{:<8} {:>8} {:>9.3} {:>7.2} {:>9.2}\n",
                shard,
                agg.requests,
                agg.mean_us(),
                agg.percent(Phase::Queue),
                agg.percent(Phase::Service),
            ));
        }
    }

    // Path signatures: how many requests took each phase chain.
    let mut signatures: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    for r in &analysis.requests {
        let e = signatures.entry(r.signature()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += r.total_us;
    }
    let mut sigs: Vec<(&String, &(usize, f64))> = signatures.iter().collect();
    sigs.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
    out.push_str("\n-- path signatures --\n");
    for (sig, (count, total)) in sigs {
        out.push_str(&format!(
            "{:<24} count={:<6} mean_us={:.3}\n",
            sig,
            count,
            if *count == 0 {
                0.0
            } else {
                total / *count as f64
            },
        ));
    }

    // Top-N slowest requests with their critical paths.
    let mut slowest: Vec<&RequestBreakdown> = analysis.requests.iter().collect();
    slowest.sort_by(|a, b| {
        b.total_us
            .total_cmp(&a.total_us)
            .then(a.trace_id.cmp(&b.trace_id))
    });
    out.push_str(&format!("\n-- top {top_n} slowest requests --\n"));
    for (rank, r) in slowest.iter().take(top_n).enumerate() {
        out.push_str(&format!(
            "#{:<2} request {:<6} ({}, {}{}) total {:.3} us | path {:.3} us: {}\n",
            rank + 1,
            r.trace_id,
            r.class,
            r.outcome,
            match r.shard {
                Some(s) => format!(", shard {s}"),
                None => String::new(),
            },
            r.total_us,
            r.critical_path_us(),
            r.path
                .iter()
                .map(|s| format!("{}[{:.3}..{:.3}]", s.phase.name(), s.start_us, s.end_us))
                .collect::<Vec<_>>()
                .join(" > "),
        ));
    }

    // Chip detail, when any request carries machine spans.
    let with_chip: Vec<&RequestBreakdown> = analysis
        .requests
        .iter()
        .filter(|r| r.chip.total_us() > 0.0)
        .collect();
    if !with_chip.is_empty() {
        out.push_str("\n-- chip detail (traced requests) --\n");
        out.push_str("request   broadcast_us       vu_us        w_us   gather_us\n");
        for r in with_chip {
            out.push_str(&format!(
                "{:<8} {:>13.3} {:>11.3} {:>11.3} {:>11.3}\n",
                r.trace_id, r.chip.broadcast_us, r.chip.vu_us, r.chip.w_us, r.chip.gather_us,
            ));
        }
    }
    if analysis.orphan_spans > 0 {
        out.push_str(&format!(
            "\norphan spans (no request span): {}\n",
            analysis.orphan_spans
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::track;

    /// A hand-built request: 2 us admission gap, 3 us hold, 5 us queue,
    /// 10 us service (total 20 us).
    fn request_group(id: u64) -> Vec<Span> {
        vec![
            Span::new(
                id,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                0.0,
                20.0,
            )
            .attr(AttrKey::Class, "high")
            .attr(AttrKey::Outcome, "completed"),
            Span::new(
                id,
                SpanKind::DegradeBatch,
                track::FRONTEND,
                track::CONTROL,
                2.0,
                5.0,
            )
            .attr(AttrKey::BatchSize, 4u64),
            Span::new(id, SpanKind::Queued, track::FRONTEND, 3, 5.0, 10.0)
                .attr(AttrKey::Attempt, 0u64)
                .attr(AttrKey::Shard, 2u64),
            Span::new(id, SpanKind::Attempt, track::FLEET, 3, 10.0, 20.0)
                .attr(AttrKey::Attempt, 0u64)
                .attr(AttrKey::Outcome, "completed")
                .attr(AttrKey::Shard, 2u64),
        ]
    }

    #[test]
    fn phases_attribute_the_whole_request() {
        let spans = request_group(7);
        let a = analyze(&spans);
        assert_eq!(a.requests.len(), 1);
        let r = &a.requests[0];
        assert_eq!(r.trace_id, 7);
        assert_eq!((r.class, r.outcome), ("high", "completed"));
        assert_eq!(r.shard, Some(2));
        assert_eq!(r.phase_us, [3.0, 5.0, 10.0, 2.0]);
        assert!((r.phases_sum_us() - r.total_us).abs() < 1e-12);
        assert_eq!(r.critical_path_us(), 18.0);
        assert!(r.critical_path_us() <= r.total_us);
        assert!(r.critical_path_us() >= r.max_phase_us());
        assert_eq!(r.signature(), "hold>queue>service");
        assert_eq!(a.per_class["high"].requests, 1);
        assert_eq!(a.per_shard[&2].requests, 1);
        assert_eq!(a.orphan_spans, 0);
    }

    #[test]
    fn winner_is_the_completed_attempt_not_the_loser() {
        let id = 11;
        let spans = vec![
            Span::new(
                id,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                0.0,
                30.0,
            )
            .attr(AttrKey::Class, "low")
            .attr(AttrKey::Outcome, "completed"),
            // Primary attempt fails late on shard 0...
            Span::new(id, SpanKind::Queued, track::FRONTEND, 1, 0.0, 2.0)
                .attr(AttrKey::Attempt, 0u64),
            Span::new(id, SpanKind::Attempt, track::FLEET, 1, 2.0, 29.0)
                .attr(AttrKey::Attempt, 0u64)
                .attr(AttrKey::Outcome, "failed")
                .attr(AttrKey::Shard, 0u64),
            // ...the hedge on shard 1 wins.
            Span::new(id, SpanKind::Queued, track::FRONTEND, 2, 12.0, 15.0)
                .attr(AttrKey::Attempt, 1u64),
            Span::new(id, SpanKind::Attempt, track::FLEET, 2, 15.0, 30.0)
                .attr(AttrKey::Attempt, 1u64)
                .attr(AttrKey::Outcome, "completed")
                .attr(AttrKey::Shard, 1u64),
        ];
        let r = &analyze(&spans).requests[0];
        assert_eq!(r.shard, Some(1), "the hedge's shard wins attribution");
        assert_eq!(
            r.phase_us[1], 3.0,
            "the hedge's queue wait, not the primary's"
        );
        assert_eq!(r.phase_us[2], 15.0);
        // The 12 us before the hedge was issued is residual.
        assert_eq!(r.phase_us[3], 12.0);
        assert!((r.phases_sum_us() - 30.0).abs() < 1e-12);
        assert!(r.critical_path_us() <= r.total_us);
        assert!(r.critical_path_us() >= r.max_phase_us());
    }

    #[test]
    fn shed_requests_are_all_other_and_spanless_ids_are_orphans() {
        let spans = vec![
            Span::new(
                1,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                4.0,
                4.0,
            )
            .attr(AttrKey::Class, "low")
            .attr(AttrKey::Outcome, "shed"),
            Span::new(99, SpanKind::Service, track::SERVE, 1, 0.0, 8.0),
        ];
        let a = analyze(&spans);
        assert_eq!(a.requests.len(), 1);
        let r = &a.requests[0];
        assert_eq!(r.total_us, 0.0);
        assert_eq!(r.phase_us, [0.0; 4]);
        assert_eq!(r.signature(), "(empty)");
        assert_eq!(a.orphan_spans, 1, "the batch-keyed span has no request");
    }

    #[test]
    fn chip_spans_aggregate_as_service_detail() {
        let mut spans = request_group(3);
        spans.push(
            Span::new(3, SpanKind::Vu, track::MACHINE, 1, 10.0, 12.0).attr(AttrKey::Layer, 0u64),
        );
        spans.push(
            Span::new(3, SpanKind::W, track::MACHINE, 1, 12.0, 16.0).attr(AttrKey::Layer, 0u64),
        );
        spans.push(Span::new(
            3,
            SpanKind::Broadcast,
            track::MACHINE,
            track::BROADCAST,
            10.0,
            10.5,
        ));
        spans.push(Span::new(
            3,
            SpanKind::Gather,
            track::MACHINE,
            track::GATHER,
            16.0,
            16.25,
        ));
        let r = &analyze(&spans).requests[0];
        assert_eq!(r.chip.vu_us, 2.0);
        assert_eq!(r.chip.w_us, 4.0);
        assert_eq!(r.chip.broadcast_us, 0.5);
        assert_eq!(r.chip.gather_us, 0.25);
        assert!((r.chip.total_us() - 6.75).abs() < 1e-12);
    }

    #[test]
    fn report_is_deterministic_and_names_everything() {
        let mut spans = request_group(1);
        spans.extend(request_group(2));
        let a = analyze(&spans);
        let report = breakdown_report(&a, 5);
        assert_eq!(report, breakdown_report(&analyze(&spans), 5));
        for needle in [
            "latency breakdown: 2 requests",
            "per class",
            "per shard",
            "path signatures",
            "hold>queue>service",
            "top 5 slowest",
        ] {
            assert!(
                report.contains(needle),
                "report missing {needle:?}\n{report}"
            );
        }
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let a = analyze(&[]);
        assert!(a.requests.is_empty());
        assert_eq!(a.overall.requests, 0);
        assert_eq!(a.overall.mean_us(), 0.0);
        assert_eq!(a.overall.percent(Phase::Queue), 0.0);
        let report = breakdown_report(&a, 3);
        assert!(report.contains("0 requests"));
    }
}
