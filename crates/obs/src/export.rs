//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The exporter renders a span list into the [trace-event format] that
//! `ui.perfetto.dev` and `chrome://tracing` load directly: complete
//! `"X"` events for non-overlapping work, legacy async `"b"`/`"e"`
//! pairs (keyed by `trace_id`) for spans that overlap on one track, and
//! `"M"` metadata events naming the process/thread lanes. Output is
//! **byte-deterministic** for a given span list: floats render with a
//! fixed three-decimal format, metadata is emitted in sorted order, and
//! spans render in recorder order — so one seed produces one exact
//! trace file, and the tests diff traces byte-for-byte.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{track, AttrValue, Span, SpanKind};

/// Renders `spans` as a complete Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 8);
    for (pid, tid) in lanes(spans) {
        match tid {
            None => events.push(format!(
                r#"{{"ph":"M","name":"process_name","pid":{pid},"tid":0,"args":{{"name":{}}}}}"#,
                json_str(track::name(pid))
            )),
            Some(tid) => events.push(format!(
                r#"{{"ph":"M","name":"thread_name","pid":{pid},"tid":{tid},"args":{{"name":{}}}}}"#,
                json_str(&lane_name(tid))
            )),
        }
    }
    for span in spans {
        if span.kind.is_async() {
            events.push(render(span, 'b', span.start_us, None));
            events.push(render(span, 'e', span.end_us, None));
        } else {
            events.push(render(span, 'X', span.start_us, Some(span.duration_us())));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Sorted, de-duplicated metadata lanes: each pid once (`tid: None`),
/// then each (pid, tid) pair.
fn lanes(spans: &[Span]) -> Vec<(u32, Option<u32>)> {
    let mut pairs: Vec<(u32, u32)> = spans.iter().map(|s| (s.pid, s.tid)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut out = Vec::new();
    let mut last_pid = None;
    for (pid, tid) in pairs {
        if last_pid != Some(pid) {
            out.push((pid, None));
            last_pid = Some(pid);
        }
        out.push((pid, Some(tid)));
    }
    out
}

/// Human name of a thread lane within a track.
fn lane_name(tid: u32) -> String {
    match tid {
        track::CONTROL => "control".to_string(),
        track::BROADCAST => "broadcast".to_string(),
        track::GATHER => "gather".to_string(),
        n => format!("lane {}", n - 1),
    }
}

/// Renders one trace event. `ph` is the Chrome phase; async events
/// carry an `id` so Perfetto pairs their begin/end, complete events a
/// `dur`.
fn render(span: &Span, ph: char, ts_us: f64, dur_us: Option<f64>) -> String {
    let mut ev = format!(
        r#"{{"name":{},"cat":{},"ph":"{ph}","ts":{},"#,
        json_str(span.kind.name()),
        json_str(span.kind.category()),
        fmt_us(ts_us),
    );
    if let Some(dur) = dur_us {
        ev.push_str(&format!(r#""dur":{},"#, fmt_us(dur)));
    }
    ev.push_str(&format!(r#""pid":{},"tid":{}"#, span.pid, span.tid));
    if span.kind.is_async() {
        ev.push_str(&format!(r#","id":{}"#, span.trace_id));
    }
    // Begin/complete events carry the attributes (plus the trace id so
    // every event is self-describing); async ends stay minimal.
    if ph != 'e' {
        ev.push_str(&format!(r#","args":{{"trace_id":{}"#, span.trace_id));
        for (key, value) in span.attrs.iter() {
            ev.push_str(&format!(
                ",{}:{}",
                json_str(key.name()),
                render_value(&value)
            ));
        }
        ev.push('}');
    }
    ev.push('}');
    ev
}

fn render_value(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::F64(v) => fmt_us(*v),
        AttrValue::Str(v) => json_str(v),
    }
}

/// Fixed-precision float rendering — the source of byte-determinism.
/// Three decimals of a microsecond (nanosecond resolution) is below the
/// simulators' timing granularity. Non-finite values (which no correct
/// emitter produces) render as 0 so the output is always valid JSON.
fn fmt_us(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Minimal JSON string escaping (quote, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A sanity check a trace must pass before export in tests: every span
/// has a non-negative duration and every async child lies within its
/// parent. Returns the first violation as text, or `None` when clean.
///
/// "Parent" is structural, not recorded: a span P is a parent of C when
/// they share a `trace_id`, P's kind is an async container, and C is a
/// narrower kind on the same track hierarchy (e.g. a request contains
/// its attempts and queue waits). The nesting rule every emitter must
/// uphold: `P.start_us <= C.start_us && C.end_us <= P.end_us`.
pub fn check_nesting(spans: &[Span]) -> Option<String> {
    for s in spans {
        if !(s.start_us.is_finite() && s.end_us.is_finite()) {
            return Some(format!(
                "non-finite bounds on {:?} trace {}",
                s.kind, s.trace_id
            ));
        }
        if s.end_us < s.start_us {
            return Some(format!(
                "negative duration on {:?} trace {}: [{}, {}]",
                s.kind, s.trace_id, s.start_us, s.end_us
            ));
        }
    }
    for parent in spans.iter().filter(|s| s.kind == SpanKind::Request) {
        for child in spans.iter().filter(|c| {
            c.trace_id == parent.trace_id
                && matches!(
                    c.kind,
                    SpanKind::Queued | SpanKind::Attempt | SpanKind::DegradeBatch
                )
        }) {
            const EPS: f64 = 1e-6;
            if child.start_us < parent.start_us - EPS || child.end_us > parent.end_us + EPS {
                return Some(format!(
                    "child {:?} [{}, {}] escapes request {} [{}, {}]",
                    child.kind,
                    child.start_us,
                    child.end_us,
                    parent.trace_id,
                    parent.start_us,
                    parent.end_us
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{track, AttrKey};

    fn sample() -> Vec<Span> {
        vec![
            Span::new(
                3,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                0.0,
                30.0,
            )
            .attr(AttrKey::Class, "premium")
            .attr(AttrKey::Outcome, "completed"),
            Span::new(3, SpanKind::Queued, track::FRONTEND, 1, 0.0, 4.0),
            Span::new(3, SpanKind::Attempt, track::FLEET, 1, 4.0, 30.0).attr(AttrKey::Shard, 0u64),
            Span::new(9, SpanKind::Vu, track::MACHINE, 2, 4.0, 10.5).attr(AttrKey::Layer, 1u64),
        ]
    }

    #[test]
    fn export_is_byte_deterministic() {
        let spans = sample();
        assert_eq!(chrome_trace(&spans), chrome_trace(&spans));
    }

    #[test]
    fn async_spans_become_begin_end_pairs() {
        let out = chrome_trace(&sample());
        assert!(out.contains(r#""ph":"b""#) && out.contains(r#""ph":"e""#));
        assert!(out.contains(r#""id":3"#), "async pair keyed by trace id");
        assert!(
            out.contains(r#""ph":"X""#),
            "sync spans are complete events"
        );
        assert!(out.contains(r#""dur":26.000"#), "attempt duration");
    }

    #[test]
    fn metadata_names_every_lane() {
        let out = chrome_trace(&sample());
        for name in [
            "\"frontend\"",
            "\"fleet\"",
            "\"machine\"",
            "\"control\"",
            "\"lane 0\"",
        ] {
            assert!(out.contains(name), "missing lane name {name}");
        }
        assert!(out.contains(r#""name":"process_name""#));
        assert!(out.contains(r#""name":"thread_name""#));
    }

    #[test]
    fn attrs_render_typed() {
        let out = chrome_trace(&sample());
        assert!(out.contains(r#""class":"premium""#));
        assert!(out.contains(r#""shard":0"#));
        assert!(out.contains(r#""layer":1"#));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_str("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn nesting_check_accepts_sample_and_rejects_escape() {
        assert_eq!(check_nesting(&sample()), None);
        let mut bad = sample();
        bad[2].end_us = 31.0; // attempt outlives its request
        assert!(check_nesting(&bad).expect("violation").contains("escapes"));
        let neg = vec![Span {
            end_us: -1.0,
            start_us: 0.0,
            ..sample()[1]
        }];
        assert!(check_nesting(&neg).expect("violation").contains("negative"));
    }
}
