//! Trace sinks: where emitted spans go.
//!
//! Instrumented code holds a `&dyn TraceSink` and guards every span
//! construction behind [`TraceSink::enabled`], so the disabled path is
//! one virtual call returning a constant `false` — no span is built,
//! nothing is allocated. Hot loops record through a [`SpanBuffer`],
//! which stages spans in a plain `Vec` and hands the sink whole owned
//! chunks ([`TraceSink::record_chunk`]) — one lock and zero per-span
//! copies per ~256 spans. The obs bench enforces both paths as
//! overhead oracles (≤ 1% disabled, ≤ 10% recording).

use std::collections::VecDeque;
use std::mem;
use std::sync::Mutex;

use crate::registry::MetricsRegistry;
use crate::span::Span;

/// Spans staged in a [`SpanBuffer`] before it hands the sink a chunk.
const SPAN_BUFFER_CHUNK: usize = 256;

/// Receives spans from instrumented code.
///
/// `record` takes `&self` because emitters (the fleet, the partitioned
/// machine) run under shared references from worker threads; sinks that
/// buffer must manage their own interior mutability.
pub trait TraceSink: Sync {
    /// Whether spans should be built at all. Emitters check this before
    /// constructing a [`Span`], so a disabled sink costs one virtual
    /// call per would-be span and nothing else.
    fn enabled(&self) -> bool;

    /// Accepts one span. Never called by well-behaved emitters when
    /// [`enabled`](Self::enabled) is false.
    fn record(&self, span: Span);

    /// Accepts a run of spans in order — equivalent to recording each
    /// in sequence. Emitters that build several spans per event use
    /// this so buffering sinks can take one lock for the whole run.
    fn record_many(&self, spans: &[Span]) {
        for span in spans {
            self.record(*span);
        }
    }

    /// Accepts an owned chunk of spans in order — equivalent to
    /// recording each in sequence, but the sink may keep the `Vec`
    /// itself, so a [`SpanBuffer`] flush moves a pointer instead of
    /// copying every span.
    fn record_chunk(&self, spans: Vec<Span>) {
        self.record_many(&spans);
    }
}

/// The disabled sink: tracing compiled in, turned off. Untraced entry
/// points delegate to their traced twins with a `NullSink`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _span: Span) {}
}

/// An emitter-side staging buffer for recording hot loops.
///
/// Spans accumulate in a plain `Vec` — no lock, no virtual call — and
/// move to the sink a whole chunk at a time via
/// [`TraceSink::record_chunk`], an owned-`Vec` handoff. A loop
/// recording through one of these pays one sink interaction per ~256
/// spans and never copies a span twice. The sink's `enabled` flag is
/// cached at construction (sinks do not toggle mid-run), so the
/// disabled check is a plain bool load.
///
/// Flushes on drop; call [`flush`](Self::flush) earlier if the sink
/// must be complete at a known point (e.g. before exporting).
pub struct SpanBuffer<'a> {
    sink: &'a dyn TraceSink,
    enabled: bool,
    buf: Vec<Span>,
}

impl<'a> SpanBuffer<'a> {
    /// A buffer staging spans for `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Self {
            sink,
            enabled: sink.enabled(),
            buf: Vec::new(),
        }
    }

    /// Whether the underlying sink wants spans (cached; a bool load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Stages one span; hands the sink a chunk when one fills. A no-op
    /// when the sink is disabled, so unguarded calls are merely the
    /// cost of constructing the span.
    #[inline]
    pub fn record(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        if self.buf.capacity() == 0 {
            self.buf.reserve_exact(SPAN_BUFFER_CHUNK);
        }
        self.buf.push(span);
        if self.buf.len() == SPAN_BUFFER_CHUNK {
            self.flush();
        }
    }

    /// Moves any staged spans to the sink now.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.record_chunk(mem::take(&mut self.buf));
        }
    }
}

impl Drop for SpanBuffer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for SpanBuffer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanBuffer")
            .field("enabled", &self.enabled)
            .field("staged", &self.buf.len())
            .finish()
    }
}

/// A bounded in-memory recorder: the newest `capacity` spans, oldest
/// dropped first (with a drop counter so truncation is visible, never
/// silent). Storage is one flat ring preallocated at construction —
/// trace storage wants to be a single long-lived block the OS can back
/// with huge pages, not a trail of small allocations faulted in
/// mid-run — and [`clear`](Self::clear) keeps it, so one recorder can
/// serve many runs at steady-state cost. A single mutex around the
/// ring keeps recording deterministic: spans come out in exactly the
/// order they went in.
#[derive(Debug)]
pub struct RingRecorder {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, span: Span) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` spans (minimum 1). The
    /// full backing store is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Ring {
                spans: VecDeque::with_capacity(capacity),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Recorded spans, oldest first. A snapshot — the recorder can keep
    /// receiving afterwards.
    pub fn spans(&self) -> Vec<Span> {
        let ring = self.inner.lock().expect("recorder poisoned");
        ring.spans.iter().copied().collect()
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").spans.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder poisoned").dropped
    }

    /// The fixed capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").capacity
    }

    /// Publishes the ring's capacity and drop counter as gauges
    /// (`obs.ring_capacity`, `obs.spans_dropped`) so silent trace loss
    /// shows up in any metrics export alongside the run it truncated.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        let ring = self.inner.lock().expect("recorder poisoned");
        registry.set_gauge("obs.ring_capacity", ring.capacity as f64);
        registry.set_gauge("obs.spans_dropped", ring.dropped as f64);
    }

    /// Discards everything recorded so far (spans and the drop
    /// counter), keeping the backing store. Lets one long-lived
    /// recorder — its pages already faulted in — serve many runs,
    /// which is how the obs bench measures steady-state tracing
    /// overhead.
    pub fn clear(&self) {
        let mut ring = self.inner.lock().expect("recorder poisoned");
        ring.spans.clear();
        ring.dropped = 0;
    }
}

impl TraceSink for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, span: Span) {
        let mut ring = self.inner.lock().expect("recorder poisoned");
        ring.push(span);
    }

    fn record_many(&self, spans: &[Span]) {
        let mut ring = self.inner.lock().expect("recorder poisoned");
        let n = spans.len();
        if n >= ring.capacity {
            // The run alone overflows: only its newest `capacity` spans
            // can survive.
            ring.dropped += (ring.spans.len() + n - ring.capacity) as u64;
            let keep = n - ring.capacity;
            ring.spans.clear();
            ring.spans.extend(spans[keep..].iter().copied());
        } else {
            // Evict in bulk, then bulk-copy the run in. Spans are
            // `Copy`, so draining the front is an index advance, not a
            // per-element walk.
            let overflow = (ring.spans.len() + n).saturating_sub(ring.capacity);
            if overflow > 0 {
                ring.spans.drain(..overflow);
                ring.dropped += overflow as u64;
            }
            ring.spans.extend(spans.iter().copied());
        }
    }

    fn record_chunk(&self, spans: Vec<Span>) {
        self.record_many(&spans);
    }
}

/// Fans one span stream out to two sinks — e.g. a [`RingRecorder`] for
/// offline export plus a live tail-exemplar reservoir in the same run.
/// Enabled when either side is; a disabled side still sees nothing
/// (its `record` is skipped), so a `Tee` over a recorder and a
/// `NullSink` behaves exactly like the recorder alone.
#[derive(Clone, Copy)]
pub struct Tee<'a> {
    first: &'a dyn TraceSink,
    second: &'a dyn TraceSink,
}

impl<'a> Tee<'a> {
    /// A sink duplicating every span to `first` and `second`, in that
    /// order.
    pub fn new(first: &'a dyn TraceSink, second: &'a dyn TraceSink) -> Self {
        Self { first, second }
    }
}

impl TraceSink for Tee<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record(&self, span: Span) {
        if self.first.enabled() {
            self.first.record(span);
        }
        if self.second.enabled() {
            self.second.record(span);
        }
    }

    fn record_many(&self, spans: &[Span]) {
        if self.first.enabled() {
            self.first.record_many(spans);
        }
        if self.second.enabled() {
            self.second.record_many(spans);
        }
    }

    fn record_chunk(&self, spans: Vec<Span>) {
        if self.first.enabled() {
            self.first.record_many(&spans);
        }
        if self.second.enabled() {
            self.second.record_chunk(spans);
        }
    }
}

impl std::fmt::Debug for Tee<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee")
            .field("first_enabled", &self.first.enabled())
            .field("second_enabled", &self.second.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{track, SpanKind};

    fn span(id: u64) -> Span {
        Span::new(
            id,
            SpanKind::Attempt,
            track::FLEET,
            1,
            id as f64,
            id as f64 + 1.0,
        )
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(span(1)); // harmless even if called
    }

    #[test]
    fn ring_preserves_insertion_order() {
        let rec = RingRecorder::new(10);
        assert!(rec.is_empty());
        for i in 0..5 {
            rec.record(span(i));
        }
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = RingRecorder::new(3);
        for i in 0..7 {
            rec.record(span(i));
        }
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![4, 5, 6], "newest three survive");
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let rec = RingRecorder::new(0);
        rec.record(span(1));
        rec.record(span(2));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.spans()[0].trace_id, 2);
    }

    #[test]
    fn chunks_and_singles_interleave_in_order() {
        let rec = RingRecorder::new(100);
        rec.record(span(0));
        rec.record_chunk(vec![span(1), span(2)]);
        rec.record(span(3));
        rec.record_chunk(vec![span(4)]);
        rec.record_chunk(Vec::new()); // ignored
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn chunk_eviction_matches_per_span_semantics() {
        let rec = RingRecorder::new(4);
        rec.record_chunk(vec![span(0), span(1), span(2)]);
        rec.record_chunk(vec![span(3), span(4)]);
        // 5 > 4: exactly the oldest span goes, same as singles would.
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn oversized_single_chunk_keeps_the_newest_spans() {
        let rec = RingRecorder::new(3);
        rec.record_chunk((0..8).map(span).collect());
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![5, 6, 7], "newest `capacity` spans survive");
        assert_eq!(rec.dropped(), 5);
    }

    #[test]
    fn span_buffer_flushes_full_chunks_and_on_drop() {
        let rec = RingRecorder::new(1 << 12);
        {
            let mut buf = SpanBuffer::new(&rec);
            assert!(buf.enabled());
            for i in 0..(SPAN_BUFFER_CHUNK as u64 + 10) {
                buf.record(span(i));
            }
            // One full chunk has landed; the remainder is still staged.
            assert_eq!(rec.len(), SPAN_BUFFER_CHUNK);
        }
        assert_eq!(rec.len(), SPAN_BUFFER_CHUNK + 10, "drop flushed the rest");
        let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
        let want: Vec<u64> = (0..(SPAN_BUFFER_CHUNK as u64 + 10)).collect();
        assert_eq!(got, want, "order survives chunking");
    }

    #[test]
    fn clear_resets_spans_and_drop_counter() {
        let rec = RingRecorder::new(2);
        rec.record_chunk(vec![span(0), span(1), span(2)]);
        assert!(rec.dropped() > 0);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        rec.record(span(9));
        assert_eq!(rec.len(), 1, "recorder keeps working after clear");
    }

    #[test]
    fn capacity_and_drop_counter_export_as_gauges() {
        let rec = RingRecorder::new(2);
        rec.record_chunk(vec![span(0), span(1), span(2)]);
        assert_eq!(rec.capacity(), 2);
        let mut reg = MetricsRegistry::new();
        rec.export_metrics(&mut reg);
        assert_eq!(reg.gauge("obs.ring_capacity"), Some(2.0));
        assert_eq!(reg.gauge("obs.spans_dropped"), Some(1.0));
    }

    #[test]
    fn tee_duplicates_to_both_sinks_in_order() {
        let a = RingRecorder::new(16);
        let b = RingRecorder::new(16);
        let tee = Tee::new(&a, &b);
        assert!(tee.enabled());
        tee.record(span(0));
        tee.record_many(&[span(1), span(2)]);
        tee.record_chunk(vec![span(3)]);
        for rec in [&a, &b] {
            let got: Vec<u64> = rec.spans().iter().map(|s| s.trace_id).collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn tee_over_disabled_sinks_is_disabled() {
        let tee = Tee::new(&NullSink, &NullSink);
        assert!(!tee.enabled());
        let rec = RingRecorder::new(4);
        let half = Tee::new(&NullSink, &rec);
        assert!(half.enabled());
        half.record(span(7));
        assert_eq!(rec.len(), 1, "enabled side still records");
    }

    #[test]
    fn span_buffer_on_a_disabled_sink_stages_nothing() {
        let sink = NullSink;
        let mut buf = SpanBuffer::new(&sink);
        assert!(!buf.enabled());
        buf.record(span(1));
        buf.flush(); // nothing to move, nothing recorded
    }
}
