//! Multi-window SLO burn-rate monitoring.
//!
//! An SLO like "99% of requests meet their deadline" defines an **error
//! budget**: the 1% of requests allowed to miss. The *burn rate* is how
//! fast a window of traffic spends that budget — `miss_rate / budget`,
//! so burn 1.0 spends exactly the budget over the SLO period, burn 10
//! spends it ten times too fast. Following the SRE multi-window
//! recipe, [`BurnRateMonitor`] evaluates the burn over a **fast** and a
//! **slow** window simultaneously and raises an alert only when *both*
//! exceed the threshold: the slow window keeps one bad moment from
//! paging, the fast window ends the alert promptly once the bleeding
//! stops. Alerts are edge-triggered ([`AlertKind::Fire`] /
//! [`AlertKind::Clear`]) and timestamped on the virtual clock, so a
//! seeded simulation produces one exact alert log.

use crate::series::WindowSeries;

/// Parameters of a burn-rate monitor over one deadline-attainment SLO.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnConfig {
    /// Attainment objective in `(0, 1)` — e.g. 0.99 for "99% of
    /// requests meet the deadline". The error budget is `1 - target`.
    pub target: f64,
    /// Fast evaluation window, µs of virtual time. Ends alerts quickly
    /// and keeps them from firing on long-stale traffic.
    pub fast_window_us: f64,
    /// Slow evaluation window, µs (≥ the fast window). Keeps one bad
    /// instant from paging.
    pub slow_window_us: f64,
    /// Burn-rate multiple at which both windows must arrive to fire
    /// (1.0 = budget spent exactly on schedule).
    pub threshold: f64,
    /// Events required inside the fast window before the monitor may
    /// fire — the arming guard against deciding off a handful of early
    /// requests.
    pub min_events: u64,
}

impl BurnConfig {
    /// A monitor config with the conventional threshold (2× budget
    /// spend) and a 20-event arming guard.
    pub fn new(target: f64, fast_window_us: f64, slow_window_us: f64) -> Self {
        Self {
            target,
            fast_window_us,
            slow_window_us,
            threshold: 2.0,
            min_events: 20,
        }
    }

    /// Sets the burn-rate threshold (builder-style).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the arming guard (builder-style).
    #[must_use]
    pub fn min_events(mut self, min_events: u64) -> Self {
        self.min_events = min_events;
        self
    }

    /// Validates the parameters, returning the first problem as text.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target > 0.0 && self.target < 1.0) {
            return Err(format!(
                "burn target must be in (0, 1), got {}",
                self.target
            ));
        }
        if !(self.fast_window_us.is_finite() && self.fast_window_us > 0.0) {
            return Err(format!(
                "fast window must be positive and finite, got {}",
                self.fast_window_us
            ));
        }
        if !(self.slow_window_us.is_finite() && self.slow_window_us >= self.fast_window_us) {
            return Err(format!(
                "slow window must be finite and >= the fast window, got {} < {}",
                self.slow_window_us, self.fast_window_us
            ));
        }
        if !(self.threshold.is_finite() && self.threshold > 0.0) {
            return Err(format!(
                "burn threshold must be positive and finite, got {}",
                self.threshold
            ));
        }
        Ok(())
    }
}

/// Whether an alert event opened or closed an alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// Both windows crossed the threshold: the alert opens.
    Fire,
    /// The fast window fell back under the threshold: the alert closes.
    Clear,
}

impl AlertKind {
    /// Stable lowercase name (report rendering).
    pub fn name(self) -> &'static str {
        match self {
            Self::Fire => "fire",
            Self::Clear => "clear",
        }
    }
}

/// One edge-triggered alert event, timestamped on the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnAlert {
    /// Virtual time of the observation that flipped the state.
    pub at_us: f64,
    /// Opening or closing edge.
    pub kind: AlertKind,
    /// Burn rate over the fast window at the flip.
    pub fast_burn: f64,
    /// Burn rate over the slow window at the flip.
    pub slow_burn: f64,
}

/// A multi-window burn-rate monitor over one attainment SLO (see
/// module docs). Feed it every terminal outcome via
/// [`observe`](Self::observe); read the alert log at the end.
#[derive(Clone, Debug)]
pub struct BurnRateMonitor {
    cfg: BurnConfig,
    series: WindowSeries,
    firing: bool,
    alerts: Vec<BurnAlert>,
    events: u64,
    misses: u64,
}

/// Buckets per fast window — the granularity at which the sliding
/// windows quantize.
const FAST_BUCKETS: f64 = 4.0;

impl BurnRateMonitor {
    /// A monitor for `cfg` (callers validate; degenerate values are
    /// clamped to something harmless rather than trusted).
    pub fn new(cfg: BurnConfig) -> Self {
        let cfg = BurnConfig {
            target: cfg.target.clamp(1e-6, 1.0 - 1e-6),
            fast_window_us: if cfg.fast_window_us.is_finite() && cfg.fast_window_us > 0.0 {
                cfg.fast_window_us
            } else {
                1.0
            },
            ..cfg
        };
        let slow = if cfg.slow_window_us.is_finite() && cfg.slow_window_us >= cfg.fast_window_us {
            cfg.slow_window_us
        } else {
            cfg.fast_window_us
        };
        let bucket_us = cfg.fast_window_us / FAST_BUCKETS;
        // Enough buckets to cover the slow window plus the live edge.
        let capacity = (slow / bucket_us).ceil() as usize + 2;
        Self {
            cfg: BurnConfig {
                slow_window_us: slow,
                ..cfg
            },
            series: WindowSeries::new(bucket_us, capacity),
            firing: false,
            alerts: Vec::new(),
            events: 0,
            misses: 0,
        }
    }

    /// The (clamped) configuration in effect.
    pub fn config(&self) -> &BurnConfig {
        &self.cfg
    }

    /// Feeds one terminal outcome at virtual time `t_us`: `met` is
    /// whether the request attained its deadline (a shed or failed
    /// request is a miss). Flips the alert state when the windows say
    /// so.
    pub fn observe(&mut self, t_us: f64, met: bool) {
        self.events += 1;
        self.misses += u64::from(!met);
        self.series.count(t_us, met);
        let (fast_burn, slow_burn) = self.burn_rates(t_us);
        let (fast_events, _) = self.series.window_totals(t_us, self.cfg.fast_window_us);
        if !self.firing {
            if fast_events >= self.cfg.min_events
                && fast_burn > self.cfg.threshold
                && slow_burn > self.cfg.threshold
            {
                self.firing = true;
                self.alerts.push(BurnAlert {
                    at_us: t_us,
                    kind: AlertKind::Fire,
                    fast_burn,
                    slow_burn,
                });
            }
        } else if fast_burn <= self.cfg.threshold {
            self.firing = false;
            self.alerts.push(BurnAlert {
                at_us: t_us,
                kind: AlertKind::Clear,
                fast_burn,
                slow_burn,
            });
        }
    }

    /// `(fast, slow)` burn rates at `now_us`: each window's miss rate
    /// over the error budget (0 over an empty window — no traffic burns
    /// no budget).
    pub fn burn_rates(&self, now_us: f64) -> (f64, f64) {
        let budget = 1.0 - self.cfg.target;
        let rate = |span_us: f64| -> f64 {
            let (events, good) = self.series.window_totals(now_us, span_us);
            if events == 0 {
                0.0
            } else {
                let miss_rate = (events - good) as f64 / events as f64;
                miss_rate / budget
            }
        };
        (rate(self.cfg.fast_window_us), rate(self.cfg.slow_window_us))
    }

    /// Whether an alert is currently open.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// The edge-triggered alert log, in time order.
    pub fn alerts(&self) -> &[BurnAlert] {
        &self.alerts
    }

    /// Opening edges in the log.
    pub fn fires(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.kind == AlertKind::Fire)
            .count()
    }

    /// Lifetime attainment over everything observed (1.0 when empty).
    pub fn attainment(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            (self.events - self.misses) as f64 / self.events as f64
        }
    }

    /// Terminal outcomes observed.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BurnConfig {
        BurnConfig::new(0.9, 100.0, 400.0)
            .threshold(2.0)
            .min_events(10)
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        assert!(cfg().validate().is_ok());
        assert!(BurnConfig {
            target: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(BurnConfig {
            target: 1.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(BurnConfig {
            fast_window_us: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(
            BurnConfig {
                slow_window_us: 50.0,
                ..cfg()
            }
            .validate()
            .is_err(),
            "slow window must cover the fast one"
        );
        assert!(BurnConfig {
            threshold: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(BurnConfig {
            threshold: f64::NAN,
            ..cfg()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn nominal_traffic_never_fires() {
        let mut m = BurnRateMonitor::new(cfg());
        // 5% misses against a 10% budget: burn 0.5, well under 2.0.
        for i in 0..2000u64 {
            m.observe(i as f64, i % 20 != 0);
        }
        assert!(m.alerts().is_empty(), "burn 0.5 stays silent");
        assert!(!m.firing());
        assert!((m.attainment() - 0.95).abs() < 1e-9);
        assert_eq!(m.events(), 2000);
    }

    #[test]
    fn overload_fires_once_and_clears_after_recovery() {
        let mut m = BurnRateMonitor::new(cfg());
        // Healthy traffic, then a total outage, then recovery.
        for i in 0..500u64 {
            m.observe(i as f64, true);
        }
        assert!(m.alerts().is_empty());
        for i in 500..800u64 {
            m.observe(i as f64, false);
        }
        assert_eq!(m.fires(), 1, "the outage opens exactly one alert");
        assert!(m.firing(), "still bleeding at the end of the outage");
        let fire = m.alerts()[0];
        assert_eq!(fire.kind, AlertKind::Fire);
        assert!(fire.at_us >= 500.0, "fired inside the outage window");
        assert!(fire.fast_burn > 2.0 && fire.slow_burn > 2.0);
        for i in 800..1600u64 {
            m.observe(i as f64, true);
        }
        assert!(!m.firing(), "recovery closes the alert");
        assert_eq!(m.alerts().len(), 2);
        assert_eq!(m.alerts()[1].kind, AlertKind::Clear);
        assert!(m.alerts()[1].at_us > fire.at_us);
    }

    #[test]
    fn slow_window_suppresses_a_momentary_blip() {
        let mut m = BurnRateMonitor::new(
            BurnConfig::new(0.9, 40.0, 2000.0)
                .threshold(2.0)
                .min_events(5),
        );
        // A long healthy history, then a blip shorter than the slow
        // window's tolerance: fast burn spikes, slow burn stays low.
        for i in 0..2000u64 {
            m.observe(i as f64, true);
        }
        for i in 2000..2010u64 {
            m.observe(i as f64, false);
        }
        assert!(
            m.alerts().is_empty(),
            "10 misses in a 2000-event slow window must not page"
        );
    }

    #[test]
    fn arming_guard_blocks_early_noise() {
        let mut m = BurnRateMonitor::new(cfg());
        for i in 0..5u64 {
            m.observe(i as f64, false);
        }
        assert!(
            m.alerts().is_empty(),
            "5 events < min_events 10: not armed yet"
        );
        assert!((m.attainment() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let m = BurnRateMonitor::new(cfg());
        assert_eq!(m.burn_rates(1e6), (0.0, 0.0));
        assert_eq!(m.attainment(), 1.0);
        assert_eq!(m.fires(), 0);
    }

    #[test]
    fn degenerate_config_is_clamped_not_trusted() {
        let m = BurnRateMonitor::new(BurnConfig {
            target: 7.0,
            fast_window_us: f64::NAN,
            slow_window_us: -1.0,
            threshold: 2.0,
            min_events: 0,
        });
        let c = m.config();
        assert!(c.target < 1.0 && c.target > 0.0);
        assert!(c.fast_window_us > 0.0);
        assert!(c.slow_window_us >= c.fast_window_us);
    }
}
