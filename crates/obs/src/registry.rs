//! The unified telemetry registry.
//!
//! Every layer of the stack keeps its own accumulators during a run;
//! the registry is where they meet afterwards: named counters
//! (monotonic integers), gauges (point-in-time reals) and histograms
//! ([`LatencyStat`] distributions) under dotted names
//! (`frontend.premium.shed`, `fleet.shard0.service_us`). Storage is
//! `BTreeMap`, so every export walks names in sorted order and the text
//! snapshot is deterministic — diffable across runs and greppable in CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::latency::{LatencyStat, LatencyStats};

/// Named counters, gauges and latency histograms from one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Folds one observation into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, value_us: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value_us);
    }

    /// Records a finished [`LatencyStats`] snapshot as five gauges
    /// (`prefix.mean_us` … `prefix.max_us`) — for summaries whose
    /// sample stream is already reduced.
    pub fn record_latency(&mut self, prefix: &str, stats: &LatencyStats) {
        self.set_gauge(&format!("{prefix}.mean_us"), stats.mean_us);
        self.set_gauge(&format!("{prefix}.p50_us"), stats.p50_us);
        self.set_gauge(&format!("{prefix}.p95_us"), stats.p95_us);
        self.set_gauge(&format!("{prefix}.p99_us"), stats.p99_us);
        self.set_gauge(&format!("{prefix}.max_us"), stats.max_us);
    }

    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram accumulator, if any observation was folded in.
    pub fn histogram(&self, name: &str) -> Option<&LatencyStat> {
        self.histograms.get(name)
    }

    /// Total named metrics (counters + gauges + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flat text snapshot: one `name value` (or
    /// `name{count,mean,p50,p95,p99,max}`) line per metric, sorted by
    /// name within each section. Deterministic for a fixed run — CI
    /// greps it, bench reports embed it.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value:.3}");
        }
        for (name, h) in &self.histograms {
            let s = h.stats();
            let _ = writeln!(
                out,
                "hist {name} count={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                h.count(),
                s.mean_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us
            );
        }
        out
    }

    /// The snapshot as a flat JSON object (same names, same fixed
    /// three-decimal formatting — byte-deterministic like the text).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::with_capacity(self.len());
        for (name, value) in &self.counters {
            fields.push(format!(r#""{name}":{value}"#));
        }
        for (name, value) in &self.gauges {
            fields.push(format!(r#""{name}":{value:.3}"#));
        }
        for (name, h) in &self.histograms {
            let s = h.stats();
            fields.push(format!(
                r#""{name}":{{"count":{},"mean_us":{:.3},"p50_us":{:.3},"p95_us":{:.3},"p99_us":{:.3},"max_us":{:.3}}}"#,
                h.count(),
                s.mean_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us
            ));
        }
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("frontend.shed", 3);
        reg.inc("frontend.shed", 2);
        reg.inc("fleet.batches", 10);
        reg.set_gauge("serve.utilization", 0.751234);
        for x in [10.0, 20.0, 30.0] {
            reg.observe("fleet.service_us", x);
        }
        reg.record_latency(
            "frontend.premium",
            &LatencyStats {
                mean_us: 12.0,
                p50_us: 11.0,
                p95_us: 20.0,
                p99_us: 25.0,
                max_us: 30.0,
            },
        );
        reg
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = sample();
        assert_eq!(reg.counter("frontend.shed"), 5);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.gauge("serve.utilization"), Some(0.751234));
        assert_eq!(reg.gauge("absent"), None);
        let h = reg.histogram("fleet.service_us").expect("observed");
        assert_eq!(h.count(), 3);
        assert!((h.mean_us() - 20.0).abs() < 1e-12);
        assert!(!reg.is_empty());
    }

    #[test]
    fn record_latency_expands_to_five_gauges() {
        let reg = sample();
        assert_eq!(reg.gauge("frontend.premium.mean_us"), Some(12.0));
        assert_eq!(reg.gauge("frontend.premium.p99_us"), Some(25.0));
        assert_eq!(reg.gauge("frontend.premium.max_us"), Some(30.0));
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let reg = sample();
        let text = reg.snapshot_text();
        assert_eq!(text, reg.snapshot_text());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter fleet.batches 10");
        assert_eq!(lines[1], "counter frontend.shed 5");
        assert!(lines
            .iter()
            .any(|l| l.starts_with("gauge serve.utilization 0.751")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("hist fleet.service_us count=3 mean=20.000")));
    }

    #[test]
    fn json_snapshot_is_flat_and_deterministic() {
        let reg = sample();
        let json = reg.to_json();
        assert_eq!(json, reg.to_json());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""frontend.shed":5"#));
        assert!(json.contains(r#""fleet.service_us":{"count":3,"mean_us":20.000"#));
    }
}
