//! The one latency accumulator the whole stack shares.
//!
//! Before this crate existed the repository kept three parallel
//! implementations of "count, sum, max, plus P² percentile trackers":
//! the fleet's per-shard service books, the serving simulator's
//! streaming mode and the front end's per-class stats. [`LatencyStat`]
//! is that accumulator, written once: exact count/mean/max, three
//! constant-space P² percentile estimators (p50/p95/p99), and an
//! optional extra tracked quantile for callers that rank by an arbitrary
//! percentile (the fleet's `with_service_percentile`). [`LatencyStats`]
//! is its snapshot — the five summary numbers every report renders.

use crate::quantile::P2Quantile;

/// Latency distribution over a request population, microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (nearest-rank, or a P² estimate from [`LatencyStat`]).
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl LatencyStats {
    /// Computes the stats over `values` (order irrelevant; empty → zeros).
    /// Percentiles are exact nearest-rank: the smallest value with at
    /// least p% of the population at or below it.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// Constant-memory latency accounting: exact count/mean/max plus P²
/// streaming estimates of p50/p95/p99 (and optionally one more tracked
/// quantile). A handful of floats of state, no samples retained — sized
/// for sweeps over millions of virtual requests.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyStat {
    count: u64,
    sum_us: f64,
    max_us: f64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    /// Extra tracked quantile for callers ranking by an arbitrary
    /// percentile (e.g. a p-quantile live service estimate).
    custom: Option<P2Quantile>,
}

impl Default for LatencyStat {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStat {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum_us: 0.0,
            max_us: 0.0,
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            custom: None,
        }
    }

    /// An empty accumulator that additionally tracks quantile `p`
    /// (clamped as by [`P2Quantile::new`]), exposed via
    /// [`quantile_estimate`](Self::quantile_estimate).
    pub fn with_quantile(p: f64) -> Self {
        Self {
            custom: Some(P2Quantile::new(p)),
            ..Self::new()
        }
    }

    /// Folds one latency observation in (O(1) time and space).
    pub fn observe(&mut self, latency_us: f64) {
        self.observe_weighted(latency_us, 1);
    }

    /// Folds `weight` identical observations in — what a batch of
    /// `weight` samples sharing one amortized per-sample latency
    /// contributes. Equivalent to calling [`observe`](Self::observe)
    /// `weight` times, in O(weight) quantile updates but one counter
    /// update.
    pub fn observe_weighted(&mut self, latency_us: f64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.count += weight;
        self.sum_us += latency_us * weight as f64;
        self.max_us = self.max_us.max(latency_us);
        for _ in 0..weight {
            self.p50.observe(latency_us);
            self.p95.observe(latency_us);
            self.p99.observe(latency_us);
            if let Some(q) = &mut self.custom {
                q.observe(latency_us);
            }
        }
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the observations, µs.
    pub fn sum_us(&self) -> f64 {
        self.sum_us
    }

    /// Exact arithmetic mean of the observations (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Exact maximum observation (0 when empty).
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// The extra tracked quantile, when built with
    /// [`with_quantile`](Self::with_quantile).
    pub fn quantile(&self) -> Option<f64> {
        self.custom.as_ref().map(P2Quantile::quantile)
    }

    /// Current estimate of the extra tracked quantile (`None` unless
    /// built with [`with_quantile`](Self::with_quantile); 0 before the
    /// first observation, as by [`P2Quantile::estimate`]).
    pub fn quantile_estimate(&self) -> Option<f64> {
        self.custom.as_ref().map(P2Quantile::estimate)
    }

    /// Folds another accumulator in, so fleet-level books can aggregate
    /// per-shard accumulators without re-streaming every observation.
    ///
    /// Count, sum (hence mean) and max are **exact**. The p50/p95/p99
    /// estimates merge by [`P2Quantile::merge`] — exact when either side
    /// is still in its warm-up buffer, documented-approximate
    /// (weighted-marker interpolation) once both sides are warmed. The
    /// extra tracked quantile survives only when both sides track the
    /// same `p` (or the other side has no observations); merging
    /// mismatched trackers would silently answer the wrong question, so
    /// the merged accumulator drops it instead.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.p50.merge(&other.p50);
        self.p95.merge(&other.p95);
        self.p99.merge(&other.p99);
        self.custom = match (self.custom.take(), other.custom.as_ref()) {
            (Some(mut mine), Some(theirs)) if mine.quantile() == theirs.quantile() => {
                mine.merge(theirs);
                Some(mine)
            }
            _ => None,
        };
    }

    /// The summary snapshot: exact mean and max, P²-estimated
    /// percentiles (exact for populations under five — the trackers are
    /// still in their warm-up buffers).
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            mean_us: self.mean_us(),
            p50_us: self.p50.estimate(),
            p95_us: self.p95.estimate(),
            p99_us: self.p99.estimate(),
            max_us: self.max_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::of(&values);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-12);
        // Small populations: p99 of 2 samples is the max.
        let s = LatencyStats::of(&[3.0, 1.0]);
        assert_eq!(s.p50_us, 1.0);
        assert_eq!(s.p99_us, 3.0);
    }

    #[test]
    fn empty_population_is_all_zero() {
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
        assert_eq!(LatencyStat::new().stats(), LatencyStats::default());
        assert_eq!(LatencyStat::new().mean_us(), 0.0);
    }

    /// The streaming accumulator must agree with the exact population
    /// stats wherever it promises exactness (count, mean, max) and stay
    /// close on the estimated percentiles.
    #[test]
    fn streaming_matches_exact_mean_and_max() {
        let mut stat = LatencyStat::new();
        let values: Vec<f64> = (0..5000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64) + 1.0)
            .collect();
        for &v in &values {
            stat.observe(v);
        }
        let exact = LatencyStats::of(&values);
        let got = stat.stats();
        assert_eq!(stat.count(), 5000);
        assert!((got.mean_us - exact.mean_us).abs() < 1e-9);
        assert_eq!(got.max_us, exact.max_us);
        assert!((got.p50_us - exact.p50_us).abs() < 0.05 * exact.p50_us);
        assert!((got.p95_us - exact.p95_us).abs() < 0.05 * exact.p95_us);
    }

    /// A weighted observation is exactly `weight` plain observations.
    #[test]
    fn weighted_observe_equals_repeated_observe() {
        let mut a = LatencyStat::with_quantile(0.9);
        let mut b = LatencyStat::with_quantile(0.9);
        for (x, w) in [(10.0, 3u64), (40.0, 1), (25.0, 4), (5.0, 2)] {
            a.observe_weighted(x, w);
            for _ in 0..w {
                b.observe(x);
            }
        }
        assert_eq!(a, b);
        a.observe_weighted(99.0, 0);
        assert_eq!(a, b, "weight 0 is a no-op");
    }

    /// The merge satellite's regression test: folding per-shard books
    /// together must agree with one accumulator that saw the whole
    /// stream — exactly on count/mean/max, closely on the quantiles.
    #[test]
    fn merged_shard_books_match_the_single_stream() {
        let values: Vec<f64> = (0..6000)
            .map(|i| ((i * 2654435761u64 % 997) as f64) + 1.0)
            .collect();
        let mut single = LatencyStat::new();
        let mut shards = [LatencyStat::new(), LatencyStat::new(), LatencyStat::new()];
        for (i, &v) in values.iter().enumerate() {
            single.observe(v);
            shards[i % 3].observe(v);
        }
        let mut merged = LatencyStat::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), single.count(), "count is exact");
        assert!(
            (merged.mean_us() - single.mean_us()).abs() < 1e-9,
            "mean is exact"
        );
        assert_eq!(merged.max_us(), single.max_us(), "max is exact");
        let (got, want) = (merged.stats(), single.stats());
        for (g, w, name) in [
            (got.p50_us, want.p50_us, "p50"),
            (got.p95_us, want.p95_us, "p95"),
            (got.p99_us, want.p99_us, "p99"),
        ] {
            assert!(
                (g - w).abs() <= 0.10 * w.max(1.0),
                "{name}: merged {g} strays from single-stream {w}"
            );
        }
    }

    #[test]
    fn merge_edge_cases_keep_the_contract() {
        // Empty other: no-op. Empty self: adopts other wholesale.
        let mut a = LatencyStat::with_quantile(0.9);
        for x in [5.0, 9.0, 2.0] {
            a.observe(x);
        }
        let before = a.clone();
        a.merge(&LatencyStat::new());
        assert_eq!(a, before);
        let mut empty = LatencyStat::new();
        empty.merge(&before);
        assert_eq!(empty, before, "empty self adopts other, custom included");
        // Matching custom quantiles merge; mismatched ones drop.
        let mut b = LatencyStat::with_quantile(0.9);
        b.observe(100.0);
        a.merge(&b);
        assert_eq!(a.quantile(), Some(0.9));
        assert_eq!(a.count(), 4);
        assert_eq!(a.max_us(), 100.0);
        let mut c = LatencyStat::with_quantile(0.5);
        c.observe(1.0);
        a.merge(&c);
        assert_eq!(a.quantile(), None, "mismatched trackers drop, not lie");
        assert_eq!(a.count(), 5, "counts still fold exactly");
    }

    #[test]
    fn custom_quantile_tracks_the_tail() {
        let mut stat = LatencyStat::with_quantile(0.95);
        assert_eq!(stat.quantile(), Some(0.95));
        assert_eq!(stat.quantile_estimate(), Some(0.0), "0 before data");
        for i in 0..2000 {
            stat.observe(if i % 20 == 19 { 1000.0 } else { 10.0 });
        }
        let p95 = stat.quantile_estimate().expect("tracked");
        assert!(p95 >= 10.0 && stat.mean_us() < 70.0);
        assert_eq!(LatencyStat::new().quantile_estimate(), None);
    }
}
