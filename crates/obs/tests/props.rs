//! Property tests for the observability plane: span invariants the
//! emitters rely on, determinism of the exporters, and agreement
//! between the streaming accumulator and exact population statistics.

use proptest::prelude::*;
use sparsenn_obs::{
    check_nesting, chrome_trace, track, LatencyStat, LatencyStats, RingRecorder, Span, SpanKind,
    TraceSink,
};

/// An arbitrary request timeline: a request span plus children placed
/// inside it. Mirrors what the frontend emitter produces.
fn request_tree() -> impl Strategy<Value = Vec<Span>> {
    (
        0u64..1000,
        0.0f64..1e6,
        0.0f64..1e5,
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..4), 0..6),
    )
        .prop_map(|(id, start, dur, children)| {
            let end = start + dur;
            let mut spans = vec![Span::new(
                id,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                start,
                end,
            )];
            for (a, b, tid) in children {
                // Two fractions of the parent interval, ordered.
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                spans.push(Span::new(
                    id,
                    SpanKind::Attempt,
                    track::FLEET,
                    tid + 1,
                    start + lo * dur,
                    start + hi * dur,
                ));
            }
            spans
        })
}

proptest! {
    /// Spans constructed through `Span::new` can never carry a negative
    /// duration, whatever clock arithmetic the caller did.
    #[test]
    fn constructed_spans_have_non_negative_durations(
        start in -1e9f64..1e9,
        delta in -1e6f64..1e6,
    ) {
        let s = Span::new(0, SpanKind::Service, track::SERVE, 1, start, start + delta);
        prop_assert!(s.duration_us() >= 0.0);
        prop_assert!(s.end_us >= s.start_us);
    }

    /// Well-formed request trees pass the nesting check; pushing any
    /// child past its parent's end is caught.
    #[test]
    fn nesting_check_accepts_contained_children(spans in request_tree()) {
        prop_assert_eq!(check_nesting(&spans), None);
    }

    #[test]
    fn nesting_check_rejects_escaping_children(spans in request_tree(), bump in 1.0f64..1e4) {
        prop_assume!(spans.len() > 1);
        let mut bad = spans;
        let parent_end = bad[0].end_us;
        bad[1].end_us = parent_end + bump;
        bad[1].start_us = bad[1].start_us.min(bad[1].end_us);
        prop_assert!(check_nesting(&bad).is_some());
    }

    /// The exporter is a pure function of the span list: same spans,
    /// same bytes — the foundation of the trace determinism oracle.
    #[test]
    fn chrome_trace_is_deterministic(spans in request_tree()) {
        prop_assert_eq!(chrome_trace(&spans), chrome_trace(&spans));
    }

    /// Every span recorded through the ring (below capacity) comes back
    /// unchanged and in order.
    #[test]
    fn ring_roundtrips_spans_in_order(spans in request_tree()) {
        let rec = RingRecorder::new(spans.len().max(1));
        for s in &spans {
            rec.record(*s);
        }
        prop_assert_eq!(rec.spans(), spans);
        prop_assert_eq!(rec.dropped(), 0);
    }

    /// The streaming accumulator agrees exactly with the population on
    /// everything it promises exactly (count, mean, max), for any input.
    #[test]
    fn latency_stat_matches_population_exacts(
        values in prop::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut stat = LatencyStat::new();
        for &v in &values {
            stat.observe(v);
        }
        let exact = LatencyStats::of(&values);
        prop_assert_eq!(stat.count(), values.len() as u64);
        prop_assert!((stat.mean_us() - exact.mean_us).abs() <= 1e-6 * exact.mean_us.max(1.0));
        prop_assert_eq!(stat.max_us(), exact.max_us);
        // Percentile estimates stay within the observed range.
        let s = stat.stats();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(s.p50_us >= lo - 1e-9 && s.p50_us <= exact.max_us + 1e-9);
        prop_assert!(s.p99_us >= lo - 1e-9 && s.p99_us <= exact.max_us + 1e-9);
    }
}
