//! Virtual-time serving simulator for SparseNN fleets.
//!
//! The live [`Fleet`](sparsenn_core::engine::Fleet) serves real requests
//! on host threads; this crate answers the questions a load test cannot:
//! what do latency percentiles, queueing delay and shard utilization look
//! like at offered loads, burst patterns and fleet mixes you choose —
//! on a single global virtual timeline, in milliseconds of host time,
//! deterministically.
//!
//! * [`EventQueue`] — the discrete-event core: pops in nondecreasing
//!   virtual time, FIFO among equal times, so every run replays exactly;
//! * [`Workload`] — open-loop Poisson, bursty on/off, and closed-loop
//!   fixed-concurrency arrival generators (seeded, deterministic);
//! * [`Scheduler`] — **the same trait the live fleet dispatches with**
//!   (re-exported from `sparsenn_core::engine`), with the same policies:
//!   [`FirstIdle`], [`LeastQueued`], [`FastestCompletion`];
//! * [`simulate`] — drives a [`ShardSpec`] fleet (each shard's modelled
//!   per-request `time_us` table) and folds a [`ServeSummary`]: latency
//!   p50/p95/p99, time-in-queue vs time-in-service, queue-depth
//!   trajectory, per-shard utilization. Runs in constant memory by
//!   default ([`MetricsMode::Streaming`] — exact means, P² percentile
//!   estimates); [`simulate_with`] selects [`MetricsMode::Exact`] when a
//!   test needs every [`RequestMetric`] materialized.
//!
//! * [`simulate_batched`] — the queue-aware **cross-request batching**
//!   model: shards serve whole batches ([`BatchShardSpec`] carries the
//!   per-batch-size service table, fed from the real batched machine)
//!   under a [`BatchPolicy`] (the same type the live fleet chunks with),
//!   exposing the throughput/latency knee batching buys.
//!
//! The `sparsenn-frontend` crate builds the production front end on these
//! pieces: its simulator drives the same [`EventQueue`] with the extended
//! [`FleetEvent`] vocabulary (failures, hedges, autoscaler epochs) and
//! folds per-class [`StreamingLatency`] accumulators.
//!
//! # Example
//!
//! ```
//! use sparsenn_serve::{
//!     simulate, FastestCompletion, FirstIdle, ShardSpec, Workload,
//! };
//!
//! // A fast cycle-accurate machine next to a slow SIMD platform.
//! let shards = vec![
//!     ShardSpec::uniform("machine", 10.0),   // 10 µs / request
//!     ShardSpec::uniform("simd", 80.0),      // 80 µs / request
//! ];
//! let workload = Workload::Poisson {
//!     rate_rps: 70_000.0,
//!     requests: 2_000,
//!     seed: 1,
//! };
//! let naive = simulate(&shards, &FirstIdle, &workload).unwrap();
//! let aware = simulate(&shards, &FastestCompletion, &workload).unwrap();
//! // Latency-aware dispatch keeps the tail off the slow shard.
//! assert!(aware.latency.p95_us < naive.latency.p95_us);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod events;
mod metrics;
mod sim;
mod workload;

pub use batch::{
    simulate_batched, simulate_batched_traced, BatchRecord, BatchShardSpec, BatchedSummary,
};
pub use events::{EventQueue, FleetEvent};
pub use metrics::{
    LatencyStats, QueueStats, RequestMetric, ServeSummary, ShardUsage, StreamingLatency,
};
pub use sim::{fleet_capacity_rps, simulate, simulate_with, MetricsMode, ServeError, ShardSpec};
pub use sparsenn_core::engine::{
    BatchPolicy, FastestCompletion, FirstIdle, LeastQueued, Scheduler, ShardView,
};
pub use workload::{OpenArrivals, Workload};
