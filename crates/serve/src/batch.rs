//! The queue-aware batching simulator: the throughput/latency knee.
//!
//! [`simulate`](crate::simulate) serves every request alone; this module
//! models what the batch-native machine core actually offers — a shard
//! that serves `b` queued requests in `batch_service_us[b-1]` µs, less
//! than `b` serial services because W rows are read once per batch. The
//! [`BatchPolicy`] (the same type the live
//! [`Fleet`](sparsenn_core::engine::Fleet) chunks with) decides *when* a
//! shard fires: [`BatchPolicy::Immediate`] dispatches whatever has queued
//! the moment the shard frees (batch-of-1 under light load, deep batches
//! under backlog), [`BatchPolicy::SizeOrDeadline`] holds requests until
//! the batch fills or the oldest has waited out its deadline.
//!
//! The resulting [`BatchedSummary`] exposes the knee the serve layer is
//! parameterized on: throughput per shard rises with batch size while
//! queueing latency pays for the fill — sweep `(policy, load)` to find
//! where an SLO sits on that curve. Feed
//! [`BatchShardSpec::batch_service_us`] from the real batched machine
//! (per-(backend, B) [`BatchRunRecord::batch_time_us`] tables) and the
//! curve is the accelerator's, not an analytic guess.
//!
//! [`BatchRunRecord::batch_time_us`]: sparsenn_core::engine::BatchRunRecord

use crate::events::EventQueue;
use crate::metrics::{LatencyStats, RequestMetric, ShardUsage, StreamingLatency};
use crate::sim::{MetricsMode, ServeError};
use crate::workload::Workload;
use sparsenn_core::engine::{BatchPolicy, Scheduler, ShardView};
use sparsenn_obs::{track, AttrKey, NullSink, Span, SpanBuffer, SpanKind, TraceSink};
use std::collections::VecDeque;

/// One simulated batch-capable shard: a name and its modelled batch
/// service times.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchShardSpec {
    /// Shard name (e.g. the backend's `name()`).
    pub name: String,
    /// Modelled service time of a batch of `b` requests:
    /// `batch_service_us[b - 1]`, microseconds. Batches larger than the
    /// table clamp to its last entry, so the table's length is the
    /// largest batch the shard ever executes. Feed the real batched
    /// machine's per-B times for a faithful knee.
    pub batch_service_us: Vec<f64>,
}

impl BatchShardSpec {
    /// A shard whose batch-of-`b` time follows the given table.
    pub fn with_table(name: impl Into<String>, batch_service_us: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            batch_service_us,
        }
    }

    /// A shard with *no* batching win: a batch of `b` costs exactly
    /// `b × service_us` (the serial-loop baseline), up to `max_batch`.
    pub fn serial(name: impl Into<String>, service_us: f64, max_batch: usize) -> Self {
        Self {
            name: name.into(),
            batch_service_us: (1..=max_batch.max(1))
                .map(|b| b as f64 * service_us)
                .collect(),
        }
    }

    /// A batch table **measured wall-clock** on a real backend: for each
    /// `b` in `1..=max_batch`, a batch of `b` inputs (cycling through
    /// `inputs`) is dispatched `reps` times through
    /// [`run_batch`](sparsenn_core::engine::InferenceBackend::run_batch)
    /// (after one untimed warm-up) and the minimum latency becomes the
    /// table entry — so the batching simulator's knee is the hardware's
    /// own, not an assumed curve.
    ///
    /// # Errors
    ///
    /// Whatever the backend's `run_batch` returns
    /// ([`SparseNnError`](sparsenn_core::SparseNnError)).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `max_batch == 0`.
    pub fn from_measured(
        name: impl Into<String>,
        backend: &dyn sparsenn_core::engine::InferenceBackend,
        net: &sparsenn_core::model::fixedpoint::FixedNetwork,
        inputs: &[Vec<sparsenn_core::numeric::Q6_10>],
        mode: sparsenn_core::model::fixedpoint::UvMode,
        max_batch: usize,
        reps: usize,
    ) -> Result<Self, sparsenn_core::SparseNnError> {
        assert!(!inputs.is_empty(), "need at least one input to measure");
        assert!(max_batch > 0, "max_batch must be positive");
        let reps = reps.max(1);
        backend.run_batch(net, &inputs[..1], mode)?; // warm-up (pack, caches)
        let mut batch_service_us = Vec::with_capacity(max_batch);
        for b in 1..=max_batch {
            let batch: Vec<_> = (0..b).map(|i| inputs[i % inputs.len()].clone()).collect();
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                backend.run_batch(net, &batch, mode)?;
                best = best.min(t.elapsed().as_secs_f64() * 1e6);
            }
            batch_service_us.push(best);
        }
        Ok(Self::with_table(name, batch_service_us))
    }

    /// Service time of a batch of `b` requests (clamped to the table).
    pub fn service_for_batch(&self, b: usize) -> f64 {
        let i = b.clamp(1, self.batch_service_us.len());
        self.batch_service_us[i - 1]
    }

    /// Largest batch this shard executes (the table length).
    pub fn max_batch(&self) -> usize {
        self.batch_service_us.len()
    }
}

/// One dispatched batch, recorded in [`MetricsMode::Exact`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchRecord {
    /// Shard that executed the batch.
    pub shard: usize,
    /// Requests in the batch.
    pub size: usize,
    /// How long the batch's oldest request waited before service
    /// started, µs.
    pub oldest_wait_us: f64,
    /// The part of that wait spent while the shard sat *idle* — time the
    /// policy chose to hold the batch open. Bounded by the policy's
    /// deadline (the no-starvation guarantee); 0 under
    /// [`BatchPolicy::Immediate`].
    pub idle_wait_us: f64,
}

/// Everything a batched simulation run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchedSummary {
    /// Dispatch policy that placed arrivals
    /// ([`Scheduler::name`](sparsenn_core::engine::Scheduler::name)).
    pub scheduler: String,
    /// Batching policy that fired dispatches ([`BatchPolicy::name`]).
    pub policy: String,
    /// Workload description.
    pub workload: String,
    /// Requests completed (every issued request completes).
    pub requests: usize,
    /// Virtual time of the last completion, µs.
    pub makespan_us: f64,
    /// Achieved throughput: `requests / makespan`, requests per second.
    pub throughput_rps: f64,
    /// End-to-end latency distribution (mean/max exact; percentiles P²
    /// estimates in streaming mode, exact nearest-rank in
    /// [`MetricsMode::Exact`]).
    pub latency: LatencyStats,
    /// Mean time-in-queue per request, µs.
    pub queue_us_mean: f64,
    /// Mean time-in-service per request (its batch's service time), µs.
    pub service_us_mean: f64,
    /// Batches dispatched across the fleet.
    pub batches: usize,
    /// Mean batch size (`requests / batches`; 0 with no batches).
    pub mean_batch: f64,
    /// Largest batch dispatched.
    pub max_batch: usize,
    /// Per-shard usage, one entry per shard in spec order.
    pub shards: Vec<ShardUsage>,
    /// Per-request records, completion order ([`MetricsMode::Exact`]
    /// only; requests of one batch share start and completion times).
    pub per_request: Vec<RequestMetric>,
    /// Per-batch records, dispatch order ([`MetricsMode::Exact`] only).
    pub batch_records: Vec<BatchRecord>,
}

impl BatchedSummary {
    /// Exports the summary into a [`MetricsRegistry`] under
    /// `serve.batched.*` names: run-level counters and gauges, the
    /// end-to-end latency distribution, and — when per-batch records
    /// were kept ([`MetricsMode::Exact`]) — an `idle_wait_us` histogram
    /// over the dispatched batches' policy-chosen hold times.
    ///
    /// [`MetricsRegistry`]: sparsenn_obs::MetricsRegistry
    pub fn export_metrics(&self, registry: &mut sparsenn_obs::MetricsRegistry) {
        registry.inc("serve.batched.requests", self.requests as u64);
        registry.inc("serve.batched.batches", self.batches as u64);
        registry.inc("serve.batched.max_batch", self.max_batch as u64);
        registry.set_gauge("serve.batched.mean_batch", self.mean_batch);
        registry.set_gauge("serve.batched.makespan_us", self.makespan_us);
        registry.set_gauge("serve.batched.throughput_rps", self.throughput_rps);
        registry.set_gauge("serve.batched.queue_us_mean", self.queue_us_mean);
        registry.set_gauge("serve.batched.service_us_mean", self.service_us_mean);
        registry.record_latency("serve.batched.latency", &self.latency);
        for record in &self.batch_records {
            registry.observe("serve.batched.idle_wait_us", record.idle_wait_us);
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival,
    Completion {
        shard: usize,
    },
    /// Guarded wake-up for [`BatchPolicy::SizeOrDeadline`]: armed once
    /// per enqueue at `arrival + deadline_us`; a no-op unless the shard
    /// is idle with an over-age queue when it fires.
    Deadline {
        shard: usize,
    },
}

#[derive(Clone, Copy, Debug)]
struct Request {
    id: usize,
    arrival_us: f64,
}

struct ShardState {
    queue: VecDeque<Request>,
    /// In-service batch: `(requests, start_us)`.
    current: Option<(Vec<Request>, f64)>,
    busy_until: f64,
    /// When the shard last became idle (0 at the start).
    idle_since: f64,
    served: usize,
    busy_us: f64,
}

impl ShardState {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            current: None,
            busy_until: 0.0,
            idle_since: 0.0,
            served: 0,
            busy_us: 0.0,
        }
    }

    fn depth(&self) -> usize {
        self.queue.len() + self.current.as_ref().map_or(0, |(b, _)| b.len())
    }
}

/// Runs one batched simulation to completion.
///
/// Arrivals are placed per shard by the `scheduler` (a `None` or invalid
/// pick falls back to the shallowest queue); each shard serves its own
/// queue FIFO, firing batches when the `policy` says so. Deterministic:
/// the summary is a pure function of the arguments.
///
/// # Errors
///
/// [`ServeError`] when the fleet is empty, a batch-service table is
/// unusable, or the workload or policy parameters are invalid.
pub fn simulate_batched(
    shards: &[BatchShardSpec],
    scheduler: &dyn Scheduler,
    policy: BatchPolicy,
    workload: &Workload,
    mode: MetricsMode,
) -> Result<BatchedSummary, ServeError> {
    simulate_batched_traced(shards, scheduler, policy, workload, mode, &NullSink)
}

/// [`simulate_batched`] with request-level tracing: every request gets
/// an async `request` span (arrival → completion), every dispatched
/// batch a `batch_assembly` span (oldest arrival → dispatch) and a
/// `service` span on its shard's lane — all on the `serve` track,
/// request spans keyed by request id, batch spans by dispatch sequence
/// number. With a disabled sink this *is* [`simulate_batched`]: the
/// summary is bit-identical and no span is built.
pub fn simulate_batched_traced(
    shards: &[BatchShardSpec],
    scheduler: &dyn Scheduler,
    policy: BatchPolicy,
    workload: &Workload,
    mode: MetricsMode,
    sink: &dyn TraceSink,
) -> Result<BatchedSummary, ServeError> {
    if shards.is_empty() {
        return Err(ServeError::NoShards);
    }
    for (i, s) in shards.iter().enumerate() {
        if s.batch_service_us.is_empty() {
            return Err(ServeError::BadServiceTable {
                shard: i,
                reason: "empty".into(),
            });
        }
        if let Some(bad) = s
            .batch_service_us
            .iter()
            .find(|v| !v.is_finite() || **v < 0.0)
        {
            return Err(ServeError::BadServiceTable {
                shard: i,
                reason: format!("batch service time {bad} is not finite and non-negative"),
            });
        }
    }
    workload.validate().map_err(ServeError::InvalidWorkload)?;
    policy.validate().map_err(ServeError::InvalidPolicy)?;
    let deadline_us = match policy {
        BatchPolicy::SizeOrDeadline { deadline_us, .. } => Some(deadline_us),
        BatchPolicy::Immediate => None,
    };

    let total_requests = workload.requests();
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut open_arrivals = workload.open_arrivals();
    let (closed_think_us, mut to_issue) = match *workload {
        Workload::ClosedLoop {
            concurrency,
            requests,
            think_us,
        } => {
            for _ in 0..concurrency.min(requests) {
                events.push(0.0, Event::Arrival);
            }
            (think_us, requests - concurrency.min(requests))
        }
        _ => {
            let stream = open_arrivals.as_mut().expect("open workload has a stream");
            if let Some(t) = stream.next() {
                events.push(t, Event::Arrival);
            }
            (0.0, 0)
        }
    };

    let mut state: Vec<ShardState> = shards.iter().map(|_| ShardState::new()).collect();
    let mut next_id = 0usize;
    let mut makespan_us = 0.0f64;

    let exact = mode == MetricsMode::Exact;
    let mut per_request: Vec<RequestMetric> = Vec::new();
    let mut batch_records: Vec<BatchRecord> = Vec::new();
    let mut done = 0usize;
    let mut streaming = StreamingLatency::new();
    let mut queue_us_sum = 0.0f64;
    let mut service_us_sum = 0.0f64;
    let mut batches = 0usize;
    let mut max_batch = 0usize;

    // Fires a batch on `shard` if the policy says so. One closure keeps
    // the Arrival / Completion / Deadline handlers honest about using
    // identical dispatch conditions.
    let try_dispatch = |i: usize,
                        now: f64,
                        state: &mut [ShardState],
                        ev: &mut EventQueue<Event>,
                        batches: &mut usize,
                        max_batch: &mut usize,
                        batch_records: &mut Vec<BatchRecord>,
                        spans: &mut SpanBuffer| {
        if state[i].current.is_some() || state[i].queue.is_empty() {
            return;
        }
        let oldest = state[i].queue.front().expect("non-empty").arrival_us;
        // The epsilon absorbs float round-off when a deadline event fires
        // exactly `deadline_us` after the oldest arrival.
        if !policy.should_dispatch(state[i].queue.len(), now - oldest + 1e-9) {
            return;
        }
        let cap = policy.max_batch().min(shards[i].max_batch()).max(1);
        let b = state[i].queue.len().min(cap);
        let batch: Vec<Request> = state[i].queue.drain(..b).collect();
        let service = shards[i].service_for_batch(b);
        if spans.enabled() {
            let seq = *batches as u64;
            spans.record(
                Span::new(
                    seq,
                    SpanKind::BatchAssembly,
                    track::SERVE,
                    track::CONTROL,
                    oldest,
                    now,
                )
                .attr(AttrKey::Shard, i as u64)
                .attr(AttrKey::Size, b as u64),
            );
            spans.record(
                Span::new(
                    seq,
                    SpanKind::Service,
                    track::SERVE,
                    i as u32 + 1,
                    now,
                    now + service,
                )
                .attr(AttrKey::Size, b as u64),
            );
        }
        *batches += 1;
        *max_batch = (*max_batch).max(b);
        if exact {
            batch_records.push(BatchRecord {
                shard: i,
                size: b,
                oldest_wait_us: now - oldest,
                idle_wait_us: (now - oldest.max(state[i].idle_since)).max(0.0),
            });
        }
        state[i].current = Some((batch, now));
        state[i].busy_until = now + service;
        ev.push(now + service, Event::Completion { shard: i });
    };

    // All spans go through one emitter-side buffer: staged without a
    // lock, handed to the sink as whole owned chunks, flushed when the
    // event loop drains. Keeps the traced hot loop at one sink
    // interaction per ~256 spans.
    let mut spans = SpanBuffer::new(sink);
    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival => {
                if let Some(stream) = open_arrivals.as_mut() {
                    if let Some(t) = stream.next() {
                        events.push(t, Event::Arrival);
                    }
                }
                let req = Request {
                    id: next_id,
                    arrival_us: now,
                };
                next_id += 1;
                let views: Vec<ShardView> = state
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let t1 = shards[i].service_for_batch(1);
                        ShardView {
                            healthy: true,
                            idle: s.current.is_none() && s.queue.is_empty(),
                            depth: s.depth(),
                            backlog_us: match s.current {
                                Some(_) => (s.busy_until - now).max(0.0),
                                None => 0.0,
                            } + s.queue.len() as f64 * t1,
                            service_us: t1,
                        }
                    })
                    .collect();
                // Place per shard; an unusable pick falls back to the
                // shallowest queue (ties to the lowest index) so every
                // request lands somewhere and progress is guaranteed.
                let i = match scheduler.pick(&views) {
                    Some(i) if i < state.len() => i,
                    _ => (0..state.len())
                        .min_by_key(|&i| state[i].depth())
                        .expect("non-empty fleet"),
                };
                state[i].queue.push_back(req);
                if let Some(d) = deadline_us {
                    events.push(now + d, Event::Deadline { shard: i });
                }
                try_dispatch(
                    i,
                    now,
                    &mut state,
                    &mut events,
                    &mut batches,
                    &mut max_batch,
                    &mut batch_records,
                    &mut spans,
                );
            }
            Event::Completion { shard } => {
                let (batch, start_us) = state[shard]
                    .current
                    .take()
                    .expect("completion fired for an idle shard");
                state[shard].idle_since = now;
                state[shard].served += batch.len();
                state[shard].busy_us += now - start_us;
                makespan_us = makespan_us.max(now);
                for req in &batch {
                    done += 1;
                    queue_us_sum += start_us - req.arrival_us;
                    service_us_sum += now - start_us;
                    if spans.enabled() {
                        spans.record(
                            Span::new(
                                req.id as u64,
                                SpanKind::Request,
                                track::SERVE,
                                track::CONTROL,
                                req.arrival_us,
                                now,
                            )
                            .attr(AttrKey::Shard, shard as u64)
                            .attr(AttrKey::Batch, batch.len() as u64),
                        );
                    }
                    if exact {
                        per_request.push(RequestMetric {
                            id: req.id,
                            shard,
                            arrival_us: req.arrival_us,
                            start_us,
                            completion_us: now,
                        });
                    } else {
                        streaming.observe(now - req.arrival_us);
                    }
                }
                // Closed-loop clients re-issue, one per completed request.
                let reissue = batch.len().min(to_issue);
                to_issue -= reissue;
                for _ in 0..reissue {
                    events.push(now + closed_think_us, Event::Arrival);
                }
                try_dispatch(
                    shard,
                    now,
                    &mut state,
                    &mut events,
                    &mut batches,
                    &mut max_batch,
                    &mut batch_records,
                    &mut spans,
                );
            }
            Event::Deadline { shard } => {
                // Guarded: a no-op unless the shard is idle with an
                // over-age queue (try_dispatch re-checks the policy).
                try_dispatch(
                    shard,
                    now,
                    &mut state,
                    &mut events,
                    &mut batches,
                    &mut max_batch,
                    &mut batch_records,
                    &mut spans,
                );
            }
        }
    }

    spans.flush();
    debug_assert_eq!(done, total_requests, "every request completes");
    let latency = if exact {
        let latencies: Vec<f64> = per_request.iter().map(RequestMetric::latency_us).collect();
        LatencyStats::of(&latencies)
    } else {
        streaming.stats()
    };
    let n = done.max(1) as f64;
    let shard_usage = shards
        .iter()
        .zip(&state)
        .map(|(spec, s)| ShardUsage {
            name: spec.name.clone(),
            served: s.served,
            busy_us: s.busy_us,
            utilization: if makespan_us > 0.0 {
                s.busy_us / makespan_us
            } else {
                0.0
            },
        })
        .collect();
    Ok(BatchedSummary {
        scheduler: scheduler.name().to_string(),
        policy: policy.name().to_string(),
        workload: workload.to_string(),
        requests: done,
        makespan_us,
        throughput_rps: if makespan_us > 0.0 {
            done as f64 / (makespan_us * 1e-6)
        } else {
            0.0
        },
        latency,
        queue_us_mean: queue_us_sum / n,
        service_us_mean: service_us_sum / n,
        batches,
        mean_batch: if batches > 0 {
            done as f64 / batches as f64
        } else {
            0.0
        },
        max_batch,
        shards: shard_usage,
        per_request,
        batch_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_core::engine::FirstIdle;

    /// A batch-of-b table with a strong W-amortization win: the first
    /// sample costs full price, every further one 30%.
    fn amortized(max_batch: usize, t1: f64) -> Vec<f64> {
        (1..=max_batch)
            .map(|b| t1 * (1.0 + 0.3 * (b as f64 - 1.0)))
            .collect()
    }

    /// A measured batch table is real wall-clock per batch size, one
    /// entry per `b` up to `max_batch`, and drives the batching
    /// simulator unchanged.
    #[test]
    fn from_measured_builds_a_usable_batch_table() {
        use sparsenn_core::engine::KernelBackend;
        use sparsenn_core::linalg::init::seeded_rng;
        use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
        use sparsenn_core::model::{Mlp, PredictedNetwork};
        let mut rng = seeded_rng(7);
        let mlp = Mlp::random(&[24, 32, 10], &mut rng);
        let net =
            FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 3, &mut rng));
        let inputs: Vec<_> = (0..2)
            .map(|s| {
                let x: Vec<f32> = (0..24)
                    .map(|i| if (i + s) % 2 == 0 { 0.0 } else { 0.5 })
                    .collect();
                net.quantize_input(&x)
            })
            .collect();
        let backend = KernelBackend::new();
        let spec =
            BatchShardSpec::from_measured("kernel", &backend, &net, &inputs, UvMode::On, 4, 3)
                .unwrap();
        assert_eq!(spec.max_batch(), 4);
        assert!(spec
            .batch_service_us
            .iter()
            .all(|&t| t.is_finite() && t > 0.0));
        let s = simulate_batched(
            std::slice::from_ref(&spec),
            &FirstIdle,
            BatchPolicy::Immediate,
            &Workload::ClosedLoop {
                concurrency: 1,
                requests: 8,
                think_us: 0.0,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 8);
        assert!(s.latency.mean_us > 0.0);
    }

    #[test]
    fn light_load_immediate_degenerates_to_batches_of_one() {
        let shards = vec![BatchShardSpec::with_table("m", amortized(8, 10.0))];
        let s = simulate_batched(
            &shards,
            &FirstIdle,
            BatchPolicy::Immediate,
            &Workload::Poisson {
                rate_rps: 5_000.0, // 5% of the shard's serial capacity
                requests: 400,
                seed: 3,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 400);
        assert!(
            s.mean_batch < 1.05,
            "an unloaded immediate shard serves singles, mean {}",
            s.mean_batch
        );
        // Immediate never holds a batch open while idle.
        assert!(s.batch_records.iter().all(|b| b.idle_wait_us < 1e-9));
    }

    #[test]
    fn batched_summary_exports_metrics() {
        let shards = vec![BatchShardSpec::with_table("m", amortized(8, 10.0))];
        let s = simulate_batched(
            &shards,
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: 4,
                deadline_us: 40.0,
            },
            &Workload::Poisson {
                rate_rps: 60_000.0,
                requests: 500,
                seed: 7,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        let mut registry = sparsenn_obs::MetricsRegistry::new();
        s.export_metrics(&mut registry);
        assert_eq!(registry.counter("serve.batched.requests"), 500);
        assert_eq!(registry.counter("serve.batched.batches"), s.batches as u64);
        assert_eq!(
            registry.gauge("serve.batched.mean_batch"),
            Some(s.mean_batch)
        );
        assert_eq!(
            registry.gauge("serve.batched.latency.p99_us"),
            Some(s.latency.p99_us)
        );
        let idle = registry
            .histogram("serve.batched.idle_wait_us")
            .expect("exact mode keeps batch records");
        assert_eq!(idle.count(), s.batches as u64);
        assert!(idle.max_us() <= 40.0 + 1e-9, "no-starvation bound holds");
    }

    #[test]
    fn backlog_makes_immediate_batches_grow_and_throughput_beat_serial() {
        let shards_batched = vec![BatchShardSpec::with_table("m", amortized(8, 10.0))];
        let shards_serial = vec![BatchShardSpec::serial("m", 10.0, 8)];
        // 3× the serial shard's capacity (100k rps) and above the batched
        // shard's batch-of-8 capacity (~258k rps): both saturate, so the
        // throughput ratio measures capacity, not offered load.
        let w = Workload::Poisson {
            rate_rps: 300_000.0,
            requests: 3000,
            seed: 11,
        };
        let b = simulate_batched(
            &shards_batched,
            &FirstIdle,
            BatchPolicy::Immediate,
            &w,
            MetricsMode::Streaming,
        )
        .unwrap();
        let s = simulate_batched(
            &shards_serial,
            &FirstIdle,
            BatchPolicy::Immediate,
            &w,
            MetricsMode::Streaming,
        )
        .unwrap();
        assert!(
            b.mean_batch > 2.0,
            "overload piles batches up: {}",
            b.mean_batch
        );
        assert!(
            b.throughput_rps > 2.0 * s.throughput_rps,
            "amortization must lift throughput: batched {} vs serial {}",
            b.throughput_rps,
            s.throughput_rps
        );
        assert!(b.latency.p99_us < s.latency.p99_us);
    }

    #[test]
    fn size_or_deadline_releases_partial_batches_at_the_deadline() {
        let shards = vec![BatchShardSpec::with_table("m", amortized(8, 10.0))];
        let s = simulate_batched(
            &shards,
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: 8,
                deadline_us: 200.0,
            },
            &Workload::Poisson {
                rate_rps: 5_000.0, // a batch of 8 would take ~1.6 ms to fill
                requests: 400,
                seed: 3,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 400);
        // Light load: most batches release on the deadline, not the size.
        assert!(s.mean_batch < 8.0);
        assert!(s.mean_batch > 1.0, "the hold window does coalesce some");
        for b in &s.batch_records {
            assert!(
                b.idle_wait_us <= 200.0 + 1e-6,
                "no batch is held beyond its deadline while the shard idles: {b:?}"
            );
        }
        // The wait is visible in the latency (vs the immediate policy).
        let imm = simulate_batched(
            &shards,
            &FirstIdle,
            BatchPolicy::Immediate,
            &Workload::Poisson {
                rate_rps: 5_000.0,
                requests: 400,
                seed: 3,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert!(s.latency.mean_us > imm.latency.mean_us + 50.0);
    }

    #[test]
    fn full_batches_fire_without_waiting_for_the_deadline() {
        let shards = vec![BatchShardSpec::with_table("m", amortized(4, 10.0))];
        let s = simulate_batched(
            &shards,
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: 4,
                deadline_us: 1e6, // effectively never
            },
            &Workload::ClosedLoop {
                concurrency: 8, // always ≥ 4 waiting: every batch fills
                requests: 64,
                think_us: 0.0,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 64);
        assert_eq!(s.max_batch, 4);
        assert!((s.mean_batch - 4.0).abs() < 1e-9, "every batch full");
        assert_eq!(s.batches, 16);
    }

    #[test]
    fn per_shard_service_is_fifo() {
        let shards = vec![
            BatchShardSpec::with_table("a", amortized(4, 10.0)),
            BatchShardSpec::with_table("b", amortized(4, 14.0)),
        ];
        let s = simulate_batched(
            &shards,
            &crate::LeastQueued,
            BatchPolicy::Immediate,
            &Workload::Poisson {
                rate_rps: 250_000.0,
                requests: 1000,
                seed: 7,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 1000);
        for shard in 0..shards.len() {
            let starts: Vec<(usize, f64)> = s
                .per_request
                .iter()
                .filter(|r| r.shard == shard)
                .map(|r| (r.id, r.start_us))
                .collect();
            // Requests placed on one shard start service in arrival
            // (= id) order.
            let mut by_start = starts.clone();
            by_start.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            assert_eq!(starts.len(), by_start.len());
            let ids_by_start: Vec<usize> = by_start.iter().map(|&(id, _)| id).collect();
            let mut sorted_ids = ids_by_start.clone();
            sorted_ids.sort_unstable();
            assert_eq!(ids_by_start, sorted_ids, "shard {shard} is FIFO");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let shards = vec![BatchShardSpec::with_table("m", amortized(6, 9.0))];
        let w = Workload::Bursty {
            low_rps: 20_000.0,
            high_rps: 300_000.0,
            period_us: 800.0,
            duty: 0.3,
            requests: 900,
            seed: 5,
        };
        let p = BatchPolicy::SizeOrDeadline {
            max: 6,
            deadline_us: 50.0,
        };
        let a = simulate_batched(&shards, &FirstIdle, p, &w, MetricsMode::Streaming).unwrap();
        let b = simulate_batched(&shards, &FirstIdle, p, &w, MetricsMode::Streaming).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let w = Workload::ClosedLoop {
            concurrency: 1,
            requests: 1,
            think_us: 0.0,
        };
        assert_eq!(
            simulate_batched(
                &[],
                &FirstIdle,
                BatchPolicy::Immediate,
                &w,
                MetricsMode::Streaming
            )
            .unwrap_err(),
            ServeError::NoShards
        );
        let empty = vec![BatchShardSpec::with_table("x", vec![])];
        assert!(matches!(
            simulate_batched(
                &empty,
                &FirstIdle,
                BatchPolicy::Immediate,
                &w,
                MetricsMode::Streaming
            )
            .unwrap_err(),
            ServeError::BadServiceTable { shard: 0, .. }
        ));
        let ok = vec![BatchShardSpec::with_table("x", vec![10.0])];
        assert!(matches!(
            simulate_batched(
                &ok,
                &FirstIdle,
                BatchPolicy::SizeOrDeadline {
                    max: 0,
                    deadline_us: 1.0
                },
                &w,
                MetricsMode::Streaming
            )
            .unwrap_err(),
            ServeError::InvalidPolicy(_)
        ));
    }

    /// Tracing is an observer: the traced summary is bit-identical to
    /// the untraced one, every request id gets a `request` span whose
    /// bounds match its metric, every dispatch gets paired
    /// `batch_assembly`/`service` spans, and the span stream repeats
    /// exactly for the same seed.
    #[test]
    fn traced_run_matches_untraced_and_covers_every_request() {
        use sparsenn_obs::{RingRecorder, SpanKind};
        let shards = vec![BatchShardSpec::with_table("m", amortized(6, 9.0))];
        let w = Workload::Poisson {
            rate_rps: 150_000.0,
            requests: 300,
            seed: 5,
        };
        let p = BatchPolicy::SizeOrDeadline {
            max: 6,
            deadline_us: 50.0,
        };
        let plain = simulate_batched(&shards, &FirstIdle, p, &w, MetricsMode::Exact).unwrap();
        let rec = RingRecorder::new(1 << 14);
        let traced =
            simulate_batched_traced(&shards, &FirstIdle, p, &w, MetricsMode::Exact, &rec).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");

        let spans = rec.spans();
        for r in &traced.per_request {
            let span = spans
                .iter()
                .find(|s| s.kind == SpanKind::Request && s.trace_id == r.id as u64)
                .unwrap_or_else(|| panic!("request {} has no span", r.id));
            assert!((span.start_us - r.arrival_us).abs() < 1e-9);
            assert!((span.end_us - r.completion_us).abs() < 1e-9);
        }
        let assemblies = spans
            .iter()
            .filter(|s| s.kind == SpanKind::BatchAssembly)
            .count();
        let services = spans.iter().filter(|s| s.kind == SpanKind::Service).count();
        assert_eq!(assemblies, traced.batches);
        assert_eq!(services, traced.batches);

        let rec2 = RingRecorder::new(1 << 14);
        simulate_batched_traced(&shards, &FirstIdle, p, &w, MetricsMode::Exact, &rec2).unwrap();
        assert_eq!(spans, rec2.spans(), "same seed, same spans");
    }

    #[test]
    fn spec_helpers_clamp_and_report_shape() {
        let s = BatchShardSpec::with_table("m", vec![10.0, 13.0, 16.0]);
        assert_eq!(s.max_batch(), 3);
        assert_eq!(s.service_for_batch(1), 10.0);
        assert_eq!(s.service_for_batch(3), 16.0);
        assert_eq!(s.service_for_batch(9), 16.0, "clamps to the table");
        let serial = BatchShardSpec::serial("s", 10.0, 4);
        assert_eq!(serial.batch_service_us, vec![10.0, 20.0, 30.0, 40.0]);
    }
}
